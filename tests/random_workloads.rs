//! Seeded random-workload sweep: larger bodies than the proptest cases,
//! run end to end under every hardware scheme with bit-exact state checks.
//!
//! Seed counts and iteration counts scale with the `SMARQ_TEST_SCALE`
//! environment variable (default 1.0): set it below 1 for a quick smoke
//! pass, above 1 for a deeper soak.

use smarq_guest::Interpreter;
use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};
use smarq_workloads::{random_workload_with, scaled_count, scaled_iters, RandomParams};

fn check(seed: u64, params: RandomParams) {
    let w = random_workload_with(seed, params);
    let mut reference = Interpreter::new();
    reference.run(&w.program, u64::MAX);
    let expected = reference.arch_state();

    for (label, opt) in [
        ("smarq64", OptConfig::smarq(64)),
        ("smarq8", OptConfig::smarq(8)),
        ("efficeon", OptConfig::efficeon()),
        ("alat", OptConfig::alat()),
        ("none", OptConfig::no_alias_hw()),
    ] {
        let mut cfg = SystemConfig::with_opt(opt);
        cfg.hot_threshold = 10;
        let mut sys = DynOptSystem::new(w.program.clone(), cfg);
        sys.run_to_completion(u64::MAX);
        assert_eq!(
            sys.interp().arch_state(),
            expected,
            "seed {seed} under {label} diverged"
        );
    }
}

#[test]
fn medium_bodies_across_seeds() {
    for seed in 0..scaled_count(16) {
        check(
            seed,
            RandomParams {
                body_ops: 24,
                iters: scaled_iters(150),
                address_pool: 4,
            },
        );
    }
}

#[test]
fn large_bodies_with_heavy_aliasing() {
    // A pool of 2 addresses: roughly half of all pointer pairs truly
    // alias, hammering the rollback/blacklist/re-optimize path.
    for seed in 100..100 + scaled_count(8) {
        check(
            seed,
            RandomParams {
                body_ops: 80,
                iters: scaled_iters(120),
                address_pool: 2,
            },
        );
    }
}

#[test]
fn single_address_pool_worst_case() {
    // Every pointer is the same address: all speculation faults; the
    // system must converge to fully conservative code and stay correct.
    for seed in 200..200 + scaled_count(4) {
        check(
            seed,
            RandomParams {
                body_ops: 32,
                iters: scaled_iters(100),
                address_pool: 1,
            },
        );
    }
}

#[test]
fn unrolling_random_workloads_stays_exact() {
    for seed in 300..300 + scaled_count(6) {
        let w = random_workload_with(
            seed,
            RandomParams {
                body_ops: 20,
                iters: scaled_iters(200),
                address_pool: 3,
            },
        );
        let mut reference = Interpreter::new();
        reference.run(&w.program, u64::MAX);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.hot_threshold = 10;
        cfg.unroll_factor = 3;
        let mut sys = DynOptSystem::new(w.program.clone(), cfg);
        sys.run_to_completion(u64::MAX);
        assert_eq!(
            sys.interp().arch_state(),
            reference.arch_state(),
            "seed {seed} diverged with unrolling"
        );
    }
}
