//! Soundness of the whole-program interval dataflow and convergence of
//! the chain analyzer, corpus-wide.
//!
//! * **Interval soundness**: on every `tests/corpus/` entry (plus a
//!   spread of fuzz-generated programs), a concrete interpreter run must
//!   stay inside the derived ranges — at every block entry, every guest
//!   register's value lies in the interval `crates/verify`'s dataflow
//!   proved for it.
//! * **Chain fixpoint**: the chain analyzer reaches a genuine fixpoint
//!   (widening bounds the iterations) on every corpus program, under
//!   every hardware scheme the runtime forms regions for, and reports no
//!   error-severity finding on the clean corpus.

use smarq_guest::{Interpreter, Program};
use smarq_runtime::{DynOptSystem, SystemConfig};
use std::path::Path;

fn corpus() -> Vec<(String, Program)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = smarq_fuzz::load_dir(&dir).expect("corpus loads");
    assert!(entries.len() >= 3, "corpus too small: {}", entries.len());
    entries
        .into_iter()
        .map(|(p, prog)| (p.display().to_string(), prog))
        .collect()
}

/// Steps `program` concretely block-by-block and asserts containment in
/// `df` at every block entry. Returns the number of block entries checked.
fn check_containment(name: &str, program: &Program) -> u64 {
    let df = smarq_verify::analyze_reference(program);
    assert!(df.converged, "{name}: dataflow did not converge");
    let mut interp = Interpreter::new();
    interp.load_data(program);
    let mut block = program.entry();
    let mut checked = 0u64;
    loop {
        let st = df.entry_state(block);
        for (r, iv) in st.iter().enumerate().take(32) {
            assert!(
                iv.contains(interp.regs[r]),
                "{name}: at block {block:?} entry #{checked}, r{r} = {} outside derived {iv}",
                interp.regs[r]
            );
        }
        checked += 1;
        match interp.step_block(program, block) {
            Some(next) => block = next,
            None => return checked,
        }
        assert!(
            checked < 3_000_000,
            "{name}: runaway program (corpus entries must halt)"
        );
    }
}

#[test]
fn concrete_runs_stay_inside_derived_ranges_on_corpus() {
    let mut total = 0;
    for (name, program) in corpus() {
        total += check_containment(&name, &program);
    }
    assert!(total > 0);
}

#[test]
fn concrete_runs_stay_inside_derived_ranges_on_generated_programs() {
    for seed in 0..24 {
        let program = smarq_fuzz::generate(seed, &smarq_fuzz::FuzzParams::default());
        check_containment(&format!("gen-{seed}"), &program);
    }
}

#[test]
fn chain_analyzer_reaches_fixpoint_on_every_corpus_program() {
    let mut analyzed = 0;
    for (name, program) in corpus() {
        let mut cfg = SystemConfig {
            hot_threshold: 10,
            ..SystemConfig::default()
        };
        cfg.verify_translations = true;
        let mut sys = DynOptSystem::new(program, cfg);
        sys.run_to_completion(2_000_000);
        let Some(report) = sys.analyze_chain() else {
            continue; // no regions formed: nothing to chain-check
        };
        analyzed += 1;
        assert!(report.converged, "{name}: chain fixpoint hit iteration cap");
        // Widening bounds the work: a generous structural cap, far below
        // the analyzer's own backstop.
        assert!(
            report.iterations <= report.regions * 64 * 16,
            "{name}: {} iterations for {} regions",
            report.iterations,
            report.regions
        );
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == smarq::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{name}: {errors:?}");
    }
    assert!(analyzed > 0, "no corpus program formed chainable regions");
}
