//! Corpus-wide differential for the chained dispatcher.
//!
//! Every minimized repro in `tests/corpus/` is executed twice through the
//! full `DynOptSystem` — once with region chaining enabled (the default
//! dispatcher: flat cache, memoized region→region links, resident guest
//! state, batched stat sync) and once with `DispatchMode::Naive` (the
//! seed's per-block hashmap dispatcher, retained as an oracle). The two
//! runs must agree bit-exactly on final architectural state and on
//! guest-instruction accounting, under every hardware scheme.
//!
//! The targeted mid-chain alias-exception tests (unlink, rollback,
//! blacklist, re-convergence) live next to the dispatcher in
//! `crates/runtime/src/system.rs`; this test is the breadth half.

use smarq_fuzz::{load_dir, schemes};
use smarq_runtime::{DispatchMode, DynOptSystem, SystemConfig};
use std::path::Path;

#[test]
fn corpus_is_bit_exact_with_chaining_on_and_off() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("corpus directory loads");
    assert!(
        !entries.is_empty(),
        "no corpus entries in {}",
        dir.display()
    );

    let mut chained_follows = 0u64;
    for (path, program) in &entries {
        for (label, opt) in schemes() {
            let mut cfg = SystemConfig::with_opt(opt);
            // Low threshold so the short corpus programs form regions.
            cfg.hot_threshold = 10;

            let mut chained_cfg = cfg.clone();
            chained_cfg.dispatch = DispatchMode::Chained;
            let mut chained = DynOptSystem::new(program.clone(), chained_cfg);
            chained.run_to_completion(u64::MAX);

            let mut naive_cfg = cfg;
            naive_cfg.dispatch = DispatchMode::Naive;
            let mut naive = DynOptSystem::new(program.clone(), naive_cfg);
            naive.run_to_completion(u64::MAX);

            assert_eq!(
                chained.interp().arch_state(),
                naive.interp().arch_state(),
                "{} under {label}: chained and naive dispatch left \
                 different architectural state",
                path.display()
            );
            assert_eq!(
                chained.stats().guest_instrs(),
                naive.stats().guest_instrs(),
                "{} under {label}: guest-instruction totals diverged",
                path.display()
            );
            assert_eq!(
                naive.stats().chain_follows,
                0,
                "{} under {label}: naive dispatch must never follow links",
                path.display()
            );
            chained_follows += chained.stats().chain_follows;
        }
    }
    assert!(
        chained_follows > 0,
        "no corpus entry ever followed a chain link; the differential \
         is not exercising the chained fast path"
    );
}
