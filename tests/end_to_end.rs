//! End-to-end correctness: every benchmark workload, under every hardware
//! configuration, must produce the *bit-identical architectural state* that
//! pure interpretation produces — including under rollback and
//! re-optimization.

use smarq_guest::Interpreter;
use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};

const TEST_ITERS: i64 = 300;

fn configs() -> Vec<(&'static str, OptConfig)> {
    vec![
        ("none", OptConfig::no_alias_hw()),
        ("smarq64", OptConfig::smarq(64)),
        ("smarq16", OptConfig::smarq(16)),
        ("smarq8", OptConfig::smarq(8)),
        ("alat", OptConfig::alat()),
        ("efficeon", OptConfig::efficeon()),
        ("smarq-no-st-reorder", OptConfig::smarq_no_store_reorder(64)),
    ]
}

#[test]
fn all_workloads_match_interpretation_under_all_hardware() {
    for name in smarq_workloads::WORKLOAD_NAMES {
        let w = smarq_workloads::scaled(name, TEST_ITERS).unwrap();
        let mut reference = Interpreter::new();
        reference.run(&w.program, u64::MAX);
        let expected = reference.arch_state();

        for (label, opt) in configs() {
            let mut sys = DynOptSystem::new(w.program.clone(), SystemConfig::with_opt(opt));
            sys.run_to_completion(u64::MAX);
            assert_eq!(
                sys.interp().arch_state(),
                expected,
                "{name} under {label}: architectural state diverged"
            );
            assert!(
                sys.stats().regions_formed >= 1,
                "{name} under {label}: the hot loop must be translated"
            );
        }
    }
}

#[test]
fn speculative_configs_never_lose_to_the_baseline_badly() {
    // Speculation may cost a rollback or two, but across the suite the
    // SMARQ configuration must be at least as fast as no-alias-hardware
    // on every benchmark (these workloads all have latency to hide).
    for name in smarq_workloads::WORKLOAD_NAMES {
        let w = smarq_workloads::scaled(name, 1_000).unwrap();
        let mut base = DynOptSystem::new(
            w.program.clone(),
            SystemConfig::with_opt(OptConfig::no_alias_hw()),
        );
        base.run_to_completion(u64::MAX);
        let mut smarq = DynOptSystem::new(
            w.program.clone(),
            SystemConfig::with_opt(OptConfig::smarq(64)),
        );
        smarq.run_to_completion(u64::MAX);
        assert!(
            smarq.stats().total_cycles() <= base.stats().total_cycles(),
            "{name}: SMARQ {} cycles > baseline {}",
            smarq.stats().total_cycles(),
            base.stats().total_cycles()
        );
    }
}

#[test]
fn rollback_workloads_converge() {
    // equake truly aliases one strand pointer at runtime.
    let name = "equake";
    let w = smarq_workloads::scaled(name, 500).unwrap();
    let mut sys = DynOptSystem::new(
        w.program.clone(),
        SystemConfig::with_opt(OptConfig::smarq(64)),
    );
    sys.run_to_completion(u64::MAX);
    let s = sys.stats();
    assert!(s.rollbacks >= 1, "{name} must fault at least once");
    assert!(
        s.rollbacks <= 8,
        "{name}: blacklisting must converge, saw {} rollbacks",
        s.rollbacks
    );
    assert!(!sys.blacklist().is_empty());
}

#[test]
fn alat_false_positive_fires_and_converges() {
    // mesa carries the paper's Figure 3 pattern: a truly aliasing,
    // never-reordered pair. SMARQ must stay silent; the ALAT must take a
    // spurious exception, then converge after the re-optimization.
    let w = smarq_workloads::scaled("mesa", 500).unwrap();
    let mut smarq = DynOptSystem::new(
        w.program.clone(),
        SystemConfig::with_opt(OptConfig::smarq(64)),
    );
    smarq.run_to_completion(u64::MAX);
    assert_eq!(
        smarq.stats().rollbacks,
        0,
        "SMARQ anti-constraints must prevent the false positive"
    );

    let mut alat = DynOptSystem::new(w.program.clone(), SystemConfig::with_opt(OptConfig::alat()));
    alat.run_to_completion(u64::MAX);
    assert!(
        alat.stats().rollbacks >= 1,
        "the ALAT's check-everything stores must fault spuriously"
    );
    assert!(alat.stats().rollbacks <= 4, "and then converge");
}

#[test]
fn alias_register_scaling_matters_on_ammp() {
    // Paper §2.2: ammp improves substantially from 16 -> 64 registers.
    let w = smarq_workloads::scaled("ammp", 1_000).unwrap();
    let run = |regs| {
        let mut sys = DynOptSystem::new(
            w.program.clone(),
            SystemConfig::with_opt(OptConfig::smarq(regs)),
        );
        sys.run_to_completion(u64::MAX);
        sys.stats().total_cycles()
    };
    let c64 = run(64);
    let c16 = run(16);
    assert!(c64 < c16, "64 regs ({c64}) must beat 16 regs ({c16})");
}

#[test]
fn store_reordering_matters_on_store_bound_benchmarks() {
    // Paper Figure 16: disabling store reordering costs performance on
    // store-bound benchmarks (mesa in the paper; in this reproduction the
    // effect is largest on the elimination-heavy kernels).
    for name in ["mesa", "lucas", "fma3d"] {
        let w = smarq_workloads::scaled(name, 2_000).unwrap();
        let run = |opt| {
            let mut sys = DynOptSystem::new(w.program.clone(), SystemConfig::with_opt(opt));
            sys.run_to_completion(u64::MAX);
            sys.stats().total_cycles()
        };
        let with = run(OptConfig::smarq(64));
        let without = run(OptConfig::smarq_no_store_reorder(64));
        assert!(
            with < without,
            "store reordering must help {name} ({with} !< {without})"
        );
    }
}

#[test]
fn working_set_statistics_are_consistent() {
    let w = smarq_workloads::scaled("sixtrack", 300).unwrap();
    let mut sys = DynOptSystem::new(
        w.program.clone(),
        SystemConfig::with_opt(OptConfig::smarq(64)),
    );
    sys.run_to_completion(u64::MAX);
    for r in &sys.stats().per_region {
        assert!(r.opt.working_set <= 64);
        assert!(r.opt.lower_bound <= r.opt.working_set);
        assert!(r.opt.p_ops <= r.opt.scheduled_mem_ops);
        // order = base + offset holds inside the allocator; here just
        // sanity-check the counters.
        assert!(r.opt.checks >= r.opt.p_ops, "every P op has a checker");
    }
}
