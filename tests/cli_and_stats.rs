//! System-level statistics and configuration coverage: the energy proxy
//! across schemes, budgeted runs, and machine-config variants driven
//! through the public runtime API.

use smarq_guest::parse_program;
use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};
use smarq_vliw::{CacheParams, MachineConfig};

const KERNEL: &str = r"
.word 0x9000, 7
entry:
    iconst r1, 0
    iconst r2, 800
    iconst r3, 0x1000
    iconst r4, 0x9000
    fconst f1, 1.5
    fconst f2, 1.0
    jump body
body:
    fdiv f3, f1, f2
    fst f3, [r3+0]
    fld f4, [r4+0]       ; may-alias to the analysis, never truly aliases
    fmul f5, f4, f2
    fst f5, [r4+8]
    addi r1, r1, 1
    blt r1, r2, body, done
done:
    halt
";

fn run(opt: OptConfig, machine: MachineConfig) -> smarq_runtime::SystemStats {
    let program = parse_program(KERNEL).unwrap();
    let mut cfg = SystemConfig::with_opt(opt);
    cfg.machine = machine;
    let mut sys = DynOptSystem::new(program, cfg);
    sys.run_to_completion(u64::MAX);
    sys.stats().clone()
}

#[test]
fn energy_proxy_differs_between_schemes() {
    let m = MachineConfig::default();
    let smarq = run(OptConfig::smarq(64), m);
    let none = run(OptConfig::no_alias_hw(), m);
    assert!(smarq.scans_per_mem_op() > 0.0, "SMARQ examines entries");
    assert_eq!(none.alias_entries_scanned, 0, "no hardware, no scans");
    assert!(smarq.region_mem_ops > 0);
}

#[test]
fn dcache_configuration_runs_and_reports() {
    let m = MachineConfig {
        dcache: Some(CacheParams::default()),
        ..MachineConfig::default()
    };
    let with_cache = run(OptConfig::smarq(64), m);
    let without = run(OptConfig::smarq(64), MachineConfig::default());
    // The kernel's footprint fits in L1 and hit latency equals the fixed
    // latency, so cycles must agree after warmup misses (a few per line).
    let delta = with_cache.total_cycles().abs_diff(without.total_cycles());
    assert!(
        delta < 2_000,
        "cache-warmup difference only: {} vs {}",
        with_cache.total_cycles(),
        without.total_cycles()
    );
}

#[test]
fn assembly_data_image_reaches_translated_code() {
    // The .word initialization must be visible to region executions.
    let program = parse_program(KERNEL).unwrap();
    let mut sys = DynOptSystem::new(program, SystemConfig::default());
    sys.run_to_completion(u64::MAX);
    // f4 = mem[0x9000] was seeded with integer bits 7 -> f64::from_bits(7).
    assert_eq!(sys.interp().fregs[4].to_bits(), 7);
    assert!(sys.stats().regions_formed >= 1);
}

#[test]
fn budgeted_runs_report_partial_progress() {
    let program = parse_program(KERNEL).unwrap();
    let mut sys = DynOptSystem::new(program, SystemConfig::default());
    let out = sys.run_to_completion(2_000);
    assert_eq!(out, smarq_runtime::StopReason::BudgetExhausted);
    assert!(sys.stats().guest_instrs() >= 2_000);
    assert!(sys.stats().total_cycles() > 0);
}

#[test]
fn multi_guest_assembly_matches_interpreter() {
    // The `smarq-run --guests N` path: parsed assembly (with a data
    // image) as several tenants of one shared hub, every guest bit-exact.
    use smarq_runtime::{run_multi, GuestContext, HubConfig, TranslationHub, DEFAULT_SLICE_STEPS};
    let program = parse_program(KERNEL).unwrap();
    let mut reference = smarq_guest::Interpreter::new();
    reference.run(&program, u64::MAX);
    let expected = reference.arch_state();

    let mut hub_cfg = HubConfig::from_system(&SystemConfig::default());
    hub_cfg.workers = 0;
    let hub = TranslationHub::new(hub_cfg);
    let guests: Vec<GuestContext> = (0..3)
        .map(|i| GuestContext::new(i, program.clone(), &hub))
        .collect();
    let guests = run_multi(&hub, guests, 2, u64::MAX, DEFAULT_SLICE_STEPS);
    for g in &guests {
        assert!(g.halted());
        assert_eq!(g.interp().arch_state(), expected, "guest {}", g.id());
        assert_eq!(g.interp().fregs[4].to_bits(), 7, "data image visible");
    }
    assert_eq!(
        hub.stats().translations_started,
        1,
        "one hot region, translated once for all guests"
    );
}
