//! Every minimized repro captured by `smarq fuzz` is a permanent
//! regression test: each entry in `tests/corpus/` is replayed through the
//! full layered oracle stack (end-to-end state, allocation validation,
//! fast-path differentials) and must stay green — including the async
//! background translation pipeline, which is additionally swept here
//! across seeded interleaving schedules at the most contended queue
//! depth.

use smarq_fuzz::{check_program, load_dir, schemes, OracleParams};
use smarq_guest::Interpreter;
use smarq_runtime::{DynOptSystem, StepExecutor, StopReason, SystemConfig};
use std::path::Path;

#[test]
fn corpus_entries_replay_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("corpus directory loads");
    assert!(
        entries.len() >= 3,
        "expected at least 3 corpus entries in {}, found {}",
        dir.display(),
        entries.len()
    );
    for (path, program) in &entries {
        if let Err(d) = check_program(program, &OracleParams::default()) {
            panic!("{} diverged: {d}", path.display());
        }
    }
}

/// Satellite coverage for the async pipeline: every corpus entry, under
/// every hardware scheme, replayed with background translation through a
/// depth-1 manually stepped queue (maximum submit/publish contention)
/// across several interleaving seeds — and every combination must leave
/// architectural state bit-exact against the pure interpreter.
#[test]
fn corpus_replays_bit_exact_with_async_translation() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("corpus directory loads");
    for (path, program) in &entries {
        let mut reference = Interpreter::new();
        reference.run(program, u64::MAX);
        let expected = reference.arch_state();
        for (label, opt) in schemes() {
            for seed in [1u64, 7, 23] {
                let mut cfg = SystemConfig::with_opt(opt.clone());
                cfg.hot_threshold = 10;
                cfg.async_translate = true;
                cfg.translate_queue_depth = 1;
                let mut sys = DynOptSystem::with_executor(
                    program.clone(),
                    cfg,
                    Box::new(StepExecutor::manual(1)),
                );
                assert_eq!(
                    sys.run_interleaved(seed, u64::MAX),
                    StopReason::Halted,
                    "{} under {label} seed {seed}: did not halt",
                    path.display()
                );
                assert_eq!(
                    sys.interp().arch_state(),
                    expected,
                    "{} under {label} seed {seed}: async replay diverged",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn corpus_headers_record_provenance() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for (path, _) in load_dir(&dir).expect("corpus directory loads") {
        let src = std::fs::read_to_string(&path).unwrap();
        for field in ["; seed:", "; divergence:", "; ops:"] {
            assert!(
                src.contains(field),
                "{} is missing the `{field}` header",
                path.display()
            );
        }
    }
}
