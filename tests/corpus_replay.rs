//! Every minimized repro captured by `smarq fuzz` is a permanent
//! regression test: each entry in `tests/corpus/` is replayed through the
//! full layered oracle stack (end-to-end state, allocation validation,
//! fast-path differentials) and must stay green.

use smarq_fuzz::{check_program, load_dir, OracleParams};
use std::path::Path;

#[test]
fn corpus_entries_replay_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("corpus directory loads");
    assert!(
        entries.len() >= 3,
        "expected at least 3 corpus entries in {}, found {}",
        dir.display(),
        entries.len()
    );
    for (path, program) in &entries {
        if let Err(d) = check_program(program, &OracleParams::default()) {
            panic!("{} diverged: {d}", path.display());
        }
    }
}

#[test]
fn corpus_headers_record_provenance() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for (path, _) in load_dir(&dir).expect("corpus directory loads") {
        let src = std::fs::read_to_string(&path).unwrap();
        for field in ["; seed:", "; divergence:", "; ops:"] {
            assert!(
                src.contains(field),
                "{} is missing the `{field}` header",
                path.display()
            );
        }
    }
}
