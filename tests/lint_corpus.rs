//! Corpus-wide static verification: every regression entry in
//! `tests/corpus/` must verify clean under the `crates/verify` validator
//! and lint framework, across every hardware scheme the lint driver
//! exercises. This is the same check the CI `lint-corpus` job and
//! `smarq lint tests/corpus` run.

use std::path::Path;

#[test]
fn corpus_verifies_clean_under_static_validator() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let outcome = smarq_fuzz::lint_paths(&[dir.as_path()], |_| {}).expect("corpus lints");
    assert!(
        outcome.entries >= 3,
        "expected at least 3 corpus entries, found {}",
        outcome.entries
    );
    assert!(
        outcome.regions > 0,
        "corpus programs must form regions to verify"
    );
    let report: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| format!("{} [{}]: {}", f.entry, f.scheme, f.diagnostic))
        .collect();
    assert!(
        outcome.is_clean(),
        "{} error-severity finding(s):\n{}",
        outcome.errors,
        report.join("\n")
    );
}
