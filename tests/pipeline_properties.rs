//! Property-based end-to-end soundness: for *randomly generated* guest
//! loops — including ones whose pointers truly alias at runtime — the
//! dynamically optimized execution must produce exactly the architectural
//! state pure interpretation produces, under every hardware scheme.

use proptest::prelude::*;
use smarq_guest::{AluOp, BlockId, CmpOp, FReg, FpuOp, Interpreter, Program, ProgramBuilder, Reg};
use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};

/// One random memory/compute op in the loop body.
#[derive(Clone, Copy, Debug)]
enum BodyOp {
    Ld { dst: u8, base: u8, disp: u8 },
    St { src: u8, base: u8, disp: u8 },
    FLd { dst: u8, base: u8, disp: u8 },
    FSt { src: u8, base: u8, disp: u8 },
    Alu { op: u8, dst: u8, a: u8, b: u8 },
    Fpu { op: u8, dst: u8, a: u8, b: u8 },
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0u8..6, 10u8..16, 0u8..8).prop_map(|(dst, base, disp)| BodyOp::Ld {
            dst: dst + 16,
            base,
            disp
        }),
        (0u8..6, 10u8..16, 0u8..8).prop_map(|(src, base, disp)| BodyOp::St {
            src: src + 16,
            base,
            disp
        }),
        (0u8..6, 10u8..16, 0u8..8).prop_map(|(dst, base, disp)| BodyOp::FLd {
            dst: dst + 8,
            base,
            disp
        }),
        (0u8..6, 10u8..16, 0u8..8).prop_map(|(src, base, disp)| BodyOp::FSt {
            src: src + 8,
            base,
            disp
        }),
        (0u8..5, 0u8..6, 0u8..6, 0u8..6).prop_map(|(op, dst, a, b)| BodyOp::Alu {
            op,
            dst: dst + 16,
            a: a + 16,
            b: b + 16
        }),
        (0u8..4, 0u8..6, 0u8..6, 0u8..6).prop_map(|(op, dst, a, b)| BodyOp::Fpu {
            op,
            dst: dst + 8,
            a: a + 8,
            b: b + 8
        }),
    ]
}

/// A random loop program: pointer registers r10..r15 point into a small
/// pool of base addresses (collisions = genuine runtime aliasing the
/// analysis cannot see), plus a random straight-line body.
#[derive(Clone, Debug)]
struct RandomLoop {
    program: Program,
}

fn random_loop() -> impl Strategy<Value = RandomLoop> {
    (
        proptest::collection::vec(body_op(), 4..40),
        proptest::collection::vec(0u64..4, 6), // pointer -> address pool
        20i64..120,
    )
        .prop_map(|(ops, bases, iters)| {
            let mut b = ProgramBuilder::new();
            let entry = b.block();
            let body = b.block();
            let done = b.block();
            b.iconst(entry, Reg(1), 0);
            b.iconst(entry, Reg(2), iters);
            for (i, &pool) in bases.iter().enumerate() {
                // Address pool of 4 slots, 64 bytes apart: some pointers
                // truly alias, some do not.
                b.iconst(entry, Reg(10 + i as u8), 0x1000 + pool as i64 * 64);
            }
            for (i, fr) in (8u8..16).enumerate() {
                b.fconst(entry, FReg(fr), 1.0 + i as f64 * 0.5);
            }
            for (i, r) in (16u8..22).enumerate() {
                b.iconst(entry, Reg(r), i as i64 * 3 + 1);
            }
            b.jump(entry, body);

            let alu_ops = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And];
            let fpu_ops = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Max];
            for op in &ops {
                match *op {
                    BodyOp::Ld { dst, base, disp } => {
                        b.ld(body, Reg(dst), Reg(base), i64::from(disp) * 8)
                    }
                    BodyOp::St { src, base, disp } => {
                        b.st(body, Reg(src), Reg(base), i64::from(disp) * 8)
                    }
                    BodyOp::FLd { dst, base, disp } => {
                        b.fld(body, FReg(dst), Reg(base), i64::from(disp) * 8)
                    }
                    BodyOp::FSt { src, base, disp } => {
                        b.fst(body, FReg(src), Reg(base), i64::from(disp) * 8)
                    }
                    BodyOp::Alu { op, dst, a, b: rb } => b.alu(
                        body,
                        alu_ops[op as usize % alu_ops.len()],
                        Reg(dst),
                        Reg(a),
                        Reg(rb),
                    ),
                    BodyOp::Fpu { op, dst, a, b: rb } => b.fpu(
                        body,
                        fpu_ops[op as usize % fpu_ops.len()],
                        FReg(dst),
                        FReg(a),
                        FReg(rb),
                    ),
                }
            }
            b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
            b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
            b.halt(done);
            RandomLoop {
                program: b.finish(entry),
            }
        })
}

fn check_equivalence(rl: &RandomLoop, opt: OptConfig, label: &str) -> Result<(), TestCaseError> {
    let mut reference = Interpreter::new();
    reference.run(&rl.program, u64::MAX);
    let expected = reference.arch_state();

    let mut config = SystemConfig::with_opt(opt);
    config.hot_threshold = 5; // translate early: short random loops
    config.formation.cold_threshold = 2;
    let mut sys = DynOptSystem::new(rl.program.clone(), config);
    sys.run_to_completion(u64::MAX);
    prop_assert_eq!(
        sys.interp().arch_state(),
        expected,
        "{} diverged from interpretation",
        label
    );
    prop_assert!(sys.stats().regions_formed >= 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_loops_are_bit_exact_under_smarq(rl in random_loop()) {
        check_equivalence(&rl, OptConfig::smarq(64), "smarq64")?;
        check_equivalence(&rl, OptConfig::smarq(8), "smarq8")?;
    }

    #[test]
    fn random_loops_are_bit_exact_under_other_hardware(rl in random_loop()) {
        check_equivalence(&rl, OptConfig::alat(), "alat")?;
        check_equivalence(&rl, OptConfig::efficeon(), "efficeon")?;
        check_equivalence(&rl, OptConfig::no_alias_hw(), "none")?;
        check_equivalence(&rl, OptConfig::smarq_no_store_reorder(64), "no-st-reorder")?;
    }

    /// The loop body also optimizes correctly as a *cold* program (pure
    /// interpretation path) — a guard against profile-dependent bugs.
    #[test]
    fn random_loops_interpret_deterministically(rl in random_loop()) {
        let mut a = Interpreter::new();
        a.run(&rl.program, u64::MAX);
        let mut b = Interpreter::new();
        b.run(&rl.program, u64::MAX);
        prop_assert_eq!(a.arch_state(), b.arch_state());
    }
}
