//! Property-based end-to-end soundness: for *randomly generated* guest
//! loops — including ones whose pointers truly alias at runtime — the
//! dynamically optimized execution must produce exactly the architectural
//! state pure interpretation produces, under every hardware scheme.
//!
//! Loops are drawn from the in-repo seeded [`Prng`] (the workspace builds
//! offline, without proptest); failures reproduce from the printed seed.

use smarq::prng::Prng;
use smarq_guest::{AluOp, CmpOp, FReg, FpuOp, Interpreter, Program, ProgramBuilder, Reg};
use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};

/// One random memory/compute op in the loop body.
#[derive(Clone, Copy, Debug)]
enum BodyOp {
    Ld { dst: u8, base: u8, disp: u8 },
    St { src: u8, base: u8, disp: u8 },
    FLd { dst: u8, base: u8, disp: u8 },
    FSt { src: u8, base: u8, disp: u8 },
    Alu { op: u8, dst: u8, a: u8, b: u8 },
    Fpu { op: u8, dst: u8, a: u8, b: u8 },
}

fn body_op(rng: &mut Prng) -> BodyOp {
    let mem = |rng: &mut Prng| {
        (
            rng.range_u32(0, 6) as u8,
            rng.range_u32(10, 16) as u8,
            rng.range_u32(0, 8) as u8,
        )
    };
    match rng.bounded(6) {
        0 => {
            let (dst, base, disp) = mem(rng);
            BodyOp::Ld {
                dst: dst + 16,
                base,
                disp,
            }
        }
        1 => {
            let (src, base, disp) = mem(rng);
            BodyOp::St {
                src: src + 16,
                base,
                disp,
            }
        }
        2 => {
            let (dst, base, disp) = mem(rng);
            BodyOp::FLd {
                dst: dst + 8,
                base,
                disp,
            }
        }
        3 => {
            let (src, base, disp) = mem(rng);
            BodyOp::FSt {
                src: src + 8,
                base,
                disp,
            }
        }
        4 => BodyOp::Alu {
            op: rng.range_u32(0, 5) as u8,
            dst: rng.range_u32(0, 6) as u8 + 16,
            a: rng.range_u32(0, 6) as u8 + 16,
            b: rng.range_u32(0, 6) as u8 + 16,
        },
        _ => BodyOp::Fpu {
            op: rng.range_u32(0, 4) as u8,
            dst: rng.range_u32(0, 6) as u8 + 8,
            a: rng.range_u32(0, 6) as u8 + 8,
            b: rng.range_u32(0, 6) as u8 + 8,
        },
    }
}

/// A random loop program: pointer registers r10..r15 point into a small
/// pool of base addresses (collisions = genuine runtime aliasing the
/// analysis cannot see), plus a random straight-line body.
#[derive(Clone, Debug)]
struct RandomLoop {
    program: Program,
}

fn random_loop(rng: &mut Prng) -> RandomLoop {
    let ops: Vec<BodyOp> = (0..rng.range_usize(4, 40)).map(|_| body_op(rng)).collect();
    let bases: Vec<u64> = (0..6).map(|_| rng.bounded(4)).collect();
    let iters = rng.range_i64(20, 120);

    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    for (i, &pool) in bases.iter().enumerate() {
        // Address pool of 4 slots, 64 bytes apart: some pointers truly
        // alias, some do not.
        b.iconst(entry, Reg(10 + i as u8), 0x1000 + pool as i64 * 64);
    }
    for (i, fr) in (8u8..16).enumerate() {
        b.fconst(entry, FReg(fr), 1.0 + i as f64 * 0.5);
    }
    for (i, r) in (16u8..22).enumerate() {
        b.iconst(entry, Reg(r), i as i64 * 3 + 1);
    }
    b.jump(entry, body);

    let alu_ops = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And];
    let fpu_ops = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Max];
    for op in &ops {
        match *op {
            BodyOp::Ld { dst, base, disp } => b.ld(body, Reg(dst), Reg(base), i64::from(disp) * 8),
            BodyOp::St { src, base, disp } => b.st(body, Reg(src), Reg(base), i64::from(disp) * 8),
            BodyOp::FLd { dst, base, disp } => {
                b.fld(body, FReg(dst), Reg(base), i64::from(disp) * 8)
            }
            BodyOp::FSt { src, base, disp } => {
                b.fst(body, FReg(src), Reg(base), i64::from(disp) * 8)
            }
            BodyOp::Alu { op, dst, a, b: rb } => b.alu(
                body,
                alu_ops[op as usize % alu_ops.len()],
                Reg(dst),
                Reg(a),
                Reg(rb),
            ),
            BodyOp::Fpu { op, dst, a, b: rb } => b.fpu(
                body,
                fpu_ops[op as usize % fpu_ops.len()],
                FReg(dst),
                FReg(a),
                FReg(rb),
            ),
        }
    }
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    RandomLoop {
        program: b.finish(entry),
    }
}

fn check_equivalence(rl: &RandomLoop, opt: OptConfig, label: &str, seed: u64) {
    let mut reference = Interpreter::new();
    reference.run(&rl.program, u64::MAX);
    let expected = reference.arch_state();

    let mut config = SystemConfig::with_opt(opt);
    config.hot_threshold = 5; // translate early: short random loops
    config.formation.cold_threshold = 2;
    let mut sys = DynOptSystem::new(rl.program.clone(), config);
    sys.run_to_completion(u64::MAX);
    assert_eq!(
        sys.interp().arch_state(),
        expected,
        "seed {seed}: {label} diverged from interpretation"
    );
    assert!(sys.stats().regions_formed >= 1, "seed {seed}: {label}");
}

const CASES: u64 = 48;

#[test]
fn random_loops_are_bit_exact_under_smarq() {
    for seed in 0..CASES {
        let rl = random_loop(&mut Prng::new(seed));
        check_equivalence(&rl, OptConfig::smarq(64), "smarq64", seed);
        check_equivalence(&rl, OptConfig::smarq(8), "smarq8", seed);
    }
}

#[test]
fn random_loops_are_bit_exact_under_other_hardware() {
    for seed in 1000..1000 + CASES {
        let rl = random_loop(&mut Prng::new(seed));
        check_equivalence(&rl, OptConfig::alat(), "alat", seed);
        check_equivalence(&rl, OptConfig::efficeon(), "efficeon", seed);
        check_equivalence(&rl, OptConfig::no_alias_hw(), "none", seed);
        check_equivalence(
            &rl,
            OptConfig::smarq_no_store_reorder(64),
            "no-st-reorder",
            seed,
        );
    }
}

/// The loop body also interprets deterministically — a guard against
/// profile-dependent bugs.
#[test]
fn random_loops_interpret_deterministically() {
    for seed in 2000..2000 + CASES {
        let rl = random_loop(&mut Prng::new(seed));
        let mut a = Interpreter::new();
        a.run(&rl.program, u64::MAX);
        let mut b = Interpreter::new();
        b.run(&rl.program, u64::MAX);
        assert_eq!(a.arch_state(), b.arch_state(), "seed {seed}");
    }
}
