; smarq-fuzz minimized repro
; seed: 3
; divergence: depgraph-mismatch under smarq64 region 4: 1 edges missing from fast path [Dep { src: M1, dst: M2, kind: Plain }], 0 extra []
; ops: 41 -> 5
b0:
    iconst r2, 15
    jump b1
b1:
    blt r23, r19, b3, b4
b2:
    halt
b3:
    jump b5
b4:
    jump b5
b5:
    jump b6
b6:
    blt r3, r4, b6, b7
b7:
    st r23, [r15+12]
    ld r21, [r10+36]
    st r19, [r15+12]
    addi r1, r1, 1
    blt r1, r2, b1, b2
