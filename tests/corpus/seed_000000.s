; smarq-fuzz minimized repro
; seed: 0
; divergence: depgraph-mismatch under smarq64 region 2: 1 edges missing from fast path [Dep { src: M1, dst: M2, kind: Plain }], 0 extra []
; ops: 70 -> 5
b0:
    iconst r2, 10
    jump b1
b1:
    jump b3
b2:
    halt
b3:
    blt r3, r4, b3, b4
b4:
    st r17, [r14+8]
    ld r17, [r12+56]
    st r22, [r14+8]
    addi r1, r1, 1
    blt r1, r2, b1, b2
