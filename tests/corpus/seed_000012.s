; smarq-fuzz minimized repro
; seed: 12
; divergence: arch-mismatch under none: r16: expected 1, got 0 (unaligned
;   base 2054: ld [r15+12] and st [r15+16] share word 258 at runtime, but
;   aligned-window displacement folding in MemRef::relation declared them
;   no-alias — miscompiled under every scheme, speculative or not)
; ops: 58 -> 8
b0:
    iconst r2, 14
    iconst r15, 2054
    iconst r22, 1
    jump b1
b1:
    ld r16, [r15+12]
    st r20, [r15+16]
    ld r18, [r10+28]
    st r22, [r15+16]
    addi r1, r1, 1
    blt r1, r2, b1, b2
b2:
    halt
