; smarq-fuzz minimized repro
; seed: 1
; divergence: depgraph-mismatch under smarq64 region 4: 1 edges missing from fast path [Dep { src: M1, dst: M2, kind: Plain }], 0 extra []
; ops: 51 -> 5
b0:
    iconst r2, 11
    jump b1
b1:
    bne r17, r22, b3, b4
b2:
    halt
b3:
    jump b5
b4:
    jump b5
b5:
    blt r21, r20, b6, b7
b6:
    jump b8
b7:
    jump b8
b8:
    st r20, [r13+0]
    ld r21, [r10+0]
    st r23, [r11+4]
    addi r1, r1, 1
    blt r1, r2, b1, b2
