; smarq-fuzz minimized repro
; seed: 2
; divergence: depgraph-mismatch under smarq64 region 4: 1 edges missing from fast path [Dep { src: M1, dst: M2, kind: Plain }], 0 extra []
; ops: 62 -> 5
b0:
    iconst r2, 15
    jump b1
b1:
    jump b3
b2:
    halt
b3:
    blt r3, r4, b3, b4
b4:
    beq r20, r23, b5, b6
b5:
    jump b7
b6:
    jump b7
b7:
    ld r20, [r12+32]
    st r21, [r11+16]
    fst f12, [r12+36]
    addi r1, r1, 1
    blt r1, r2, b1, b2
