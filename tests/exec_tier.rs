//! Corpus-wide differential for the fast functional execution tier.
//!
//! Every minimized repro in `tests/corpus/` is executed twice through the
//! full `DynOptSystem` — once on the default chained cycle simulator and
//! once with `ExecTier::Functional` and every functional region entry
//! tier-down sampled (`tier_sample_interval = 1`). The two runs must
//! agree bit-exactly on final architectural state and guest-instruction
//! accounting, and every in-run sample must have compared bit-exact,
//! under every hardware scheme.
//!
//! The targeted tier-transition tests (tier-up on install, deopt state
//! equivalence, sampling on/off, abandonment) live next to the tiering
//! policy in `crates/runtime/src/system.rs`; this test is the breadth
//! half.

use smarq_fuzz::{load_dir, schemes};
use smarq_runtime::{DynOptSystem, ExecTier, SystemConfig};
use std::path::Path;

#[test]
fn corpus_is_bit_exact_across_execution_tiers() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("corpus directory loads");
    assert!(
        !entries.is_empty(),
        "no corpus entries in {}",
        dir.display()
    );

    let mut fast_entries = 0u64;
    let mut samples = 0u64;
    for (path, program) in &entries {
        for (label, opt) in schemes() {
            let mut cfg = SystemConfig::with_opt(opt);
            // Low threshold so the short corpus programs form regions.
            cfg.hot_threshold = 10;
            cfg.exec_tier = ExecTier::CycleSim;

            let mut cycle = DynOptSystem::new(program.clone(), cfg.clone());
            cycle.run_to_completion(u64::MAX);

            let mut fast_cfg = cfg;
            fast_cfg.exec_tier = ExecTier::Functional;
            fast_cfg.tier_sample_interval = 1;
            let mut fast = DynOptSystem::new(program.clone(), fast_cfg);
            fast.run_to_completion(u64::MAX);

            assert_eq!(
                fast.interp().arch_state(),
                cycle.interp().arch_state(),
                "{} under {label}: functional tier and cycle sim left \
                 different architectural state",
                path.display()
            );
            assert_eq!(
                fast.stats().guest_instrs(),
                cycle.stats().guest_instrs(),
                "{} under {label}: guest-instruction totals diverged",
                path.display()
            );
            assert_eq!(
                fast.stats().tier_sample_mismatches,
                0,
                "{} under {label}: {} of {} tier-down samples were not \
                 bit-exact",
                path.display(),
                fast.stats().tier_sample_mismatches,
                fast.stats().tier_samples
            );
            assert_eq!(
                cycle.stats().tier_fast_entries,
                0,
                "{} under {label}: cycle-sim run must never enter the \
                 functional tier",
                path.display()
            );
            fast_entries += fast.stats().tier_fast_entries;
            samples += fast.stats().tier_samples;
        }
    }
    assert!(
        fast_entries > 0,
        "no corpus entry ever ran on the functional tier; the \
         differential is not exercising the fast path"
    );
    assert!(
        samples > 0,
        "no functional region entry was ever tier-down sampled"
    );
}
