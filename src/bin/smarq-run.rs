//! `smarq-run` — execute a guest assembly file on the dynamic optimization
//! system.
//!
//! ```text
//! smarq-run FILE.s [--hw smarq|smarq16|efficeon|alat|none]
//!                  [--regs N] [--unroll N] [--budget N]
//!                  [--dispatch naive|chained] [--exec-tier cycle|functional]
//!                  [--async-translate] [--translate-workers N]
//!                  [--translate-queue N] [--guests N] [--threads M]
//!                  [--dump-region] [--compare] [--verify]
//!                  [--nospec LO..HI[,..]]
//! smarq-run lint PATH... [--json FILE] [--nospec LO..HI[,..]]
//!                  [--deny CODE] [--allow CODE]
//! smarq-run lint --list
//! ```
//!
//! The `lint` subcommand statically verifies and lints every region the
//! system forms for the given programs (or corpus directories) under every
//! hardware scheme — see `crates/verify`. `--list` prints the stable
//! diagnostic code table; `--deny CODE` / `--allow CODE` raise/lower a
//! code's severity before the exit status is decided. `--verify` enables
//! the runtime's verify-on-emit mode for a normal run (also via
//! `SMARQ_VERIFY=1`); with it, region→region link formation additionally
//! runs the whole-chain static analyzer. `--nospec LO..HI[,..]` declares
//! half-open unspeculatable address ranges (also via `SMARQ_NOSPEC`):
//! the optimizer never schedules speculation that can touch them, and the
//! chain analyzer proves none was.
//! `--exec-tier functional` runs optimized regions on the fast functional
//! tier with sampled cycle-sim tier-down checks (also via
//! `SMARQ_EXEC_TIER=functional`); `--dispatch naive` disables region
//! chaining. `--async-translate` moves region formation, optimization and
//! verification onto background worker threads (also via
//! `SMARQ_ASYNC_TRANSLATE=1`): the guest keeps interpreting while
//! translations are in flight and finished regions publish atomically at
//! dispatch-step boundaries. `--translate-workers N` sizes the pool
//! (`0` = a deterministic in-thread stepper) and `--translate-queue N`
//! bounds the job queue.
//!
//! `--guests N` (N >= 2) switches to the multi-guest runtime: N tenants
//! of the same program run over one shared `TranslationHub` (sharded
//! translation cache, single-flight dedup, shared blacklist), scheduled
//! on `--threads M` host threads. `--translate-workers` then sizes the
//! hub's background pool (`0` = translate inline in the requesting
//! guest) and `--compare` checks every guest bit-exactly against pure
//! interpretation.

use smarq_opt::OptConfig;
use smarq_runtime::{
    run_multi, DispatchMode, DynOptSystem, ExecTier, GuestContext, HubConfig, SystemConfig,
    TranslationHub, DEFAULT_SLICE_STEPS,
};
use std::process::ExitCode;

struct Args {
    file: String,
    hw: String,
    regs: u32,
    unroll: u32,
    budget: u64,
    dispatch: Option<DispatchMode>,
    exec_tier: Option<ExecTier>,
    async_translate: bool,
    translate_workers: Option<u32>,
    translate_queue: Option<u32>,
    guests: usize,
    threads: usize,
    dump_region: bool,
    compare: bool,
    verify: bool,
    nospec: Option<smarq::range::NospecRanges>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: smarq-run FILE.s [--hw smarq|smarq16|efficeon|alat|none] \
         [--regs N] [--unroll N] [--budget N] [--dispatch naive|chained] \
         [--exec-tier cycle|functional] [--async-translate] \
         [--translate-workers N] [--translate-queue N] \
         [--guests N] [--threads M] \
         [--dump-region] [--compare] [--verify] [--nospec LO..HI[,..]]\n\
         \x20      smarq-run lint PATH... [--json FILE] [--nospec LO..HI[,..]] \
         [--deny CODE] [--allow CODE]\n\
         \x20      smarq-run lint --list"
    );
    ExitCode::from(2)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        println!("code table version {}", smarq_verify::CODE_TABLE_VERSION);
        for info in smarq_verify::CODES {
            println!(
                "{:<24} {:<9} {:<7} {}",
                info.code,
                info.origin.label(),
                format!("{:?}", info.default_severity).to_lowercase(),
                info.description
            );
        }
        return ExitCode::SUCCESS;
    }
    let mut paths: Vec<&str> = Vec::new();
    let mut json_out: Option<std::path::PathBuf> = None;
    let mut nospec = smarq::range::NospecRanges::none();
    let mut deny: Vec<String> = Vec::new();
    let mut allow: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if matches!(flag, "--json" | "--nospec" | "--deny" | "--allow") {
            let Some(v) = args.get(i + 1) else {
                eprintln!("{flag} needs a value");
                return usage();
            };
            match flag {
                "--json" => json_out = Some(std::path::PathBuf::from(v)),
                "--nospec" => match smarq::range::NospecRanges::parse(v) {
                    Ok(r) => nospec = r,
                    Err(e) => {
                        eprintln!("--nospec: {e}");
                        return usage();
                    }
                },
                "--deny" => deny.push(v.clone()),
                _ => allow.push(v.clone()),
            }
            i += 2;
        } else if flag.starts_with('-') {
            eprintln!("unknown flag '{flag}'");
            return usage();
        } else {
            paths.push(flag);
            i += 1;
        }
    }
    if paths.is_empty() {
        return usage();
    }
    let policy = match smarq_verify::LintPolicy::new(deny, allow) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("smarq-run: {e}");
            return usage();
        }
    };
    let config = smarq_fuzz::LintConfig { nospec, policy };
    let path_refs: Vec<&std::path::Path> = paths.iter().map(std::path::Path::new).collect();
    let outcome =
        match smarq_fuzz::lint_paths_with(&path_refs, &config, |line| println!("[lint] {line}")) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("smarq-run: {e}");
                return ExitCode::from(1);
            }
        };
    println!(
        "[lint] {} entr(ies), {} region(s): {} error(s), {} warning(s)",
        outcome.entries, outcome.regions, outcome.errors, outcome.warnings
    );
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, smarq_fuzz::lint::to_json(&outcome)) {
            eprintln!("smarq-run: writing {}: {e}", path.display());
            return ExitCode::from(1);
        }
        println!("[lint] wrote {}", path.display());
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        file: String::new(),
        hw: "smarq".into(),
        regs: 64,
        unroll: 1,
        budget: u64::MAX,
        dispatch: None,
        exec_tier: None,
        async_translate: false,
        translate_workers: None,
        translate_queue: None,
        guests: 1,
        threads: 1,
        dump_region: false,
        compare: false,
        verify: false,
        nospec: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--hw" => args.hw = value("--hw")?,
            "--regs" => {
                args.regs = value("--regs")?.parse().map_err(|_| usage())?;
            }
            "--unroll" => {
                args.unroll = value("--unroll")?.parse().map_err(|_| usage())?;
            }
            "--budget" => {
                args.budget = value("--budget")?.parse().map_err(|_| usage())?;
            }
            "--dispatch" => {
                args.dispatch = Some(match value("--dispatch")?.as_str() {
                    "naive" => DispatchMode::Naive,
                    "chained" => DispatchMode::Chained,
                    other => {
                        eprintln!("unknown dispatch mode '{other}' (naive|chained)");
                        return Err(usage());
                    }
                });
            }
            "--exec-tier" => {
                args.exec_tier = Some(match value("--exec-tier")?.as_str() {
                    "cycle" | "cycle-sim" => ExecTier::CycleSim,
                    "functional" | "fast" => ExecTier::Functional,
                    other => {
                        eprintln!("unknown exec tier '{other}' (cycle|functional)");
                        return Err(usage());
                    }
                });
            }
            "--async-translate" => args.async_translate = true,
            "--translate-workers" => {
                args.translate_workers =
                    Some(value("--translate-workers")?.parse().map_err(|_| usage())?);
            }
            "--translate-queue" => {
                args.translate_queue =
                    Some(value("--translate-queue")?.parse().map_err(|_| usage())?);
            }
            "--guests" => {
                args.guests = value("--guests")?.parse().map_err(|_| usage())?;
                if args.guests == 0 {
                    eprintln!("--guests must be at least 1");
                    return Err(usage());
                }
            }
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|_| usage())?;
                if args.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    return Err(usage());
                }
            }
            "--nospec" => {
                args.nospec = Some(
                    smarq::range::NospecRanges::parse(&value("--nospec")?).map_err(|e| {
                        eprintln!("--nospec: {e}");
                        usage()
                    })?,
                );
            }
            "--dump-region" => args.dump_region = true,
            "--compare" => args.compare = true,
            "--verify" => args.verify = true,
            "-h" | "--help" => return Err(usage()),
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}'");
                return Err(usage());
            }
            file => {
                if !args.file.is_empty() {
                    return Err(usage());
                }
                args.file = file.to_string();
            }
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn opt_for(hw: &str, regs: u32) -> Option<OptConfig> {
    Some(match hw {
        "smarq" => OptConfig::smarq(regs),
        "smarq16" => OptConfig::smarq(16),
        "efficeon" => OptConfig::efficeon(),
        "alat" => OptConfig::alat(),
        "none" => OptConfig::no_alias_hw(),
        _ => return None,
    })
}

/// The `--guests N` path: N tenants of the same program over one shared
/// translation hub, scheduled on `--threads M` host threads.
fn run_multi_guests(program: smarq_guest::Program, cfg: SystemConfig, args: &Args) -> ExitCode {
    let hub = TranslationHub::new(HubConfig::from_system(&cfg));
    let guests: Vec<GuestContext> = (0..args.guests)
        .map(|i| GuestContext::new(i, program.clone(), &hub))
        .collect();
    let t0 = std::time::Instant::now();
    let guests = run_multi(&hub, guests, args.threads, args.budget, DEFAULT_SLICE_STEPS);
    let wall = t0.elapsed().as_secs_f64();
    hub.drain();
    let hs = hub.stats();

    let halted = guests.iter().filter(|g| g.halted()).count();
    let instrs: u64 = guests.iter().map(|g| g.stats().guest_instrs()).sum();
    let rollbacks: u64 = guests.iter().map(|g| g.stats().rollbacks).sum();
    println!("hardware:            {}", args.hw);
    println!(
        "multi-guest:         {} guests on {} threads, {}/{} halted, {:.3}s wall",
        args.guests, args.threads, halted, args.guests, wall
    );
    println!(
        "guest instructions:  {} total ({:.2}M/s aggregate)",
        instrs,
        instrs as f64 / wall / 1.0e6
    );
    println!(
        "shared hub:          {} translations, {} re-translations, {} cache hits, \
         {} single-flight waits, {} rollbacks, {} abandoned",
        hs.translations_started,
        hs.retranslations,
        hs.probe_hits,
        hs.single_flight_hits,
        rollbacks,
        hs.abandoned
    );
    println!(
        "publish ledger:      {} published + {} conflicts, {} keys live, epoch {}",
        hs.translations_published, hs.publish_conflicts, hs.published_keys, hs.epoch
    );

    if args.compare {
        if args.budget == u64::MAX {
            let mut reference = smarq_guest::Interpreter::new();
            reference.run(&program, u64::MAX);
            let expected = reference.arch_state();
            for g in &guests {
                if g.interp().arch_state() != expected {
                    eprintln!(
                        "state check:         guest {} MISMATCH vs pure interpretation",
                        g.id()
                    );
                    return ExitCode::from(1);
                }
            }
            println!(
                "state check:         all {} guests bit-exact vs pure interpretation",
                args.guests
            );
        } else {
            eprintln!("state check:         skipped (budgeted run)");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("lint") {
        return cmd_lint(&raw[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::from(1);
        }
    };
    let program = match smarq_guest::parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", args.file);
            return ExitCode::from(1);
        }
    };
    let Some(opt) = opt_for(&args.hw, args.regs) else {
        eprintln!("unknown hardware scheme '{}'", args.hw);
        return usage();
    };

    let mut cfg = SystemConfig::with_opt(opt);
    cfg.unroll_factor = args.unroll;
    if args.verify {
        cfg.verify_translations = true;
    }
    if let Some(d) = args.dispatch {
        cfg.dispatch = d;
    }
    if let Some(t) = args.exec_tier {
        cfg.exec_tier = t;
    }
    if args.async_translate {
        cfg.async_translate = true;
    }
    if let Some(w) = args.translate_workers {
        cfg.translate_workers = w;
    }
    if let Some(q) = args.translate_queue {
        cfg.translate_queue_depth = q;
    }
    if let Some(n) = args.nospec.clone() {
        cfg.nospec_ranges = n;
    }
    if args.guests >= 2 {
        return run_multi_guests(program, cfg, &args);
    }

    let tier = cfg.exec_tier;
    let async_on = cfg.async_translate;
    let mut sys = DynOptSystem::new(program.clone(), cfg);
    sys.run_to_completion(args.budget);
    if async_on {
        // Settle in-flight jobs so the worker/publish counters are final.
        sys.translation_drain();
    }
    let s = sys.stats();

    println!("hardware:            {}", args.hw);
    println!("guest instructions:  {}", s.guest_instrs());
    println!("simulated cycles:    {}", s.total_cycles());
    println!(
        "regions:             {} formed, {} entries, {} rollbacks, {} re-translations",
        s.regions_formed, s.region_entries, s.rollbacks, s.retranslations
    );
    println!(
        "optimization:        {:.4}% of execution time",
        s.optimization_overhead() * 100.0
    );
    if tier == ExecTier::Functional {
        println!(
            "functional tier:     {} fast entries, {} deopts, {} samples ({} mismatches, {} sampled cycles)",
            s.tier_fast_entries,
            s.tier_deopts,
            s.tier_samples,
            s.tier_sample_mismatches,
            s.tier_sampled_cycles
        );
    }
    if async_on {
        println!(
            "async translation:   {} enqueued, {} published, {} conflicts, {} stale entries, \
             {} stall cycles avoided",
            s.async_enqueued,
            s.async_published,
            s.async_publish_conflicts,
            s.async_stale_entries,
            s.stall_cycles_avoided()
        );
    }
    if s.regions_verified > 0 || s.verify_errors > 0 {
        println!(
            "verification:        {} region(s) statically verified, {} error(s)",
            s.regions_verified, s.verify_errors
        );
        for d in &s.verify_diagnostics {
            println!("  {d}");
        }
        if s.verify_errors > 0 {
            return ExitCode::from(1);
        }
    }
    if let Some(r) = s.per_region.iter().max_by_key(|r| r.entries) {
        println!(
            "hot region:          {} memops, working set {}, {} checks, {} antis",
            r.opt.mem_ops, r.opt.working_set, r.opt.checks, r.opt.antis
        );
    }

    if args.dump_region {
        // Re-derive the hot region's translation for display.
        use smarq_ir::{form_superblock, unroll_superblock, FormationParams};
        let mut interp = smarq_guest::Interpreter::new();
        interp.run(&program, 100_000);
        if let Some(rec) = s.per_region.iter().max_by_key(|r| r.entries) {
            let sb = form_superblock(
                &program,
                interp.profile(),
                rec.entry,
                FormationParams::default(),
            );
            let (sb, _) = unroll_superblock(&sb, args.unroll, 512);
            let Some(opt) = opt_for(&args.hw, args.regs) else {
                unreachable!("validated above");
            };
            let o = smarq_opt::optimize_superblock(
                &sb,
                &opt,
                &smarq_vliw::MachineConfig::default(),
                sys.blacklist(),
            );
            println!("\ntranslated hot region:\n{}", o.vliw);
        }
    }

    if args.compare {
        let mut reference = smarq_guest::Interpreter::new();
        reference.run(&program, args.budget);
        if args.budget == u64::MAX {
            if sys.interp().arch_state() == reference.arch_state() {
                println!("state check:         bit-exact vs pure interpretation");
            } else {
                eprintln!("state check:         MISMATCH vs pure interpretation");
                return ExitCode::from(1);
            }
        } else {
            eprintln!("state check:         skipped (budgeted run)");
        }
    }
    ExitCode::SUCCESS
}
