//! `smarq-run` — execute a guest assembly file on the dynamic optimization
//! system.
//!
//! ```text
//! smarq-run FILE.s [--hw smarq|smarq16|efficeon|alat|none]
//!                  [--regs N] [--unroll N] [--budget N]
//!                  [--dump-region] [--compare]
//! ```

use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, SystemConfig};
use std::process::ExitCode;

struct Args {
    file: String,
    hw: String,
    regs: u32,
    unroll: u32,
    budget: u64,
    dump_region: bool,
    compare: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: smarq-run FILE.s [--hw smarq|smarq16|efficeon|alat|none] \
         [--regs N] [--unroll N] [--budget N] [--dump-region] [--compare]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        file: String::new(),
        hw: "smarq".into(),
        regs: 64,
        unroll: 1,
        budget: u64::MAX,
        dump_region: false,
        compare: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--hw" => args.hw = value("--hw")?,
            "--regs" => {
                args.regs = value("--regs")?.parse().map_err(|_| usage())?;
            }
            "--unroll" => {
                args.unroll = value("--unroll")?.parse().map_err(|_| usage())?;
            }
            "--budget" => {
                args.budget = value("--budget")?.parse().map_err(|_| usage())?;
            }
            "--dump-region" => args.dump_region = true,
            "--compare" => args.compare = true,
            "-h" | "--help" => return Err(usage()),
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}'");
                return Err(usage());
            }
            file => {
                if !args.file.is_empty() {
                    return Err(usage());
                }
                args.file = file.to_string();
            }
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn opt_for(hw: &str, regs: u32) -> Option<OptConfig> {
    Some(match hw {
        "smarq" => OptConfig::smarq(regs),
        "smarq16" => OptConfig::smarq(16),
        "efficeon" => OptConfig::efficeon(),
        "alat" => OptConfig::alat(),
        "none" => OptConfig::no_alias_hw(),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::from(1);
        }
    };
    let program = match smarq_guest::parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", args.file);
            return ExitCode::from(1);
        }
    };
    let Some(opt) = opt_for(&args.hw, args.regs) else {
        eprintln!("unknown hardware scheme '{}'", args.hw);
        return usage();
    };

    let mut cfg = SystemConfig::with_opt(opt);
    cfg.unroll_factor = args.unroll;
    let mut sys = DynOptSystem::new(program.clone(), cfg);
    sys.run_to_completion(args.budget);
    let s = sys.stats();

    println!("hardware:            {}", args.hw);
    println!("guest instructions:  {}", s.guest_instrs());
    println!("simulated cycles:    {}", s.total_cycles());
    println!(
        "regions:             {} formed, {} entries, {} rollbacks, {} re-translations",
        s.regions_formed, s.region_entries, s.rollbacks, s.retranslations
    );
    println!(
        "optimization:        {:.4}% of execution time",
        s.optimization_overhead() * 100.0
    );
    if let Some(r) = s.per_region.iter().max_by_key(|r| r.entries) {
        println!(
            "hot region:          {} memops, working set {}, {} checks, {} antis",
            r.opt.mem_ops, r.opt.working_set, r.opt.checks, r.opt.antis
        );
    }

    if args.dump_region {
        // Re-derive the hot region's translation for display.
        use smarq_ir::{form_superblock, unroll_superblock, FormationParams};
        let mut interp = smarq_guest::Interpreter::new();
        interp.run(&program, 100_000);
        if let Some(rec) = s.per_region.iter().max_by_key(|r| r.entries) {
            let sb = form_superblock(
                &program,
                interp.profile(),
                rec.entry,
                FormationParams::default(),
            );
            let (sb, _) = unroll_superblock(&sb, args.unroll, 512);
            let Some(opt) = opt_for(&args.hw, args.regs) else {
                unreachable!("validated above");
            };
            let o = smarq_opt::optimize_superblock(
                &sb,
                &opt,
                &smarq_vliw::MachineConfig::default(),
                sys.blacklist(),
            );
            println!("\ntranslated hot region:\n{}", o.vliw);
        }
    }

    if args.compare {
        let mut reference = smarq_guest::Interpreter::new();
        reference.run(&program, args.budget);
        if args.budget == u64::MAX {
            if sys.interp().arch_state() == reference.arch_state() {
                println!("state check:         bit-exact vs pure interpretation");
            } else {
                eprintln!("state check:         MISMATCH vs pure interpretation");
                return ExitCode::from(1);
            }
        } else {
            eprintln!("state check:         skipped (budgeted run)");
        }
    }
    ExitCode::SUCCESS
}
