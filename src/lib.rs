//! Meta-crate for the SMARQ (MICRO 2012) reproduction.
//!
//! This package exists to host the repository-level `examples/` and
//! `tests/` directories; the functionality lives in the member crates:
//!
//! * [`smarq`] — constraint analysis and alias register allocation (the
//!   paper's contribution);
//! * [`smarq_guest`] — guest ISA, interpreter, profiler;
//! * [`smarq_ir`] — optimizer IR, superblocks, alias analysis;
//! * [`smarq_opt`] — speculative optimizations, list scheduler, emission;
//! * [`smarq_vliw`] — VLIW machine model, simulator, alias hardware;
//! * [`smarq_runtime`] — the dynamic optimization system;
//! * [`smarq_workloads`] — SPECFP2000 stand-in kernels.

pub use smarq;
pub use smarq_guest;
pub use smarq_ir;
pub use smarq_opt;
pub use smarq_runtime;
pub use smarq_vliw;
pub use smarq_workloads;
