//! Convenience builder for guest programs.

use crate::isa::{AluOp, Block, BlockId, CmpOp, FReg, FpuOp, Instr, Program, Reg, Terminator};

/// Incrementally assembles a [`Program`].
///
/// Blocks are created first (so they can reference each other in branches),
/// then filled with instructions; every block must be sealed with exactly
/// one terminator before [`ProgramBuilder::finish`].
///
/// ```
/// use smarq_guest::{ProgramBuilder, Reg, CmpOp, AluOp};
/// let mut b = ProgramBuilder::new();
/// let head = b.block();
/// let exit = b.block();
/// b.iconst(head, Reg(1), 3);
/// b.alu_imm(head, AluOp::Sub, Reg(1), Reg(1), 1);
/// b.branch(head, CmpOp::Ne, Reg(1), Reg(0), head, exit);
/// b.halt(exit);
/// let program = b.finish(head);
/// assert_eq!(program.num_blocks(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new, empty, unterminated block.
    pub fn block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Appends a raw instruction to `block`.
    ///
    /// # Panics
    /// Panics if the block is already terminated.
    pub fn push(&mut self, block: BlockId, instr: Instr) {
        let (instrs, term) = &mut self.blocks[block.index()];
        assert!(term.is_none(), "block {block} already terminated");
        instrs.push(instr);
    }

    /// `rd = value`.
    pub fn iconst(&mut self, block: BlockId, rd: Reg, value: i64) {
        self.push(block, Instr::IConst { rd, value });
    }

    /// `rd = ra <op> rb`.
    pub fn alu(&mut self, block: BlockId, op: AluOp, rd: Reg, ra: Reg, rb: Reg) {
        self.push(block, Instr::Alu { op, rd, ra, rb });
    }

    /// `rd = ra <op> imm`.
    pub fn alu_imm(&mut self, block: BlockId, op: AluOp, rd: Reg, ra: Reg, imm: i64) {
        self.push(block, Instr::AluImm { op, rd, ra, imm });
    }

    /// `fd = value`.
    pub fn fconst(&mut self, block: BlockId, fd: FReg, value: f64) {
        self.push(block, Instr::FConst { fd, value });
    }

    /// `fd = fa <op> fb`.
    pub fn fpu(&mut self, block: BlockId, op: FpuOp, fd: FReg, fa: FReg, fb: FReg) {
        self.push(block, Instr::Fpu { op, fd, fa, fb });
    }

    /// `fd = (f64) ra`.
    pub fn itof(&mut self, block: BlockId, fd: FReg, ra: Reg) {
        self.push(block, Instr::ItoF { fd, ra });
    }

    /// `rd = (i64) fa`.
    pub fn ftoi(&mut self, block: BlockId, rd: Reg, fa: FReg) {
        self.push(block, Instr::FtoI { rd, fa });
    }

    /// `rd = mem[base + disp]`.
    pub fn ld(&mut self, block: BlockId, rd: Reg, base: Reg, disp: i64) {
        self.push(block, Instr::Ld { rd, base, disp });
    }

    /// `mem[base + disp] = rs`.
    pub fn st(&mut self, block: BlockId, rs: Reg, base: Reg, disp: i64) {
        self.push(block, Instr::St { rs, base, disp });
    }

    /// `fd = mem[base + disp]`.
    pub fn fld(&mut self, block: BlockId, fd: FReg, base: Reg, disp: i64) {
        self.push(block, Instr::FLd { fd, base, disp });
    }

    /// `mem[base + disp] = fs`.
    pub fn fst(&mut self, block: BlockId, fs: FReg, base: Reg, disp: i64) {
        self.push(block, Instr::FSt { fs, base, disp });
    }

    fn terminate(&mut self, block: BlockId, term: Terminator) {
        let slot = &mut self.blocks[block.index()].1;
        assert!(slot.is_none(), "block {block} already terminated");
        *slot = Some(term);
    }

    /// Ends `block` with an unconditional jump.
    pub fn jump(&mut self, block: BlockId, target: BlockId) {
        self.terminate(block, Terminator::Jump(target));
    }

    /// Ends `block` with a conditional branch.
    pub fn branch(
        &mut self,
        block: BlockId,
        op: CmpOp,
        ra: Reg,
        rb: Reg,
        taken: BlockId,
        fallthrough: BlockId,
    ) {
        self.terminate(
            block,
            Terminator::Branch {
                op,
                ra,
                rb,
                taken,
                fallthrough,
            },
        );
    }

    /// Ends `block` with a halt.
    pub fn halt(&mut self, block: BlockId) {
        self.terminate(block, Terminator::Halt);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    /// Panics if any block lacks a terminator or a target is out of range.
    pub fn finish(self, entry: BlockId) -> Program {
        let blocks = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, (instrs, term))| Block {
                instrs,
                term: term.unwrap_or_else(|| panic!("block B{i} lacks a terminator")),
            })
            .collect();
        Program::new(blocks, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_termination_panics() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.halt(e);
        b.halt(e);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn push_after_terminator_panics() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.halt(e);
        b.iconst(e, Reg(1), 1);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let _dangling = b.block();
        b.halt(e);
        b.finish(e);
    }

    #[test]
    fn builds_multi_block_programs() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let f = b.block();
        b.iconst(e, Reg(1), 1);
        b.jump(e, f);
        b.halt(f);
        let p = b.finish(e);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.static_instrs(), 1);
    }
}
