//! A small textual assembly format for guest programs.
//!
//! Programs are written as labeled blocks of instructions; every block ends
//! with a control-flow directive. The format round-trips through
//! [`disassemble`] and [`parse_program`].
//!
//! ```text
//! entry:
//!     iconst r1, 0
//!     iconst r2, 100
//!     jump body
//! body:
//!     ld r4, [r3+0]
//!     add r4, r4, r1
//!     st r4, [r3+0]
//!     addi r1, r1, 1
//!     blt r1, r2, body, done
//! done:
//!     halt
//! ```
//!
//! Data directives may appear anywhere: `.word ADDR, INT` and
//! `.double ADDR, FLOAT` initialize one 8-byte memory word each; they are
//! applied before execution.
//!
//! Supported mnemonics: `iconst rD, imm` · `fconst fD, imm` ·
//! `add/sub/mul/div/and/or/xor/shl/shr/slt rD, rA, rB` · the same with an
//! `i` suffix for immediate forms (`addi rD, rA, imm`) · `fadd/fsub/fmul/
//! fdiv/fmin/fmax fD, fA, fB` · `itof fD, rA` · `ftoi rD, fA` ·
//! `ld/st r, [rB+disp]` · `fld/fst f, [rB+disp]` · terminators `jump L`,
//! `beq/bne/blt/bge rA, rB, taken, fallthrough`, `halt`. Comments start
//! with `;` or `#`.

use crate::isa::{AluOp, Block, BlockId, CmpOp, FReg, Instr, Program, Reg, Terminator};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse error with line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseAsmError> {
    Err(ParseAsmError {
        line,
        message: message.into(),
    })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
    let rest = tok
        .strip_prefix('r')
        .ok_or(())
        .or_else(|_| err(line, format!("expected integer register, got '{tok}'")))?;
    match rest.parse::<u8>() {
        Ok(n) if n < 32 => Ok(Reg(n)),
        _ => err(line, format!("register out of range: '{tok}'")),
    }
}

fn parse_freg(tok: &str, line: usize) -> Result<FReg, ParseAsmError> {
    let rest = tok
        .strip_prefix('f')
        .ok_or(())
        .or_else(|_| err(line, format!("expected fp register, got '{tok}'")))?;
    match rest.parse::<u8>() {
        Ok(n) if n < 32 => Ok(FReg(n)),
        _ => err(line, format!("fp register out of range: '{tok}'")),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseAsmError> {
    let t = tok.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        t.parse::<i64>().ok()
    };
    parsed.map_or_else(|| err(line, format!("bad integer '{t}'")), Ok)
}

/// Parses `[rB+disp]` / `[rB-disp]` / `[rB]`.
fn parse_addr(tok: &str, line: usize) -> Result<(Reg, i64), ParseAsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or(())
        .or_else(|_| err(line, format!("expected [base+disp], got '{tok}'")))?;
    if let Some(plus) = inner.find('+') {
        let base = parse_reg(inner[..plus].trim(), line)?;
        let disp = parse_imm(&inner[plus + 1..], line)?;
        Ok((base, disp))
    } else if let Some(minus) = inner[1..].find('-') {
        let base = parse_reg(inner[..minus + 1].trim(), line)?;
        let disp = parse_imm(&inner[minus + 1..], line)?;
        Ok((base, disp))
    } else {
        Ok((parse_reg(inner.trim(), line)?, 0))
    }
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "slt" => AluOp::Slt,
        _ => return None,
    })
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Slt => "slt",
    }
}

fn fpu_op(mnemonic: &str) -> Option<crate::isa::FpuOp> {
    use crate::isa::FpuOp;
    Some(match mnemonic {
        "fadd" => FpuOp::Add,
        "fsub" => FpuOp::Sub,
        "fmul" => FpuOp::Mul,
        "fdiv" => FpuOp::Div,
        "fmin" => FpuOp::Min,
        "fmax" => FpuOp::Max,
        _ => return None,
    })
}

fn fpu_name(op: crate::isa::FpuOp) -> &'static str {
    use crate::isa::FpuOp;
    match op {
        FpuOp::Add => "fadd",
        FpuOp::Sub => "fsub",
        FpuOp::Mul => "fmul",
        FpuOp::Div => "fdiv",
        FpuOp::Min => "fmin",
        FpuOp::Max => "fmax",
    }
}

fn cmp_op(mnemonic: &str) -> Option<CmpOp> {
    Some(match mnemonic {
        "beq" => CmpOp::Eq,
        "bne" => CmpOp::Ne,
        "blt" => CmpOp::Lt,
        "bge" => CmpOp::Ge,
        _ => return None,
    })
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "beq",
        CmpOp::Ne => "bne",
        CmpOp::Lt => "blt",
        CmpOp::Ge => "bge",
    }
}

enum RawTerm {
    Jump(String),
    Branch(CmpOp, Reg, Reg, String, String),
    Halt,
}

/// Parses a program from its textual form. The first block is the entry.
///
/// # Errors
/// [`ParseAsmError`] with the offending line on malformed input, unknown
/// labels, missing terminators, or empty programs.
pub fn parse_program(src: &str) -> Result<Program, ParseAsmError> {
    struct RawBlock {
        instrs: Vec<Instr>,
        term: Option<(RawTerm, usize)>,
    }
    let mut order: Vec<String> = Vec::new();
    let mut blocks: HashMap<String, RawBlock> = HashMap::new();
    let mut current: Option<String> = None;
    let mut data: Vec<(u64, u64)> = Vec::new();

    for (i, raw_line) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim().to_string();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return err(line_no, "bad label");
            }
            if blocks.contains_key(&label) {
                return err(line_no, format!("duplicate label '{label}'"));
            }
            order.push(label.clone());
            blocks.insert(
                label.clone(),
                RawBlock {
                    instrs: Vec::new(),
                    term: None,
                },
            );
            current = Some(label);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".word") {
            let args: Vec<&str> = rest.split(',').map(str::trim).collect();
            if args.len() != 2 {
                return err(line_no, "'.word' expects ADDR, VALUE");
            }
            let addr = parse_imm(args[0], line_no)? as u64;
            let value = parse_imm(args[1], line_no)? as u64;
            data.push((addr, value));
            continue;
        }
        if let Some(rest) = line.strip_prefix(".double") {
            let args: Vec<&str> = rest.split(',').map(str::trim).collect();
            if args.len() != 2 {
                return err(line_no, "'.double' expects ADDR, VALUE");
            }
            let addr = parse_imm(args[0], line_no)? as u64;
            let value = args[1]
                .parse::<f64>()
                .ok()
                .map_or_else(|| err(line_no, format!("bad float '{}'", args[1])), Ok)?;
            data.push((addr, value.to_bits()));
            continue;
        }
        let Some(cur) = current.clone() else {
            return err(line_no, "instruction before the first label");
        };
        let block = blocks.get_mut(&cur).expect("current block exists");
        if block.term.is_some() {
            return err(line_no, "instruction after the block terminator");
        }

        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let args: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let want = |n: usize| -> Result<(), ParseAsmError> {
            if args.len() == n {
                Ok(())
            } else {
                err(
                    line_no,
                    format!("'{mnemonic}' expects {n} operand(s), got {}", args.len()),
                )
            }
        };

        match mnemonic {
            "iconst" => {
                want(2)?;
                block.instrs.push(Instr::IConst {
                    rd: parse_reg(args[0], line_no)?,
                    value: parse_imm(args[1], line_no)?,
                });
            }
            "fconst" => {
                want(2)?;
                let value = args[1]
                    .parse::<f64>()
                    .ok()
                    .map_or_else(|| err(line_no, format!("bad float '{}'", args[1])), Ok)?;
                block.instrs.push(Instr::FConst {
                    fd: parse_freg(args[0], line_no)?,
                    value,
                });
            }
            "itof" => {
                want(2)?;
                block.instrs.push(Instr::ItoF {
                    fd: parse_freg(args[0], line_no)?,
                    ra: parse_reg(args[1], line_no)?,
                });
            }
            "ftoi" => {
                want(2)?;
                block.instrs.push(Instr::FtoI {
                    rd: parse_reg(args[0], line_no)?,
                    fa: parse_freg(args[1], line_no)?,
                });
            }
            "ld" => {
                want(2)?;
                let (base, disp) = parse_addr(args[1], line_no)?;
                block.instrs.push(Instr::Ld {
                    rd: parse_reg(args[0], line_no)?,
                    base,
                    disp,
                });
            }
            "st" => {
                want(2)?;
                let (base, disp) = parse_addr(args[1], line_no)?;
                block.instrs.push(Instr::St {
                    rs: parse_reg(args[0], line_no)?,
                    base,
                    disp,
                });
            }
            "fld" => {
                want(2)?;
                let (base, disp) = parse_addr(args[1], line_no)?;
                block.instrs.push(Instr::FLd {
                    fd: parse_freg(args[0], line_no)?,
                    base,
                    disp,
                });
            }
            "fst" => {
                want(2)?;
                let (base, disp) = parse_addr(args[1], line_no)?;
                block.instrs.push(Instr::FSt {
                    fs: parse_freg(args[0], line_no)?,
                    base,
                    disp,
                });
            }
            "jump" => {
                want(1)?;
                block.term = Some((RawTerm::Jump(args[0].to_string()), line_no));
            }
            "halt" => {
                want(0)?;
                block.term = Some((RawTerm::Halt, line_no));
            }
            m => {
                if let Some(op) = cmp_op(m) {
                    want(4)?;
                    block.term = Some((
                        RawTerm::Branch(
                            op,
                            parse_reg(args[0], line_no)?,
                            parse_reg(args[1], line_no)?,
                            args[2].to_string(),
                            args[3].to_string(),
                        ),
                        line_no,
                    ));
                } else if let Some(op) = fpu_op(m) {
                    want(3)?;
                    block.instrs.push(Instr::Fpu {
                        op,
                        fd: parse_freg(args[0], line_no)?,
                        fa: parse_freg(args[1], line_no)?,
                        fb: parse_freg(args[2], line_no)?,
                    });
                } else if let Some(base) = m.strip_suffix('i').and_then(alu_op) {
                    want(3)?;
                    block.instrs.push(Instr::AluImm {
                        op: base,
                        rd: parse_reg(args[0], line_no)?,
                        ra: parse_reg(args[1], line_no)?,
                        imm: parse_imm(args[2], line_no)?,
                    });
                } else if let Some(op) = alu_op(m) {
                    want(3)?;
                    block.instrs.push(Instr::Alu {
                        op,
                        rd: parse_reg(args[0], line_no)?,
                        ra: parse_reg(args[1], line_no)?,
                        rb: parse_reg(args[2], line_no)?,
                    });
                } else {
                    return err(line_no, format!("unknown mnemonic '{m}'"));
                }
            }
        }
    }

    if order.is_empty() {
        return err(0, "empty program");
    }
    let ids: HashMap<&str, BlockId> = order
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_str(), BlockId(i as u32)))
        .collect();
    let resolve = |label: &str, line: usize| -> Result<BlockId, ParseAsmError> {
        ids.get(label)
            .copied()
            .map_or_else(|| err(line, format!("unknown label '{label}'")), Ok)
    };
    let mut out = Vec::with_capacity(order.len());
    for label in &order {
        let raw = blocks.remove(label).expect("block recorded");
        let Some((term, line)) = raw.term else {
            return err(0, format!("block '{label}' lacks a terminator"));
        };
        let term = match term {
            RawTerm::Jump(t) => Terminator::Jump(resolve(&t, line)?),
            RawTerm::Branch(op, ra, rb, t, f) => Terminator::Branch {
                op,
                ra,
                rb,
                taken: resolve(&t, line)?,
                fallthrough: resolve(&f, line)?,
            },
            RawTerm::Halt => Terminator::Halt,
        };
        out.push(Block {
            instrs: raw.instrs,
            term,
        });
    }
    Ok(Program::with_data(out, BlockId(0), data))
}

/// Renders a program back to its textual form (blocks labeled `b0`, `b1`,
/// …; the entry block comes first as `b<entry>`). `parse_program ∘
/// disassemble` is the identity up to label names.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for &(addr, word) in program.data() {
        out.push_str(&format!(".word {addr}, {}\n", word as i64));
    }
    for (id, block) in program.iter() {
        out.push_str(&format!("b{}:\n", id.0));
        for instr in &block.instrs {
            out.push_str("    ");
            out.push_str(&render_instr(instr));
            out.push('\n');
        }
        out.push_str("    ");
        match block.term {
            Terminator::Jump(t) => out.push_str(&format!("jump b{}", t.0)),
            Terminator::Branch {
                op,
                ra,
                rb,
                taken,
                fallthrough,
            } => out.push_str(&format!(
                "{} {ra}, {rb}, b{}, b{}",
                cmp_name(op),
                taken.0,
                fallthrough.0
            )),
            Terminator::Halt => out.push_str("halt"),
        }
        out.push('\n');
    }
    out
}

fn render_instr(i: &Instr) -> String {
    match *i {
        Instr::IConst { rd, value } => format!("iconst {rd}, {value}"),
        Instr::FConst { fd, value } => format!("fconst {fd}, {value}"),
        Instr::Alu { op, rd, ra, rb } => format!("{} {rd}, {ra}, {rb}", alu_name(op)),
        Instr::AluImm { op, rd, ra, imm } => format!("{}i {rd}, {ra}, {imm}", alu_name(op)),
        Instr::Fpu { op, fd, fa, fb } => format!("{} {fd}, {fa}, {fb}", fpu_name(op)),
        Instr::ItoF { fd, ra } => format!("itof {fd}, {ra}"),
        Instr::FtoI { rd, fa } => format!("ftoi {rd}, {fa}"),
        Instr::Ld { rd, base, disp } => format!("ld {rd}, [{base}+{disp}]"),
        Instr::St { rs, base, disp } => format!("st {rs}, [{base}+{disp}]"),
        Instr::FLd { fd, base, disp } => format!("fld {fd}, [{base}+{disp}]"),
        Instr::FSt { fs, base, disp } => format!("fst {fs}, [{base}+{disp}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, RunOutcome};

    const LOOP: &str = r"
; sum the first ten integers
entry:
    iconst r1, 0
    iconst r2, 0      # sum
    iconst r3, 10
    jump body
body:
    add r2, r2, r1
    addi r1, r1, 1
    blt r1, r3, body, done
done:
    halt
";

    #[test]
    fn parses_and_runs() {
        let p = parse_program(LOOP).unwrap();
        assert_eq!(p.num_blocks(), 3);
        let mut i = Interpreter::new();
        assert_eq!(i.run(&p, 10_000), RunOutcome::Halted);
        assert_eq!(i.regs[2], 45);
    }

    #[test]
    fn memory_and_fp_syntax() {
        let src = r"
main:
    iconst r1, 0x100
    fconst f1, 2.5
    fst f1, [r1+8]
    fld f2, [r1+8]
    fmul f3, f2, f2
    st r1, [r1]
    ld r4, [r1+0]
    halt
";
        let p = parse_program(src).unwrap();
        let mut i = Interpreter::new();
        i.run(&p, 1000);
        assert_eq!(i.fregs[3], 6.25);
        assert_eq!(i.regs[4], 0x100);
    }

    #[test]
    fn roundtrip_through_disassembler() {
        let p = parse_program(LOOP).unwrap();
        let text = disassemble(&p);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn workloads_roundtrip() {
        // Every instruction form the kernel generator emits must survive a
        // disassemble/parse cycle.
        let src = r"
k:
    iconst r5, 8192
    fconst f3, 1.0001
    fld f8, [r5+16]
    fmul f8, f8, f3
    fst f8, [r5+24]
    subi r2, r2, 1
    bne r2, r0, k, end
end:
    halt
";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&disassemble(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("entry:\n    bogus r1\n    halt\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = parse_program("entry:\n    jump nowhere\n").unwrap_err();
        assert!(e.message.contains("unknown label"));

        let e = parse_program("entry:\n    iconst r99, 1\n    halt\n").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse_program("    iconst r1, 1\n").unwrap_err();
        assert!(e.message.contains("before the first label"));

        let e = parse_program("entry:\n").unwrap_err();
        assert!(e.message.contains("lacks a terminator"));

        let e = parse_program("").unwrap_err();
        assert!(e.message.contains("empty"));

        let e = parse_program("a:\n halt\na:\n halt\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn data_directives_initialize_memory() {
        let src = r"
.word 0x1000, 42
.double 0x1008, 2.5
main:
    iconst r1, 0x1000
    ld r2, [r1+0]
    fld f1, [r1+8]
    halt
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.data().len(), 2);
        let mut i = Interpreter::new();
        i.run(&p, 100);
        assert_eq!(i.regs[2], 42);
        assert_eq!(i.fregs[1], 2.5);
        // Round-trips (the .double becomes a raw .word of its bits).
        let p2 = parse_program(&disassemble(&p)).unwrap();
        let mut j = Interpreter::new();
        j.run(&p2, 100);
        assert_eq!(i.arch_state(), j.arch_state());
    }

    #[test]
    fn bad_data_directives_error() {
        assert!(parse_program(
            ".word 5
main:
 halt
"
        )
        .is_err());
        assert!(parse_program(
            ".double 5, x
main:
 halt
"
        )
        .is_err());
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = parse_program("e:\n    iconst r1, -5\n    iconst r2, 0x10\n    halt\n").unwrap();
        let mut i = Interpreter::new();
        i.run(&p, 100);
        assert_eq!(i.regs[1], -5);
        assert_eq!(i.regs[2], 16);
    }
}
