//! Guest interpreter with execution profiling.

use crate::isa::{BlockId, Instr, Program, Terminator};
use crate::mem::Memory;

/// Per-block profile counters, kept together so the interpreter's
/// per-block dispatch path touches one slot (one bounds check, one cache
/// line) instead of three parallel vectors.
#[derive(Clone, Copy, Debug, Default)]
struct BlockCounters {
    /// Block execution count.
    count: u64,
    /// Taken count of the block's branch terminator.
    taken: u64,
    /// Fall-through count of the block's branch terminator.
    fall: u64,
}

/// Block-level execution profile collected by the interpreter. This is what
/// the dynamic optimizer consumes for hot-region formation (paper §6:
/// "the system profiles the execution for hot basic blocks").
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// One counter slot per block.
    blocks: Vec<BlockCounters>,
}

impl Profile {
    fn ensure(&mut self, n: usize) {
        if self.blocks.len() < n {
            self.blocks.resize(n, BlockCounters::default());
        }
    }

    /// Execution count of `block`.
    pub fn block_count(&self, block: BlockId) -> u64 {
        self.blocks.get(block.index()).map_or(0, |b| b.count)
    }

    /// `(taken, fallthrough)` counts for a block's branch terminator.
    pub fn branch_bias(&self, block: BlockId) -> (u64, u64) {
        self.blocks
            .get(block.index())
            .map_or((0, 0), |b| (b.taken, b.fall))
    }

    /// The most-frequent successor of `block` per this profile, if any.
    pub fn biased_successor(&self, program: &Program, block: BlockId) -> Option<BlockId> {
        match program.block(block).term {
            Terminator::Jump(t) => Some(t),
            Terminator::Branch {
                taken, fallthrough, ..
            } => {
                let (t, f) = self.branch_bias(block);
                if t + f == 0 {
                    None
                } else if t >= f {
                    Some(taken)
                } else {
                    Some(fallthrough)
                }
            }
            Terminator::Halt => None,
        }
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }
}

/// A snapshot of the architectural guest state, used to compare optimized
/// execution against pure interpretation.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchState {
    /// Integer registers.
    pub regs: [i64; 32],
    /// Floating-point register bit patterns (bitwise comparison keeps the
    /// snapshot `Eq`-friendly in the presence of NaN).
    pub fregs: [u64; 32],
    /// Memory contents.
    pub mem: Memory,
}

/// Why a [`Interpreter::run`] call stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The program executed a `Halt` terminator.
    Halted,
    /// The instruction budget was exhausted.
    BudgetExhausted,
}

/// The guest interpreter.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Interpreter {
    /// Integer register file.
    pub regs: [i64; 32],
    /// Floating-point register file.
    pub fregs: [f64; 32],
    /// Guest memory.
    pub mem: Memory,
    profile: Profile,
    executed: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with zeroed state.
    pub fn new() -> Self {
        Interpreter {
            regs: [0; 32],
            fregs: [0.0; 32],
            mem: Memory::new(),
            profile: Profile::default(),
            executed: 0,
        }
    }

    /// The accumulated execution profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Dynamic guest instructions executed so far (terminators count as one
    /// instruction each).
    pub fn executed_instrs(&self) -> u64 {
        self.executed
    }

    /// Snapshots the architectural state.
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            regs: self.regs,
            fregs: self.fregs.map(f64::to_bits),
            mem: self.mem.clone(),
        }
    }

    /// Executes a single straight-line instruction against the state.
    pub fn exec_instr(&mut self, instr: &Instr) {
        match *instr {
            Instr::IConst { rd, value } => self.regs[rd.0 as usize] = value,
            Instr::Alu { op, rd, ra, rb } => {
                self.regs[rd.0 as usize] =
                    op.apply(self.regs[ra.0 as usize], self.regs[rb.0 as usize]);
            }
            Instr::AluImm { op, rd, ra, imm } => {
                self.regs[rd.0 as usize] = op.apply(self.regs[ra.0 as usize], imm);
            }
            Instr::FConst { fd, value } => self.fregs[fd.0 as usize] = value,
            Instr::Fpu { op, fd, fa, fb } => {
                self.fregs[fd.0 as usize] =
                    op.apply(self.fregs[fa.0 as usize], self.fregs[fb.0 as usize]);
            }
            Instr::ItoF { fd, ra } => self.fregs[fd.0 as usize] = self.regs[ra.0 as usize] as f64,
            Instr::FtoI { rd, fa } => self.regs[rd.0 as usize] = self.fregs[fa.0 as usize] as i64,
            Instr::Ld { rd, base, disp } => {
                let addr = (self.regs[base.0 as usize].wrapping_add(disp)) as u64;
                self.regs[rd.0 as usize] = self.mem.read(addr) as i64;
            }
            Instr::St { rs, base, disp } => {
                let addr = (self.regs[base.0 as usize].wrapping_add(disp)) as u64;
                self.mem.write(addr, self.regs[rs.0 as usize] as u64);
            }
            Instr::FLd { fd, base, disp } => {
                let addr = (self.regs[base.0 as usize].wrapping_add(disp)) as u64;
                self.fregs[fd.0 as usize] = self.mem.read_f64(addr);
            }
            Instr::FSt { fs, base, disp } => {
                let addr = (self.regs[base.0 as usize].wrapping_add(disp)) as u64;
                self.mem.write_f64(addr, self.fregs[fs.0 as usize]);
            }
        }
        self.executed += 1;
    }

    /// Executes one whole block (body + terminator), updating the profile,
    /// and returns the successor (`None` on `Halt`).
    pub fn step_block(&mut self, program: &Program, block: BlockId) -> Option<BlockId> {
        self.profile.ensure(program.num_blocks());
        self.profile.blocks[block.index()].count += 1;
        let b = program.block(block);
        for instr in &b.instrs {
            self.exec_instr(instr);
        }
        self.executed += 1; // the terminator
        match b.term {
            Terminator::Jump(t) => Some(t),
            Terminator::Branch {
                op,
                ra,
                rb,
                taken,
                fallthrough,
            } => {
                if op.eval(self.regs[ra.0 as usize], self.regs[rb.0 as usize]) {
                    self.profile.blocks[block.index()].taken += 1;
                    Some(taken)
                } else {
                    self.profile.blocks[block.index()].fall += 1;
                    Some(fallthrough)
                }
            }
            Terminator::Halt => None,
        }
    }

    /// Writes the program's initialized data image into memory.
    pub fn load_data(&mut self, program: &Program) {
        for &(addr, word) in program.data() {
            self.mem.write(addr, word);
        }
    }

    /// Runs the program from its entry until `Halt` or until roughly
    /// `budget` dynamic instructions have executed. The program's data
    /// image is (re-)applied first.
    pub fn run(&mut self, program: &Program, budget: u64) -> RunOutcome {
        self.load_data(program);
        let mut block = program.entry();
        let limit = self.executed.saturating_add(budget);
        loop {
            match self.step_block(program, block) {
                Some(next) => block = next,
                None => return RunOutcome::Halted,
            }
            if self.executed >= limit {
                return RunOutcome::BudgetExhausted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{AluOp, CmpOp, FReg, FpuOp, Reg};

    /// sum = Σ i for i in 0..10, via a counted loop.
    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0); // i
        b.iconst(entry, Reg(2), 0); // sum
        b.iconst(entry, Reg(3), 10); // limit
        b.jump(entry, body);
        b.alu(body, AluOp::Add, Reg(2), Reg(2), Reg(1));
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(3), body, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn loop_sums_correctly_and_profiles() {
        let p = loop_program();
        let mut i = Interpreter::new();
        assert_eq!(i.run(&p, 10_000), RunOutcome::Halted);
        assert_eq!(i.regs[2], 45);
        assert_eq!(i.profile().block_count(BlockId(1)), 10);
        assert_eq!(i.profile().block_count(BlockId(0)), 1);
        let (taken, fall) = i.profile().branch_bias(BlockId(1));
        assert_eq!((taken, fall), (9, 1));
        assert_eq!(
            i.profile().biased_successor(&p, BlockId(1)),
            Some(BlockId(1)),
            "backedge is the biased successor"
        );
    }

    #[test]
    fn budget_stops_infinite_loops() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.jump(e, e);
        let p = b.finish(e);
        let mut i = Interpreter::new();
        assert_eq!(i.run(&p, 100), RunOutcome::BudgetExhausted);
        assert!(i.executed_instrs() >= 100);
    }

    #[test]
    fn memory_and_fp_roundtrip() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.iconst(e, Reg(1), 0x1000);
        b.fconst(e, FReg(1), 2.5);
        b.fconst(e, FReg(2), 4.0);
        b.fpu(e, FpuOp::Mul, FReg(3), FReg(1), FReg(2));
        b.fst(e, FReg(3), Reg(1), 8);
        b.fld(e, FReg(4), Reg(1), 8);
        b.halt(e);
        let p = b.finish(e);
        let mut i = Interpreter::new();
        i.run(&p, 1000);
        assert_eq!(i.fregs[4], 10.0);
        assert_eq!(i.mem.read_f64(0x1008), 10.0);
    }

    #[test]
    fn arch_state_snapshot_equality() {
        let p = loop_program();
        let mut a = Interpreter::new();
        let mut b2 = Interpreter::new();
        a.run(&p, 10_000);
        b2.run(&p, 10_000);
        assert_eq!(a.arch_state(), b2.arch_state());
    }

    #[test]
    fn conversions() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.iconst(e, Reg(1), -7);
        b.itof(e, FReg(1), Reg(1));
        b.ftoi(e, Reg(2), FReg(1));
        b.halt(e);
        let p = b.finish(e);
        let mut i = Interpreter::new();
        i.run(&p, 100);
        assert_eq!(i.fregs[1], -7.0);
        assert_eq!(i.regs[2], -7);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::Reg;

    #[test]
    fn profile_clear_resets_counts() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.iconst(e, Reg(1), 1);
        b.halt(e);
        let p = b.finish(e);
        let mut i = Interpreter::new();
        i.run(&p, 100);
        assert_eq!(i.profile().block_count(BlockId(0)), 1);
        let mut prof = i.profile().clone();
        prof.clear();
        assert_eq!(prof.block_count(BlockId(0)), 0);
    }

    #[test]
    fn biased_successor_of_jump_and_halt() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let f = b.block();
        b.jump(e, f);
        b.halt(f);
        let p = b.finish(e);
        let mut i = Interpreter::new();
        i.run(&p, 100);
        assert_eq!(
            i.profile().biased_successor(&p, BlockId(0)),
            Some(BlockId(1))
        );
        assert_eq!(i.profile().biased_successor(&p, BlockId(1)), None);
    }

    #[test]
    fn unprofiled_branch_has_no_bias() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let f = b.block();
        b.branch(e, crate::isa::CmpOp::Eq, Reg(0), Reg(0), f, e);
        b.halt(f);
        let p = b.finish(e);
        let prof = Profile::default();
        assert_eq!(prof.biased_successor(&p, BlockId(0)), None);
    }
}
