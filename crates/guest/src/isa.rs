//! The guest instruction set.
//!
//! A minimal RISC-like ISA: 32 integer registers (`r0`–`r31`, 64-bit), 32
//! floating-point registers (`f0`–`f31`, `f64`), 8-byte aligned memory
//! accesses with `base + displacement` addressing, and block-structured
//! control flow (every [`Block`] ends in exactly one [`Terminator`]).

use std::fmt;

/// An integer guest register, `r0`–`r31`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point guest register, `f0`–`f31`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u8);

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a basic block within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Integer ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (division by zero yields 0, keeping random programs total).
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Arithmetic shift right (modulo 64).
    Shr,
    /// Set-less-than: 1 if `a < b` else 0.
    Slt,
}

impl AluOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Slt => i64::from(a < b),
        }
    }
}

/// Floating-point operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpuOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl FpuOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            FpuOp::Add => a + b,
            FpuOp::Sub => a - b,
            FpuOp::Mul => a * b,
            FpuOp::Div => a / b,
            FpuOp::Min => a.min(b),
            FpuOp::Max => a.max(b),
        }
    }
}

/// Integer comparison predicates used by branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the predicate.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The negated predicate.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A straight-line guest instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    /// `rd = value`.
    IConst {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `rd = ra <op> rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = ra <op> imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        ra: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `fd = value`.
    FConst {
        /// Destination.
        fd: FReg,
        /// Immediate value.
        value: f64,
    },
    /// `fd = fa <op> fb`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fa: FReg,
        /// Second source.
        fb: FReg,
    },
    /// `fd = (f64) ra`.
    ItoF {
        /// Destination.
        fd: FReg,
        /// Integer source.
        ra: Reg,
    },
    /// `rd = (i64) fa` (truncating; NaN/overflow saturate per Rust `as`).
    FtoI {
        /// Destination.
        rd: Reg,
        /// FP source.
        fa: FReg,
    },
    /// `rd = mem[ra + disp]` (8 bytes).
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i64,
    },
    /// `mem[base + disp] = rs` (8 bytes).
    St {
        /// Source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i64,
    },
    /// `fd = mem[base + disp]` (8 bytes, fp).
    FLd {
        /// Destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i64,
    },
    /// `mem[base + disp] = fs` (8 bytes, fp).
    FSt {
        /// Source.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i64,
    },
}

impl Instr {
    /// `true` for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::FLd { .. } | Instr::FSt { .. }
        )
    }

    /// `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::St { .. } | Instr::FSt { .. })
    }
}

/// Block terminator.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch: to `taken` when `ra <op> rb`, else `fallthrough`.
    Branch {
        /// Predicate.
        op: CmpOp,
        /// First compared register.
        ra: Reg,
        /// Second compared register.
        rb: Reg,
        /// Target when the predicate holds.
        taken: BlockId,
        /// Target otherwise.
        fallthrough: BlockId,
    },
    /// Program end.
    Halt,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// The block body.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Terminator,
}

/// A guest program: a set of blocks, an entry point and an initialized
/// data image (absolute address → 8-byte word).
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    blocks: Vec<Block>,
    entry: BlockId,
    data: Vec<(u64, u64)>,
}

impl Program {
    /// Creates a program from blocks.
    ///
    /// # Panics
    /// Panics if `entry` or any terminator target is out of range.
    pub fn new(blocks: Vec<Block>, entry: BlockId) -> Self {
        Self::with_data(blocks, entry, Vec::new())
    }

    /// Creates a program with an initialized data image.
    ///
    /// # Panics
    /// Panics if `entry` or any terminator target is out of range.
    pub fn with_data(blocks: Vec<Block>, entry: BlockId, data: Vec<(u64, u64)>) -> Self {
        let n = blocks.len();
        let check = |b: BlockId| assert!(b.index() < n, "block {b} out of range");
        check(entry);
        for block in &blocks {
            match block.term {
                Terminator::Jump(t) => check(t),
                Terminator::Branch {
                    taken, fallthrough, ..
                } => {
                    check(taken);
                    check(fallthrough);
                }
                Terminator::Halt => {}
            }
        }
        Program {
            blocks,
            entry,
            data,
        }
    }

    /// The initialized data image (absolute address, word bits).
    pub fn data(&self) -> &[(u64, u64)] {
        &self.data
    }

    /// Entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The block with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over `(id, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total static instruction count (excluding terminators).
    pub fn static_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), -1);
        assert_eq!(AluOp::Mul.apply(4, -3), -12);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), 0, "division by zero is total");
        assert_eq!(AluOp::Slt.apply(1, 2), 1);
        assert_eq!(AluOp::Slt.apply(2, 1), 0);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift amounts are mod 64");
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN, "wrapping");
    }

    #[test]
    fn fpu_semantics() {
        assert_eq!(FpuOp::Add.apply(1.5, 2.0), 3.5);
        assert_eq!(FpuOp::Min.apply(1.0, 2.0), 1.0);
        assert_eq!(FpuOp::Max.apply(1.0, 2.0), 2.0);
        assert!(FpuOp::Div.apply(1.0, 0.0).is_infinite());
    }

    #[test]
    fn cmp_negation_is_involutive() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
            assert_ne!(op.eval(1, 2), op.negate().eval(1, 2));
        }
    }

    #[test]
    fn program_validates_targets() {
        let b = Block {
            instrs: vec![],
            term: Terminator::Halt,
        };
        let p = Program::new(vec![b.clone()], BlockId(0));
        assert_eq!(p.num_blocks(), 1);
        assert_eq!(p.entry(), BlockId(0));
        assert_eq!(p.static_instrs(), 0);
        let _ = p.block(BlockId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_jump_target_rejected() {
        let b = Block {
            instrs: vec![],
            term: Terminator::Jump(BlockId(7)),
        };
        Program::new(vec![b], BlockId(0));
    }

    #[test]
    fn mem_classification() {
        let ld = Instr::Ld {
            rd: Reg(1),
            base: Reg(2),
            disp: 0,
        };
        let st = Instr::St {
            rs: Reg(1),
            base: Reg(2),
            disp: 8,
        };
        let add = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            ra: Reg(1),
            imm: 1,
        };
        assert!(ld.is_mem() && !ld.is_store());
        assert!(st.is_mem() && st.is_store());
        assert!(!add.is_mem());
    }
}
