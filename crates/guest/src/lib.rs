//! # smarq-guest — guest ISA substrate
//!
//! The SMARQ paper evaluates a dynamic binary translator that consumes x86
//! binaries. x86 semantics are irrelevant to alias-register management —
//! what matters is a guest instruction stream with loads, stores, compute
//! and control flow that the optimizer can profile, regionize and
//! speculatively optimize. This crate provides that substrate:
//!
//! * a small RISC-like guest ISA ([`Instr`], [`Block`], [`Program`]) with
//!   32 integer and 32 floating-point registers and 8-byte memory accesses;
//! * a word-addressed sparse [`Memory`];
//! * an [`Interpreter`] that executes programs block-at-a-time, collecting
//!   an execution [`Profile`] (block counts and edge biases) used for hot
//!   region formation;
//! * a [`ProgramBuilder`] for assembling test programs and workloads.
//!
//! ## Example
//!
//! ```
//! use smarq_guest::{ProgramBuilder, Reg, Interpreter, RunOutcome, AluOp};
//!
//! let mut b = ProgramBuilder::new();
//! let entry = b.block();
//! // r1 = 5; r2 = r1 * 8
//! b.iconst(entry, Reg(1), 5);
//! b.alu_imm(entry, AluOp::Mul, Reg(2), Reg(1), 8);
//! b.halt(entry);
//! let program = b.finish(entry);
//!
//! let mut interp = Interpreter::new();
//! let outcome = interp.run(&program, 1_000);
//! assert_eq!(outcome, RunOutcome::Halted);
//! assert_eq!(interp.regs[2], 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod builder;
mod interp;
mod isa;
mod mem;

pub use asm::{disassemble, parse_program, ParseAsmError};
pub use builder::ProgramBuilder;
pub use interp::{ArchState, Interpreter, Profile, RunOutcome};
pub use isa::{AluOp, Block, BlockId, CmpOp, FReg, FpuOp, Instr, Program, Reg, Terminator};
pub use mem::Memory;
