//! Sparse guest memory.

use std::collections::HashMap;

/// A sparse, word-addressed (8-byte) memory.
///
/// Addresses are byte addresses; accesses are aligned down to 8 bytes (the
/// guest ISA only issues 8-byte accesses and the workloads keep them
/// aligned). Uninitialized memory reads as zero.
///
/// ```
/// use smarq_guest::Memory;
/// let mut m = Memory::new();
/// m.write(0x1000, 42);
/// assert_eq!(m.read(0x1000), 42);
/// assert_eq!(m.read(0x2000), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Memory {
    words: HashMap<u64, u64>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the 8-byte word containing `addr`.
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&(addr >> 3)).copied().unwrap_or(0)
    }

    /// Writes the 8-byte word containing `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        if value == 0 {
            self.words.remove(&(addr >> 3));
        } else {
            self.words.insert(addr >> 3, value);
        }
    }

    /// Reads an `f64` stored at `addr`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Writes an `f64` at `addr`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Number of non-zero words (for tests and statistics).
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(0xffff_ffff_fff8), 0);
        assert_eq!(m.footprint_words(), 0);
    }

    #[test]
    fn word_aliasing_within_8_bytes() {
        let mut m = Memory::new();
        m.write(0x100, 7);
        // Any byte address within the word maps to the same cell.
        assert_eq!(m.read(0x101), 7);
        assert_eq!(m.read(0x107), 7);
        assert_eq!(m.read(0x108), 0);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = Memory::new();
        m.write_f64(0x200, -3.75);
        assert_eq!(m.read_f64(0x200), -3.75);
    }

    #[test]
    fn writing_zero_frees_the_word() {
        let mut m = Memory::new();
        m.write(0x300, 9);
        assert_eq!(m.footprint_words(), 1);
        m.write(0x300, 0);
        assert_eq!(m.footprint_words(), 0);
        assert_eq!(m.read(0x300), 0);
    }

    #[test]
    fn equality_ignores_zero_writes() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write(8, 1);
        b.write(8, 1);
        b.write(16, 0);
        assert_eq!(a, b);
    }
}
