//! Property test: the assembler and disassembler are inverse up to label
//! naming, and parsing never panics on random printable input.

use proptest::prelude::*;
use smarq_guest::{disassemble, parse_program, AluOp, CmpOp, FReg, FpuOp, Instr, Reg};

fn instr() -> impl Strategy<Value = Instr> {
    let reg = (0u8..32).prop_map(Reg);
    let freg = (0u8..32).prop_map(FReg);
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Slt),
    ];
    let fpu = prop_oneof![
        Just(FpuOp::Add),
        Just(FpuOp::Sub),
        Just(FpuOp::Mul),
        Just(FpuOp::Div),
        Just(FpuOp::Min),
        Just(FpuOp::Max),
    ];
    prop_oneof![
        (reg.clone(), any::<i32>()).prop_map(|(rd, v)| Instr::IConst {
            rd,
            value: i64::from(v)
        }),
        (freg.clone(), -1000i32..1000).prop_map(|(fd, v)| Instr::FConst {
            fd,
            value: f64::from(v) / 8.0
        }),
        (alu.clone(), reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, rd, ra, rb)| Instr::Alu { op, rd, ra, rb }),
        (alu, reg.clone(), reg.clone(), any::<i16>()).prop_map(|(op, rd, ra, imm)| {
            Instr::AluImm {
                op,
                rd,
                ra,
                imm: i64::from(imm),
            }
        }),
        (fpu, freg.clone(), freg.clone(), freg.clone()).prop_map(|(op, fd, fa, fb)| Instr::Fpu {
            op,
            fd,
            fa,
            fb
        }),
        (freg.clone(), reg.clone()).prop_map(|(fd, ra)| Instr::ItoF { fd, ra }),
        (reg.clone(), freg.clone()).prop_map(|(rd, fa)| Instr::FtoI { rd, fa }),
        (reg.clone(), reg.clone(), 0i64..512).prop_map(|(rd, base, disp)| Instr::Ld {
            rd,
            base,
            disp
        }),
        (reg.clone(), reg.clone(), 0i64..512).prop_map(|(rs, base, disp)| Instr::St {
            rs,
            base,
            disp
        }),
        (freg.clone(), reg.clone(), 0i64..512).prop_map(|(fd, base, disp)| Instr::FLd {
            fd,
            base,
            disp
        }),
        (freg, reg, 0i64..512).prop_map(|(fs, base, disp)| Instr::FSt { fs, base, disp }),
    ]
}

/// Builds a multi-block program from instruction bodies: block i branches
/// or jumps forward, the last halts.
fn program_from(bodies: &[Vec<Instr>]) -> smarq_guest::Program {
    let mut b = smarq_guest::ProgramBuilder::new();
    let blocks: Vec<_> = bodies.iter().map(|_| b.block()).collect();
    for (i, body) in bodies.iter().enumerate() {
        for ins in body {
            b.push(blocks[i], *ins);
        }
        if i + 1 < bodies.len() {
            if i % 2 == 0 {
                b.jump(blocks[i], blocks[i + 1]);
            } else {
                b.branch(
                    blocks[i],
                    CmpOp::Lt,
                    Reg(1),
                    Reg(2),
                    blocks[0],
                    blocks[i + 1],
                );
            }
        } else {
            b.halt(blocks[i]);
        }
    }
    b.finish(blocks[0])
}

proptest! {
    #[test]
    fn random_programs_roundtrip(bodies in proptest::collection::vec(
        proptest::collection::vec(instr(), 0..12), 1..5))
    {
        let p1 = program_from(&bodies);
        let text = disassemble(&p1);
        let p2 = parse_program(&text).unwrap();
        prop_assert_eq!(&p1, &p2);
        // Idempotence: disassembling again is stable.
        prop_assert_eq!(text, disassemble(&p2));
    }

    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,200}") {
        let _ = parse_program(&src);
    }
}
