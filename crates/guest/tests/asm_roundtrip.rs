//! Property test: the assembler and disassembler are inverse up to label
//! naming, and parsing never panics on random printable input.
//!
//! Random programs are drawn from the in-repo seeded [`Prng`] (the
//! workspace builds offline, without proptest); failures reproduce from the
//! printed seed.

use smarq::prng::Prng;
use smarq_guest::{disassemble, parse_program, AluOp, CmpOp, FReg, FpuOp, Instr, Reg};

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Slt,
];

const FPU_OPS: [FpuOp; 6] = [
    FpuOp::Add,
    FpuOp::Sub,
    FpuOp::Mul,
    FpuOp::Div,
    FpuOp::Min,
    FpuOp::Max,
];

fn reg(rng: &mut Prng) -> Reg {
    Reg(rng.range_u32(0, 32) as u8)
}

fn freg(rng: &mut Prng) -> FReg {
    FReg(rng.range_u32(0, 32) as u8)
}

fn instr(rng: &mut Prng) -> Instr {
    match rng.bounded(11) {
        0 => Instr::IConst {
            rd: reg(rng),
            value: rng.next_u64() as u32 as i32 as i64, // any i32, sign-extended
        },
        1 => Instr::FConst {
            fd: freg(rng),
            value: f64::from(rng.range_i64(-1000, 1000) as i32) / 8.0,
        },
        2 => Instr::Alu {
            op: *rng.pick(&ALU_OPS),
            rd: reg(rng),
            ra: reg(rng),
            rb: reg(rng),
        },
        3 => Instr::AluImm {
            op: *rng.pick(&ALU_OPS),
            rd: reg(rng),
            ra: reg(rng),
            imm: i64::from(rng.next_u64() as u16 as i16), // any i16
        },
        4 => Instr::Fpu {
            op: *rng.pick(&FPU_OPS),
            fd: freg(rng),
            fa: freg(rng),
            fb: freg(rng),
        },
        5 => Instr::ItoF {
            fd: freg(rng),
            ra: reg(rng),
        },
        6 => Instr::FtoI {
            rd: reg(rng),
            fa: freg(rng),
        },
        7 => Instr::Ld {
            rd: reg(rng),
            base: reg(rng),
            disp: rng.range_i64(0, 512),
        },
        8 => Instr::St {
            rs: reg(rng),
            base: reg(rng),
            disp: rng.range_i64(0, 512),
        },
        9 => Instr::FLd {
            fd: freg(rng),
            base: reg(rng),
            disp: rng.range_i64(0, 512),
        },
        _ => Instr::FSt {
            fs: freg(rng),
            base: reg(rng),
            disp: rng.range_i64(0, 512),
        },
    }
}

/// Builds a multi-block program from instruction bodies: block i branches
/// or jumps forward, the last halts.
fn program_from(bodies: &[Vec<Instr>]) -> smarq_guest::Program {
    let mut b = smarq_guest::ProgramBuilder::new();
    let blocks: Vec<_> = bodies.iter().map(|_| b.block()).collect();
    for (i, body) in bodies.iter().enumerate() {
        for ins in body {
            b.push(blocks[i], *ins);
        }
        if i + 1 < bodies.len() {
            if i % 2 == 0 {
                b.jump(blocks[i], blocks[i + 1]);
            } else {
                b.branch(
                    blocks[i],
                    CmpOp::Lt,
                    Reg(1),
                    Reg(2),
                    blocks[0],
                    blocks[i + 1],
                );
            }
        } else {
            b.halt(blocks[i]);
        }
    }
    b.finish(blocks[0])
}

#[test]
fn random_programs_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = Prng::new(seed);
        let bodies: Vec<Vec<Instr>> = (0..rng.range_usize(1, 5))
            .map(|_| {
                (0..rng.range_usize(0, 12))
                    .map(|_| instr(&mut rng))
                    .collect()
            })
            .collect();
        let p1 = program_from(&bodies);
        let text = disassemble(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}"));
        assert_eq!(&p1, &p2, "seed {seed}: roundtrip changed the program");
        // Idempotence: disassembling again is stable.
        assert_eq!(text, disassemble(&p2), "seed {seed}: unstable disassembly");
    }
}

#[test]
fn parser_never_panics() {
    for seed in 0..512u64 {
        let mut rng = Prng::new(seed ^ 0xA5A5_A5A5);
        let len = rng.range_usize(0, 201);
        let src: String = (0..len)
            .map(|_| {
                // Random printable ASCII or newline, like the proptest
                // regex class `[ -~\n]` this replaces.
                let c = rng.range_u32(0x20, 0x7F + 1);
                if c == 0x7F {
                    '\n'
                } else {
                    char::from_u32(c).unwrap()
                }
            })
            .collect();
        let _ = parse_program(&src);
    }
}
