//! # smarq-fuzz — differential fuzzing for the SMARQ reproduction
//!
//! Adversarial, self-shrinking correctness tooling: a seeded structured
//! generator ([`gen`]) drives layered differential oracles ([`oracle`]),
//! failures are delta-debugged to near-minimal programs ([`minimize`])
//! and captured as replayable corpus entries ([`corpus`]) that the
//! workspace replays forever as regression tests.
//!
//! The `smarq` binary (`src/bin/smarq.rs`) fronts the same machinery:
//! `smarq fuzz` for campaigns, `smarq replay` for corpus entries,
//! `smarq snippet` to print a paste-ready Rust test. The whole pipeline
//! is deterministic in the seed.
//!
//! The "testing the testers" story lives in `smarq::fault`: a deliberate
//! constraint-rule weakening that the oracles must catch — exercised by
//! `tests/mutation_sanity.rs` and `smarq fuzz --inject-fault`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod driver;
pub mod gen;
pub mod lint;
pub mod minimize;
pub mod oracle;

pub use corpus::{load_dir, Repro};
pub use driver::{run_campaign, CampaignOutcome, CampaignParams};
pub use gen::{generate, FuzzParams};
pub use lint::{
    lint_entries, lint_entries_with, lint_paths, lint_paths_with, lint_program, lint_program_with,
    Finding, LintConfig, LintOutcome,
};
pub use minimize::{minimize, Minimized};
pub use oracle::{
    check_multi_guest, check_program, schemes, Divergence, MultiGuestReport, OracleParams,
    OracleReport,
};
