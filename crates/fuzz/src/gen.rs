//! Structured guest-program generation.
//!
//! Richer than `smarq_workloads::random_workload_with` along exactly the
//! axes the optimizer's hard paths care about:
//!
//! * **Partial-overlap access widths** — pointer pools laid out at 4-byte
//!   stride with 4-byte-granular displacements, so syntactically distinct
//!   `(base, disp)` pairs fold onto the same 8-byte word at runtime while
//!   the analysis can only say *may* alias.
//! * **Loop nests** — an optional inner counted loop inside the hot body,
//!   exercising superblock formation across nested back edges.
//! * **Elimination bait** — deliberate `ld/ld`, `st/ld` and `st/st` pairs
//!   to the same address with may-aliasing stores in between, feeding the
//!   speculative load/store elimination paths and their extended
//!   dependences.
//! * **Branchy bodies** — diamond control flow inside the loop so region
//!   formation has side exits to deal with.
//! * **Register pressure** — up to six live pointers with mid-loop bumps
//!   plus hoisted-load bursts, stressing AMOV cycle-breaking and the
//!   8-register SMARQ configuration's overflow fallback.
//!
//! Generation is deterministic in the seed.

use smarq::prng::Prng;
use smarq_guest::{AluOp, BlockId, CmpOp, FReg, FpuOp, Program, ProgramBuilder, Reg};

/// Bounds for [`generate`]. Shape decisions (nesting, diamonds, bait) are
/// drawn from the seed within these bounds.
#[derive(Clone, Copy, Debug)]
pub struct FuzzParams {
    /// Maximum straight-line operations in the hot loop body.
    pub max_body_ops: usize,
    /// Maximum trip count of the outer loop.
    pub max_iters: i64,
    /// Maximum number of distinct pool slots pointers are drawn from
    /// (smaller pools mean more genuine runtime aliasing).
    pub max_pool: u64,
}

impl Default for FuzzParams {
    fn default() -> Self {
        FuzzParams {
            max_body_ops: 32,
            max_iters: 96,
            max_pool: 5,
        }
    }
}

/// Register conventions: r1/r2 outer loop counter/limit, r3/r4 inner loop
/// counter/limit — never touched by random ops.
const PTR_LO: u32 = 10;
const PTR_HI: u32 = 16;
const VAL_LO: u32 = 16;
const VAL_HI: u32 = 24;
const FREG_LO: u32 = 8;
const FREG_HI: u32 = 16;

struct Gen<'a> {
    rng: &'a mut Prng,
    b: ProgramBuilder,
    /// 4-byte-granular displacements make distinct `(base, disp)` pairs
    /// overlap within one 8-byte word.
    fine_grained: bool,
}

impl Gen<'_> {
    fn ptr(&mut self) -> Reg {
        Reg(self.rng.range_u32(PTR_LO, PTR_HI) as u8)
    }

    fn val(&mut self) -> Reg {
        Reg(self.rng.range_u32(VAL_LO, VAL_HI) as u8)
    }

    fn freg(&mut self) -> FReg {
        FReg(self.rng.range_u32(FREG_LO, FREG_HI) as u8)
    }

    fn disp(&mut self) -> i64 {
        let unit = if self.fine_grained { 4 } else { 8 };
        i64::from(self.rng.range_u32(0, 10)) * unit
    }

    /// One random straight-line operation into `blk`.
    fn random_op(&mut self, blk: BlockId) {
        let alu = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::Or];
        let fpu = [FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Min, FpuOp::Max];
        match self.rng.bounded(10) {
            0 | 1 => {
                let (d, p, disp) = (self.val(), self.ptr(), self.disp());
                self.b.ld(blk, d, p, disp);
            }
            2 | 3 => {
                let (s, p, disp) = (self.val(), self.ptr(), self.disp());
                self.b.st(blk, s, p, disp);
            }
            4 => {
                let (d, p, disp) = (self.freg(), self.ptr(), self.disp());
                self.b.fld(blk, d, p, disp);
            }
            5 => {
                let (s, p, disp) = (self.freg(), self.ptr(), self.disp());
                self.b.fst(blk, s, p, disp);
            }
            6 => {
                let op = *self.rng.pick(&alu);
                let (d, a, c) = (self.val(), self.val(), self.val());
                self.b.alu(blk, op, d, a, c);
            }
            7 => {
                let op = *self.rng.pick(&fpu);
                let (d, a, c) = (self.freg(), self.freg(), self.freg());
                self.b.fpu(blk, op, d, a, c);
            }
            8 => {
                // Pointer bump: +4 keeps partial overlap alive; +8 moves a
                // whole word. Redefining the base splits the analysis'
                // value version, turning Must/No relations into May.
                let p = self.ptr();
                let bump = if self.rng.chance(1, 2) { 4 } else { 8 };
                self.b.alu_imm(blk, AluOp::Add, p, p, bump);
            }
            _ => {
                let d = self.val();
                let v = self.rng.range_i64(-16, 64);
                self.b.iconst(blk, d, v);
            }
        }
    }

    /// Elimination bait: pairs of memory ops to the *same* address, with
    /// an optional may-aliasing store wedged between them (the wedge is
    /// what turns the elimination speculative and induces extended
    /// dependences).
    fn bait(&mut self, blk: BlockId) {
        let p = self.ptr();
        let disp = self.disp();
        let wedge = self.rng.chance(2, 3);
        match self.rng.bounded(3) {
            0 => {
                // Redundant load pair.
                let (d1, d2) = (self.val(), self.val());
                self.b.ld(blk, d1, p, disp);
                if wedge {
                    let (s, q, wd) = (self.val(), self.ptr(), self.disp());
                    self.b.st(blk, s, q, wd);
                }
                self.b.ld(blk, d2, p, disp);
            }
            1 => {
                // Store→load forwarding.
                let (s, d) = (self.val(), self.val());
                self.b.st(blk, s, p, disp);
                if wedge {
                    let (s2, q, wd) = (self.val(), self.ptr(), self.disp());
                    self.b.st(blk, s2, q, wd);
                }
                self.b.ld(blk, d, p, disp);
            }
            _ => {
                // Dead store overwritten by a later store; a may-aliasing
                // load between them is the hazard store elimination must
                // guard with EXTENDED-DEPENDENCE 2.
                let (s1, s2) = (self.val(), self.val());
                self.b.st(blk, s1, p, disp);
                if wedge {
                    let (d, q, wd) = (self.val(), self.ptr(), self.disp());
                    self.b.ld(blk, d, q, wd);
                }
                self.b.st(blk, s2, p, disp);
            }
        }
    }
}

/// Generates one structured program from `seed` within `params`.
pub fn generate(seed: u64, params: &FuzzParams) -> Program {
    let mut rng = Prng::new(seed);
    let fine_grained = rng.chance(2, 3);
    let pool = rng.range_u64(1, params.max_pool.max(1) + 1);
    let iters = rng.range_i64(8, params.max_iters.max(9));
    let body_ops = rng.range_usize(4, params.max_body_ops.max(5));
    let nest = rng.chance(1, 3);
    let diamonds = rng.range_u32(0, 3);

    let mut g = Gen {
        rng: &mut rng,
        b: ProgramBuilder::new(),
        fine_grained,
    };

    let entry = g.b.block();
    let body = g.b.block();
    let done = g.b.block();

    g.b.iconst(entry, Reg(1), 0);
    g.b.iconst(entry, Reg(2), iters);
    // Pool stride 4 (fine-grained) straddles word boundaries between
    // slots; stride 64 keeps slots disjoint unless displacements collide.
    let stride = if fine_grained { 4 } else { 64 };
    for r in PTR_LO..PTR_HI {
        let slot = g.rng.bounded(pool) as i64;
        g.b.iconst(entry, Reg(r as u8), 0x1000 + slot * stride);
    }
    for r in VAL_LO..VAL_HI {
        let v = g.rng.range_i64(-8, 32);
        g.b.iconst(entry, Reg(r as u8), v);
    }
    for f in FREG_LO..FREG_HI {
        let v = f64::from(g.rng.range_u32(1, 32)) * 0.5;
        g.b.fconst(entry, FReg(f as u8), v);
    }
    g.b.jump(entry, body);

    // Body: straight-line ops interleaved with bait, diamonds and at most
    // one inner counted loop.
    let mut cur = body;
    let mut remaining_diamonds = diamonds;
    let mut inner_pending = nest;
    let mut ops = 0usize;
    while ops < body_ops {
        if g.rng.chance(1, 5) {
            g.bait(cur);
            ops += 2;
        } else {
            g.random_op(cur);
            ops += 1;
        }
        if remaining_diamonds > 0 && g.rng.chance(1, 4) {
            remaining_diamonds -= 1;
            let t = g.b.block();
            let f = g.b.block();
            let join = g.b.block();
            let (a, c) = (g.val(), g.val());
            let cmp = *g.rng.pick(&[CmpOp::Lt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne]);
            g.b.branch(cur, cmp, a, c, t, f);
            for blk in [t, f] {
                for _ in 0..g.rng.range_usize(1, 4) {
                    g.random_op(blk);
                }
                g.b.jump(blk, join);
            }
            cur = join;
        } else if inner_pending && g.rng.chance(1, 4) {
            inner_pending = false;
            let inner = g.b.block();
            let after = g.b.block();
            let trip = g.rng.range_i64(2, 6);
            g.b.iconst(cur, Reg(3), 0);
            g.b.iconst(cur, Reg(4), trip);
            g.b.jump(cur, inner);
            for _ in 0..g.rng.range_usize(2, 6) {
                g.random_op(inner);
            }
            g.b.alu_imm(inner, AluOp::Add, Reg(3), Reg(3), 1);
            g.b.branch(inner, CmpOp::Lt, Reg(3), Reg(4), inner, after);
            cur = after;
        }
    }
    g.b.alu_imm(cur, AluOp::Add, Reg(1), Reg(1), 1);
    g.b.branch(cur, CmpOp::Lt, Reg(1), Reg(2), body, done);
    g.b.halt(done);
    g.b.finish(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{Interpreter, RunOutcome};

    #[test]
    fn deterministic_in_the_seed() {
        for seed in 0..16 {
            let a = generate(seed, &FuzzParams::default());
            let b = generate(seed, &FuzzParams::default());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn generated_programs_halt() {
        // Pointer bumps never touch the loop counters, so every generated
        // program terminates; the budget is a backstop.
        for seed in 0..64 {
            let p = generate(seed, &FuzzParams::default());
            let mut i = Interpreter::new();
            assert_eq!(
                i.run(&p, 20_000_000),
                RunOutcome::Halted,
                "seed {seed} did not halt"
            );
        }
    }

    #[test]
    fn shapes_vary_across_seeds() {
        let mut multi_block = 0;
        for seed in 0..32 {
            let p = generate(seed, &FuzzParams::default());
            if p.num_blocks() > 3 {
                multi_block += 1;
            }
        }
        assert!(multi_block > 0, "no seed produced diamonds or nests");
        assert!(multi_block < 32, "every seed produced extra blocks");
    }
}
