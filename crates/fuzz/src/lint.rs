//! The `smarq lint` driver: statically verifies and lints every region
//! the dynamic-optimization system forms for a set of guest programs.
//!
//! This is the corpus-facing entry point of `crates/verify`: for each
//! program it replays translation under every hardware scheme in
//! [`crate::oracle::schemes`], re-optimizes each formed superblock with a
//! trace, and runs the static validator plus the default lint passes over
//! the result — no guest execution is compared, only the emitted regions
//! are judged. Findings come back as structured [`Diagnostic`]s and the
//! whole report serializes to JSON for the CI artifact.

use crate::oracle::schemes;
use smarq::range::NospecRanges;
use smarq::{AllocScratch, Diagnostic, Severity};
use smarq_guest::Program;
use smarq_opt::optimize_superblock_traced_ranged;
use smarq_runtime::{DynOptSystem, SystemConfig};
use smarq_verify::{check_trace_ranged, LintPolicy};
use std::path::{Path, PathBuf};

/// Knobs for a lint run: unspeculatable address ranges threaded into the
/// optimizer (and checked by the chain analyzer), plus a severity policy
/// (`--deny` / `--allow`) applied to every finding before counting.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Address ranges speculation must never touch; empty = none.
    pub nospec: NospecRanges,
    /// Post-hoc severity overrides keyed by stable diagnostic code.
    pub policy: LintPolicy,
}

/// One finding, located by corpus entry and hardware scheme.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Corpus entry (path) the region came from.
    pub entry: String,
    /// Hardware scheme label from [`schemes`].
    pub scheme: &'static str,
    /// The structured diagnostic.
    pub diagnostic: Diagnostic,
}

/// Aggregate result of linting a set of corpus entries.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Corpus entries processed.
    pub entries: usize,
    /// Regions verified (per scheme; regions without an allocation verify
    /// vacuously and are still counted).
    pub regions: usize,
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// All findings in discovery order.
    pub findings: Vec<Finding>,
}

impl LintOutcome {
    /// `true` when no error-severity finding was produced (warnings do
    /// not fail a lint run).
    pub fn is_clean(&self) -> bool {
        self.errors == 0
    }
}

/// Guest-instruction budget for region formation. Corpus programs all
/// terminate well inside it; a runaway program simply stops forming
/// regions once the budget runs out — lint never hangs.
const FORMATION_BUDGET: u64 = 2_000_000;

/// Lints every region `program` forms under every hardware scheme,
/// appending findings to `out`. Returns the number of regions examined.
pub fn lint_program(entry: &str, program: &Program, out: &mut Vec<Finding>) -> usize {
    lint_program_with(entry, program, &LintConfig::default(), out)
}

/// [`lint_program`] with explicit [`LintConfig`]: regions are formed and
/// re-optimized under `config.nospec`, per-region findings are joined by
/// whole-chain analysis over the cached region graph, and
/// `config.policy` rewrites severities before anything is counted.
pub fn lint_program_with(
    entry: &str,
    program: &Program,
    config: &LintConfig,
    out: &mut Vec<Finding>,
) -> usize {
    let mut regions = 0;
    let mut scratch = AllocScratch::new();
    // Whole-program dataflow once; each region is checked under its
    // proven entry state instead of the all-unknown default.
    let dataflow = smarq_verify::analyze_reference(program);
    for (label, opt) in schemes() {
        let mut cfg = SystemConfig::with_opt(opt.clone());
        // Match the replay oracle's formation knobs so lint sees the same
        // regions the fuzzer checked dynamically.
        cfg.hot_threshold = 10;
        cfg.nospec_ranges = config.nospec.clone();
        // Verify-on-emit retains traces, enabling `analyze_chain` below.
        cfg.verify_translations = true;
        let mut sys = DynOptSystem::new(program.clone(), cfg.clone());
        sys.run_to_completion(FORMATION_BUDGET);
        let mut opt_eff = opt.clone();
        opt_eff.nospec = config.nospec.clone();
        let mut push = |diagnostic: Diagnostic| {
            let mut diagnostic = diagnostic;
            config.policy.apply(&mut diagnostic);
            out.push(Finding {
                entry: entry.to_string(),
                scheme: label,
                diagnostic,
            });
        };
        for (region, sb) in sys.formed_superblocks().enumerate() {
            let entry_state = *dataflow.entry_state(sb.entry);
            let (_, trace) = optimize_superblock_traced_ranged(
                sb,
                &opt_eff,
                &cfg.machine,
                sys.blacklist(),
                &mut scratch,
                Some(&entry_state),
            );
            regions += 1;
            for diagnostic in
                check_trace_ranged(region, &trace, opt.num_alias_regs, Some((sb, &entry_state)))
            {
                push(diagnostic);
            }
        }
        // Cross-region layer: chain-boundary obligations, nospec
        // speculation, dead cross-region AMOVs, unreachable checks.
        if let Some(report) = sys.analyze_chain() {
            for diagnostic in report.diagnostics {
                push(diagnostic);
            }
        }
    }
    regions
}

/// Lints a list of `(path, program)` corpus entries, logging one line per
/// entry through `log`.
pub fn lint_entries(entries: &[(PathBuf, Program)], log: impl FnMut(&str)) -> LintOutcome {
    lint_entries_with(entries, &LintConfig::default(), log)
}

/// [`lint_entries`] under an explicit [`LintConfig`].
pub fn lint_entries_with(
    entries: &[(PathBuf, Program)],
    config: &LintConfig,
    mut log: impl FnMut(&str),
) -> LintOutcome {
    let mut outcome = LintOutcome::default();
    for (path, program) in entries {
        let entry = path.display().to_string();
        let before = outcome.findings.len();
        outcome.regions += lint_program_with(&entry, program, config, &mut outcome.findings);
        outcome.entries += 1;
        let new = &outcome.findings[before..];
        let errors = count(new, Severity::Error);
        let warnings = count(new, Severity::Warning);
        outcome.errors += errors;
        outcome.warnings += warnings;
        if errors == 0 {
            log(&format!("{entry}: clean ({warnings} warning(s))"));
        } else {
            log(&format!(
                "{entry}: {errors} error(s), {warnings} warning(s)"
            ));
            for f in new {
                if f.diagnostic.severity == Severity::Error {
                    log(&format!("  [{}] {}", f.scheme, f.diagnostic));
                }
            }
        }
    }
    outcome
}

fn count(findings: &[Finding], severity: Severity) -> usize {
    findings
        .iter()
        .filter(|f| f.diagnostic.severity == severity)
        .count()
}

/// Serializes the outcome as a JSON report (hand-rolled; no serde in the
/// workspace) for the CI `lint-corpus` artifact.
pub fn to_json(outcome: &LintOutcome) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"smarq-lint/1\",\n  \"code_table_version\": {},\n  \
         \"entries\": {},\n  \"regions\": {},\n  \
         \"errors\": {},\n  \"warnings\": {},\n  \"findings\": [",
        smarq_verify::CODE_TABLE_VERSION,
        outcome.entries,
        outcome.regions,
        outcome.errors,
        outcome.warnings
    );
    for (i, f) in outcome.findings.iter().enumerate() {
        out.push_str(&format!(
            "\n    {{\"entry\": \"{}\", \"scheme\": \"{}\", \"diagnostic\": {}}}{}",
            f.entry.replace('\\', "\\\\").replace('"', "\\\""),
            f.scheme,
            f.diagnostic.to_json(),
            if i + 1 < outcome.findings.len() {
                ","
            } else {
                "\n  "
            }
        ));
    }
    out.push_str("]\n}\n");
    out
}

/// Convenience: lints a corpus directory (or a single file), as the CLI
/// and the corpus-wide test do.
///
/// # Errors
/// Propagates I/O and parse errors as strings.
pub fn lint_paths(paths: &[&Path], log: impl FnMut(&str)) -> Result<LintOutcome, String> {
    lint_paths_with(paths, &LintConfig::default(), log)
}

/// [`lint_paths`] under an explicit [`LintConfig`].
///
/// # Errors
/// Propagates I/O and parse errors as strings.
pub fn lint_paths_with(
    paths: &[&Path],
    config: &LintConfig,
    log: impl FnMut(&str),
) -> Result<LintOutcome, String> {
    let mut entries = Vec::new();
    for path in paths {
        if path.is_dir() {
            entries.extend(crate::corpus::load_dir(path).map_err(|e| e.to_string())?);
        } else {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let prog = smarq_guest::parse_program(&src)
                .map_err(|e| format!("{}: {e:?}", path.display()))?;
            entries.push((path.to_path_buf(), prog));
        }
    }
    if entries.is_empty() {
        return Err("no corpus entries found".to_string());
    }
    Ok(lint_entries_with(&entries, config, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzParams};

    #[test]
    fn generated_program_lints_clean() {
        let p = generate(1, &FuzzParams::default());
        let mut findings = Vec::new();
        let regions = lint_program("gen-1", &p, &mut findings);
        assert!(regions > 0, "no regions formed");
        let errors: Vec<_> = findings
            .iter()
            .filter(|f| f.diagnostic.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "clean program produced errors: {errors:?}"
        );
    }

    #[test]
    fn nospec_lint_stays_clean_when_nothing_can_speculate() {
        // A nospec range covering the whole positive address space pins
        // every access: no speculation is scheduled, so neither the
        // per-region passes nor the chain analyzer may report an error —
        // and in particular no `nospec-speculation`.
        let p = generate(1, &FuzzParams::default());
        let config = LintConfig {
            nospec: NospecRanges::parse("0x0..0x7fffffffffffffff").unwrap(),
            policy: LintPolicy::default(),
        };
        let mut findings = Vec::new();
        let regions = lint_program_with("gen-1", &p, &config, &mut findings);
        assert!(regions > 0, "no regions formed");
        let bad: Vec<_> = findings
            .iter()
            .filter(|f| {
                f.diagnostic.severity == Severity::Error
                    || f.diagnostic.code == "nospec-speculation"
            })
            .collect();
        assert!(bad.is_empty(), "nospec lint found: {bad:?}");
    }

    #[test]
    fn json_report_shape() {
        let outcome = LintOutcome {
            entries: 1,
            regions: 2,
            errors: 0,
            warnings: 1,
            findings: vec![Finding {
                entry: "tests/corpus/x.s".into(),
                scheme: "smarq8",
                diagnostic: Diagnostic::new(Severity::Warning, 0, "overflow-risk", "crowded"),
            }],
        };
        let j = to_json(&outcome);
        assert!(j.contains("\"schema\": \"smarq-lint/1\""), "{j}");
        assert!(
            j.contains(&format!(
                "\"code_table_version\": {}",
                smarq_verify::CODE_TABLE_VERSION
            )),
            "{j}"
        );
        assert!(j.contains("\"entries\": 1"), "{j}");
        assert!(j.contains("\"scheme\": \"smarq8\""), "{j}");
        assert!(j.contains("\"code\": \"overflow-risk\""), "{j}");
        assert!(j.trim_end().ends_with('}'), "{j}");
    }
}
