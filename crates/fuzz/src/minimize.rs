//! Delta-debugging minimization of a failing guest program.
//!
//! Classic ddmin over the flattened straight-line instruction list
//! (terminators are never touched, so candidate programs stay
//! well-formed), followed by a constant-shrinking pass that walks
//! `iconst` immediates toward zero — loop trip counts shrink with them.
//! A candidate is kept only when the caller's predicate still fails on
//! it, so edits that break termination (e.g. deleting a loop increment)
//! are naturally rejected: the oracle reports those as a skip, not a
//! failure.

use smarq_guest::{Block, BlockId, Instr, Program};

/// Result of a [`minimize`] run.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The smallest failing program found.
    pub program: Program,
    /// Static instructions before minimization.
    pub original_ops: usize,
    /// Static instructions after minimization.
    pub final_ops: usize,
    /// Predicate evaluations spent.
    pub attempts: usize,
}

fn blocks_of(p: &Program) -> Vec<Block> {
    (0..p.num_blocks())
        .map(|i| p.block(BlockId(i as u32)).clone())
        .collect()
}

fn rebuild(p: &Program, blocks: Vec<Block>) -> Program {
    Program::with_data(blocks, p.entry(), p.data().to_vec())
}

/// All (block, instruction) coordinates, in program order.
fn coords(blocks: &[Block]) -> Vec<(usize, usize)> {
    blocks
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| (0..b.instrs.len()).map(move |ii| (bi, ii)))
        .collect()
}

/// `blocks` minus the coordinates in `remove` (which must be sorted).
fn without(blocks: &[Block], remove: &[(usize, usize)]) -> Vec<Block> {
    let mut out = blocks.to_vec();
    // Delete from the back so earlier indices stay valid.
    for &(bi, ii) in remove.iter().rev() {
        out[bi].instrs.remove(ii);
    }
    out
}

/// Shrinks `program` while `still_failing` holds, spending at most
/// `max_attempts` predicate evaluations.
pub fn minimize(
    program: &Program,
    mut still_failing: impl FnMut(&Program) -> bool,
    max_attempts: usize,
) -> Minimized {
    let original_ops = program.static_instrs();
    let mut blocks = blocks_of(program);
    let mut attempts = 0usize;

    // Phase 1: ddmin over the instruction list.
    let mut chunk = coords(&blocks).len().max(1).div_ceil(2);
    while chunk >= 1 && attempts < max_attempts {
        let mut removed_any = false;
        let mut start = 0;
        loop {
            let cs = coords(&blocks);
            if start >= cs.len() {
                break;
            }
            if attempts >= max_attempts {
                break;
            }
            let end = (start + chunk).min(cs.len());
            let candidate_blocks = without(&blocks, &cs[start..end]);
            let candidate = rebuild(program, candidate_blocks.clone());
            attempts += 1;
            if still_failing(&candidate) {
                blocks = candidate_blocks;
                removed_any = true;
                // Same `start`: the list shifted left under us.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    // Phase 2: shrink integer immediates (loop bounds, addresses offsets)
    // toward zero by halving.
    let mut progress = true;
    while progress && attempts < max_attempts {
        progress = false;
        for (bi, ii) in coords(&blocks) {
            if attempts >= max_attempts {
                break;
            }
            let Instr::IConst { rd, value } = blocks[bi].instrs[ii] else {
                continue;
            };
            if value == 0 {
                continue;
            }
            for smaller in [0, value / 2] {
                if smaller == value {
                    continue;
                }
                let mut cand = blocks.clone();
                cand[bi].instrs[ii] = Instr::IConst { rd, value: smaller };
                attempts += 1;
                if still_failing(&rebuild(program, cand.clone())) {
                    blocks = cand;
                    progress = true;
                    break;
                }
            }
        }
    }

    let out = rebuild(program, blocks);
    Minimized {
        original_ops,
        final_ops: out.static_instrs(),
        program: out,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{AluOp, ProgramBuilder, Reg};

    /// A loop whose "bug" is the presence of a store to 0x2000; everything
    /// else is noise the minimizer must strip.
    fn noisy_program() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), 50);
        b.iconst(entry, Reg(10), 0x2000);
        b.iconst(entry, Reg(11), 0x3000);
        b.jump(entry, body);
        for _ in 0..6 {
            b.alu(body, AluOp::Add, Reg(16), Reg(16), Reg(17));
            b.ld(body, Reg(18), Reg(11), 8);
        }
        b.st(body, Reg(16), Reg(10), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, smarq_guest::CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    fn has_store(p: &Program) -> bool {
        p.iter()
            .any(|(_, b)| b.instrs.iter().any(|i| matches!(i, Instr::St { .. })))
    }

    #[test]
    fn strips_noise_around_the_failure() {
        let p = noisy_program();
        let m = minimize(&p, has_store, 10_000);
        assert!(has_store(&m.program), "minimization lost the failure");
        assert!(
            m.final_ops <= 2,
            "expected near-minimal program, got {} ops",
            m.final_ops
        );
        assert!(m.final_ops < m.original_ops);
        assert_eq!(m.original_ops, p.static_instrs());
    }

    #[test]
    fn respects_the_attempt_budget() {
        let p = noisy_program();
        let m = minimize(&p, has_store, 3);
        assert!(m.attempts <= 3);
        assert!(has_store(&m.program));
    }

    #[test]
    fn shrinks_immediates() {
        let p = noisy_program();
        let m = minimize(&p, has_store, 10_000);
        let big_const = m.program.iter().any(|(_, b)| {
            b.instrs
                .iter()
                .any(|i| matches!(i, Instr::IConst { value, .. } if *value > 1))
        });
        assert!(!big_const, "immediates not shrunk: {:?}", m.program);
    }
}
