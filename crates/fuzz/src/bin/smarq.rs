//! `smarq` — fuzzing and corpus tooling for the SMARQ reproduction.
//!
//! ```text
//! smarq fuzz   [--seed N] [--cases N] [--budget-secs S] [--corpus-dir DIR]
//!              [--max-repros N] [--multiguest G]
//!              [--inject-fault drop-plain-deps|drop-anti|drop-boundary|widen-range]
//!              [--expect-divergence]
//! smarq replay PATH...        # corpus files or directories
//! smarq lint   PATH... [--json FILE] [--nospec LO..HI[,..]]
//!              [--deny CODE] [--allow CODE]   # static verification + lints
//! smarq lint --list           # print the stable diagnostic code table
//! smarq snippet FILE          # print a paste-ready Rust regression test
//! ```
//!
//! `fuzz` exits non-zero when a divergence was found (or, with
//! `--expect-divergence`, when none was — the mutation sanity mode).
//! Minimized repros are written to `--corpus-dir` (default
//! `tests/corpus`). `lint` exits non-zero on any error-severity finding
//! *after* the `--deny`/`--allow` policy is applied; `--json`
//! additionally writes the structured report for CI artifacts, and
//! `--nospec` forbids speculation across the given half-open address
//! ranges (the chain analyzer proves none was scheduled).

use smarq_fuzz::{
    check_program, lint_paths_with, load_dir, run_campaign, CampaignParams, LintConfig,
    OracleParams, Repro,
};
use smarq_verify::{LintPolicy, CODES, CODE_TABLE_VERSION};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: smarq fuzz [--seed N] [--cases N] [--budget-secs S] [--corpus-dir DIR]\n\
         \x20                 [--max-repros N] [--multiguest G]\n\
         \x20                 [--inject-fault drop-plain-deps|drop-anti|drop-boundary|widen-range]\n\
         \x20                 [--expect-divergence]\n\
         \x20      smarq replay PATH...\n\
         \x20      smarq lint PATH... [--json FILE] [--nospec LO..HI[,..]]\n\
         \x20                 [--deny CODE] [--allow CODE]\n\
         \x20      smarq lint --list\n\
         \x20      smarq snippet FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("snippet") => cmd_snippet(&args[1..]),
        _ => usage(),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: bad value"))
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let mut params = CampaignParams {
        budget: None,
        ..CampaignParams::default()
    };
    let mut cases_set = false;
    let mut corpus_dir = PathBuf::from("tests/corpus");
    let mut expect_divergence = false;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--seed" => match parse_num("--seed", value) {
                Ok(v) => params.seed = v,
                Err(e) => return fail(&e),
            },
            "--cases" => match parse_num("--cases", value) {
                Ok(v) => {
                    params.cases = v;
                    cases_set = true;
                }
                Err(e) => return fail(&e),
            },
            "--budget-secs" => match parse_num("--budget-secs", value) {
                Ok(v) => params.budget = Some(Duration::from_secs(v)),
                Err(e) => return fail(&e),
            },
            "--max-repros" => match parse_num("--max-repros", value) {
                Ok(v) => params.max_repros = v,
                Err(e) => return fail(&e),
            },
            "--multiguest" => match parse_num("--multiguest", value) {
                Ok(v) => params.multi_guests = v,
                Err(e) => return fail(&e),
            },
            "--corpus-dir" => match value {
                Some(v) => corpus_dir = PathBuf::from(v),
                None => return fail("--corpus-dir needs a value"),
            },
            "--inject-fault" => match value.map(String::as_str) {
                Some("drop-plain-deps") => smarq::fault::set_drop_plain_deps(true),
                Some("drop-anti") => smarq::fault::set_drop_anti(true),
                Some("drop-boundary") => smarq::fault::set_drop_boundary(true),
                Some("widen-range") => smarq::fault::set_widen_range(true),
                _ => {
                    return fail(
                        "--inject-fault supports: drop-plain-deps, drop-anti, \
                         drop-boundary, widen-range",
                    )
                }
            },
            "--expect-divergence" => {
                expect_divergence = true;
                i += 1;
                continue;
            }
            other => return fail(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    if params.budget.is_none() && !cases_set {
        params.budget = Some(Duration::from_secs(60));
    }

    let outcome = run_campaign(&params, |line| println!("[fuzz] {line}"));
    println!(
        "[fuzz] {} cases, {} skipped (nonterminating), {} repro(s)",
        outcome.cases_run,
        outcome.skipped,
        outcome.repros.len()
    );
    for repro in &outcome.repros {
        match repro.write_to(&corpus_dir) {
            Ok(path) => {
                println!("[fuzz] wrote {}", path.display());
                println!("----- paste-ready regression test -----");
                print!("{}", repro.rust_snippet());
                println!("---------------------------------------");
            }
            Err(e) => return fail(&format!("writing repro: {e}")),
        }
    }
    let found = !outcome.repros.is_empty();
    if expect_divergence {
        if found {
            println!("[fuzz] divergence found, as expected");
            ExitCode::SUCCESS
        } else {
            fail("expected a divergence but the oracles stayed green")
        }
    } else if found {
        fail("divergence(s) found — see repro files above")
    } else {
        ExitCode::SUCCESS
    }
}

fn collect_entries(paths: &[String]) -> Result<Vec<(PathBuf, smarq_guest::Program)>, String> {
    let mut out = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            out.extend(load_dir(path).map_err(|e| e.to_string())?);
        } else {
            let src = std::fs::read_to_string(path).map_err(|e| format!("{p}: {e}"))?;
            let prog = smarq_guest::parse_program(&src).map_err(|e| format!("{p}: {e:?}"))?;
            out.push((path.to_path_buf(), prog));
        }
    }
    Ok(out)
}

fn cmd_replay(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    let entries = match collect_entries(args) {
        Ok(e) => e,
        Err(e) => return fail(&e),
    };
    if entries.is_empty() {
        return fail("no corpus entries found");
    }
    let mut failures = 0;
    for (path, program) in &entries {
        match check_program(program, &OracleParams::default()) {
            Ok(report) => println!(
                "[replay] {}: green ({} schemes, {} regions)",
                path.display(),
                report.schemes,
                report.regions_checked
            ),
            Err(d) => {
                failures += 1;
                println!("[replay] {}: {d}", path.display());
            }
        }
    }
    if failures == 0 {
        println!("[replay] {} entr(ies) green", entries.len());
        ExitCode::SUCCESS
    } else {
        fail(&format!("{failures} corpus entr(ies) diverged"))
    }
}

/// Prints the stable diagnostic code table (`smarq lint --list`).
fn list_codes() -> ExitCode {
    println!("code table version {CODE_TABLE_VERSION}");
    for info in CODES {
        println!(
            "{:<24} {:<9} {:<7} {}",
            info.code,
            info.origin.label(),
            format!("{:?}", info.default_severity).to_lowercase(),
            info.description
        );
    }
    ExitCode::SUCCESS
}

fn cmd_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        return list_codes();
    }
    let mut paths: Vec<&str> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut nospec = smarq::range::NospecRanges::none();
    let mut deny: Vec<String> = Vec::new();
    let mut allow: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => match args.get(i + 1) {
                Some(v) => {
                    json_out = Some(PathBuf::from(v));
                    i += 2;
                }
                None => return fail("--json needs a value"),
            },
            "--nospec" => match args.get(i + 1) {
                Some(v) => match smarq::range::NospecRanges::parse(v) {
                    Ok(r) => {
                        nospec = r;
                        i += 2;
                    }
                    Err(e) => return fail(&format!("--nospec: {e}")),
                },
                None => return fail("--nospec needs a value"),
            },
            "--deny" => match args.get(i + 1) {
                Some(v) => {
                    deny.push(v.clone());
                    i += 2;
                }
                None => return fail("--deny needs a value"),
            },
            "--allow" => match args.get(i + 1) {
                Some(v) => {
                    allow.push(v.clone());
                    i += 2;
                }
                None => return fail("--allow needs a value"),
            },
            flag if flag.starts_with("--") => return fail(&format!("unknown flag {flag}")),
            p => {
                paths.push(p);
                i += 1;
            }
        }
    }
    if paths.is_empty() {
        return usage();
    }
    let policy = match LintPolicy::new(deny, allow) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let config = LintConfig { nospec, policy };
    let path_refs: Vec<&Path> = paths.iter().map(Path::new).collect();
    let outcome = match lint_paths_with(&path_refs, &config, |line| println!("[lint] {line}")) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    println!(
        "[lint] {} entr(ies), {} region(s): {} error(s), {} warning(s)",
        outcome.entries, outcome.regions, outcome.errors, outcome.warnings
    );
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, smarq_fuzz::lint::to_json(&outcome)) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        println!("[lint] wrote {}", path.display());
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        fail(&format!("{} error-severity finding(s)", outcome.errors))
    }
}

fn cmd_snippet(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{file}: {e}")),
    };
    let program = match smarq_guest::parse_program(&src) {
        Ok(p) => p,
        Err(e) => return fail(&format!("{file}: {e:?}")),
    };
    // Recover the recorded metadata from the header when present.
    let field = |name: &str| {
        src.lines()
            .filter_map(|l| l.strip_prefix(&format!("; {name}: ")))
            .next()
            .map(str::to_string)
    };
    let repro = Repro {
        seed: field("seed").and_then(|s| s.parse().ok()).unwrap_or(0),
        divergence: field("divergence").unwrap_or_else(|| "unrecorded".to_string()),
        original_ops: program.static_instrs(),
        program,
    };
    print!("{}", repro.rust_snippet());
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("smarq: {msg}");
    ExitCode::FAILURE
}
