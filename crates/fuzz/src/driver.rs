//! The fuzz campaign loop shared by the `smarq fuzz` CLI and the
//! in-tree smoke/mutation tests: generate → oracle → minimize → record.

use crate::corpus::Repro;
use crate::gen::{generate, FuzzParams};
use crate::minimize::minimize;
use crate::oracle::{check_multi_guest, check_program, Divergence, OracleParams};
use smarq_guest::Program;
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignParams {
    /// First generator seed; case `i` uses `seed + i`.
    pub seed: u64,
    /// Maximum cases to run.
    pub cases: u64,
    /// Optional wall-clock budget; the campaign stops at whichever of
    /// `cases`/`budget` is hit first.
    pub budget: Option<Duration>,
    /// Stop after this many captured repros.
    pub max_repros: usize,
    /// Generator bounds.
    pub gen: FuzzParams,
    /// Oracle budgets.
    pub oracle: OracleParams,
    /// Predicate-evaluation budget per minimization.
    pub minimize_attempts: usize,
    /// Guests in the multi-guest oracle layer: each case additionally runs
    /// as guest 0 of a `multi_guests`-tenant shared-hub run alongside
    /// companion programs generated from seeds derived from the case seed.
    /// `0` or `1` disables the layer.
    pub multi_guests: usize,
}

impl Default for CampaignParams {
    fn default() -> Self {
        CampaignParams {
            seed: 0,
            cases: u64::MAX,
            budget: Some(Duration::from_secs(60)),
            max_repros: 8,
            gen: FuzzParams::default(),
            oracle: OracleParams::default(),
            minimize_attempts: 400,
            multi_guests: 3,
        }
    }
}

/// What a campaign did.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Cases generated and checked.
    pub cases_run: u64,
    /// Cases skipped as non-terminating.
    pub skipped: u64,
    /// Minimized repros, one per diverging seed.
    pub repros: Vec<Repro>,
}

/// Runs a fuzz campaign; `progress` receives human-readable event lines.
pub fn run_campaign(params: &CampaignParams, mut progress: impl FnMut(String)) -> CampaignOutcome {
    let start = Instant::now();
    let mut outcome = CampaignOutcome::default();
    for case in 0..params.cases {
        if let Some(budget) = params.budget {
            if start.elapsed() >= budget {
                progress(format!("budget exhausted after {case} cases"));
                break;
            }
        }
        if outcome.repros.len() >= params.max_repros {
            progress(format!("repro limit reached after {case} cases"));
            break;
        }
        let seed = params.seed.wrapping_add(case);
        let program = generate(seed, &params.gen);
        outcome.cases_run += 1;
        match check_program(&program, &params.oracle) {
            Ok(_) => {
                // Single-guest layers green: run the case as guest 0 of a
                // shared-hub multi-guest set with derived companions.
                if params.multi_guests >= 2 {
                    if let Some(repro) = multi_guest_case(&program, seed, params, &mut progress) {
                        outcome.repros.push(repro);
                    }
                }
            }
            Err(Divergence::Nontermination) => outcome.skipped += 1,
            Err(first) => {
                progress(format!("seed {seed}: {first}"));
                let oracle = params.oracle;
                let min = minimize(
                    &program,
                    |candidate| matches!(check_program(candidate, &oracle), Err(d) if d.is_failure()),
                    params.minimize_attempts,
                );
                // Re-run the oracle on the minimized program: minimization
                // may have walked the failure to a different (still real)
                // divergence; the corpus header records the final one.
                let divergence = match check_program(&min.program, &oracle) {
                    Err(d) if d.is_failure() => d.to_string(),
                    _ => first.to_string(),
                };
                progress(format!(
                    "seed {seed}: minimized {} -> {} ops in {} attempts",
                    min.original_ops, min.final_ops, min.attempts
                ));
                outcome.repros.push(Repro {
                    seed,
                    divergence,
                    original_ops: min.original_ops,
                    program: min.program,
                });
            }
        }
    }
    outcome
}

/// Companion-guest seed `k` for case `seed`: an odd-stride mix so the
/// companion programs are distinct from the case and from each other, yet
/// fully determined by the case seed (a finding replays from `seed` and
/// `multi_guests` alone).
fn companion_seed(seed: u64, k: u64) -> u64 {
    seed.wrapping_add(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ 0x5851_f42d_4c95_7f2d
}

/// Runs the multi-guest oracle layer for one case; on divergence,
/// minimizes guest 0 (companions held fixed) and returns the repro.
fn multi_guest_case(
    program: &Program,
    seed: u64,
    params: &CampaignParams,
    progress: &mut impl FnMut(String),
) -> Option<Repro> {
    let companions: Vec<Program> = (1..params.multi_guests as u64)
        .map(|k| generate(companion_seed(seed, k), &params.gen))
        .collect();
    let with_guest0 = |g0: &Program| {
        let mut set = Vec::with_capacity(companions.len() + 1);
        set.push(g0.clone());
        set.extend(companions.iter().cloned());
        set
    };
    match check_multi_guest(&with_guest0(program), &params.oracle, seed) {
        // A non-terminating companion drains the layer of signal; the
        // single-guest layers already vouched for the case itself.
        Ok(_) | Err(Divergence::Nontermination) => None,
        Err(first) => {
            progress(format!("seed {seed}: {first}"));
            let oracle = params.oracle;
            let min = minimize(
                program,
                |candidate| {
                    matches!(
                        check_multi_guest(&with_guest0(candidate), &oracle, seed),
                        Err(d) if d.is_failure()
                    )
                },
                params.minimize_attempts,
            );
            let divergence = match check_multi_guest(&with_guest0(&min.program), &oracle, seed) {
                Err(d) if d.is_failure() => d.to_string(),
                _ => first.to_string(),
            };
            progress(format!(
                "seed {seed}: minimized {} -> {} ops in {} attempts",
                min.original_ops, min.final_ops, min.attempts
            ));
            Some(Repro {
                seed,
                divergence,
                original_ops: min.original_ops,
                program: min.program,
            })
        }
    }
}
