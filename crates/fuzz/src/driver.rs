//! The fuzz campaign loop shared by the `smarq fuzz` CLI and the
//! in-tree smoke/mutation tests: generate → oracle → minimize → record.

use crate::corpus::Repro;
use crate::gen::{generate, FuzzParams};
use crate::minimize::minimize;
use crate::oracle::{check_program, Divergence, OracleParams};
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignParams {
    /// First generator seed; case `i` uses `seed + i`.
    pub seed: u64,
    /// Maximum cases to run.
    pub cases: u64,
    /// Optional wall-clock budget; the campaign stops at whichever of
    /// `cases`/`budget` is hit first.
    pub budget: Option<Duration>,
    /// Stop after this many captured repros.
    pub max_repros: usize,
    /// Generator bounds.
    pub gen: FuzzParams,
    /// Oracle budgets.
    pub oracle: OracleParams,
    /// Predicate-evaluation budget per minimization.
    pub minimize_attempts: usize,
}

impl Default for CampaignParams {
    fn default() -> Self {
        CampaignParams {
            seed: 0,
            cases: u64::MAX,
            budget: Some(Duration::from_secs(60)),
            max_repros: 8,
            gen: FuzzParams::default(),
            oracle: OracleParams::default(),
            minimize_attempts: 400,
        }
    }
}

/// What a campaign did.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Cases generated and checked.
    pub cases_run: u64,
    /// Cases skipped as non-terminating.
    pub skipped: u64,
    /// Minimized repros, one per diverging seed.
    pub repros: Vec<Repro>,
}

/// Runs a fuzz campaign; `progress` receives human-readable event lines.
pub fn run_campaign(params: &CampaignParams, mut progress: impl FnMut(String)) -> CampaignOutcome {
    let start = Instant::now();
    let mut outcome = CampaignOutcome::default();
    for case in 0..params.cases {
        if let Some(budget) = params.budget {
            if start.elapsed() >= budget {
                progress(format!("budget exhausted after {case} cases"));
                break;
            }
        }
        if outcome.repros.len() >= params.max_repros {
            progress(format!("repro limit reached after {case} cases"));
            break;
        }
        let seed = params.seed.wrapping_add(case);
        let program = generate(seed, &params.gen);
        outcome.cases_run += 1;
        match check_program(&program, &params.oracle) {
            Ok(_) => {}
            Err(Divergence::Nontermination) => outcome.skipped += 1,
            Err(first) => {
                progress(format!("seed {seed}: {first}"));
                let oracle = params.oracle;
                let min = minimize(
                    &program,
                    |candidate| matches!(check_program(candidate, &oracle), Err(d) if d.is_failure()),
                    params.minimize_attempts,
                );
                // Re-run the oracle on the minimized program: minimization
                // may have walked the failure to a different (still real)
                // divergence; the corpus header records the final one.
                let divergence = match check_program(&min.program, &oracle) {
                    Err(d) if d.is_failure() => d.to_string(),
                    _ => first.to_string(),
                };
                progress(format!(
                    "seed {seed}: minimized {} -> {} ops in {} attempts",
                    min.original_ops, min.final_ops, min.attempts
                ));
                outcome.repros.push(Repro {
                    seed,
                    divergence,
                    original_ops: min.original_ops,
                    program: min.program,
                });
            }
        }
    }
    outcome
}
