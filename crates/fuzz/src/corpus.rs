//! Replayable repro files.
//!
//! A corpus entry is a plain guest assembly file (the format of
//! [`smarq_guest::parse_program`]) with a machine-readable comment header
//! recording the seed, the divergence and the minimization result. Every
//! entry in `tests/corpus/` is replayed as a permanent regression test by
//! `tests/corpus_replay.rs` at the workspace root.

use smarq_guest::{disassemble, parse_program, ParseAsmError, Program};
use std::io;
use std::path::{Path, PathBuf};

/// Everything recorded about one captured divergence.
#[derive(Clone, Debug)]
pub struct Repro {
    /// Generator seed that produced the original failing program.
    pub seed: u64,
    /// Divergence label (see `Divergence::kind`) plus detail.
    pub divergence: String,
    /// Static instruction count before minimization.
    pub original_ops: usize,
    /// The minimized program.
    pub program: Program,
}

impl Repro {
    /// The corpus file name for this repro.
    pub fn file_name(&self) -> String {
        format!("seed_{:06}.s", self.seed)
    }

    /// Renders the repro as an assembly file with its comment header.
    pub fn render(&self) -> String {
        format!(
            "; smarq-fuzz minimized repro\n\
             ; seed: {}\n\
             ; divergence: {}\n\
             ; ops: {} -> {}\n\
             {}",
            self.seed,
            self.divergence,
            self.original_ops,
            self.program.static_instrs(),
            disassemble(&self.program)
        )
    }

    /// Writes the repro into `dir`, creating it if needed. Returns the
    /// path written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// A ready-to-paste Rust regression test exercising this repro
    /// through the full oracle stack.
    pub fn rust_snippet(&self) -> String {
        format!(
            "#[test]\n\
             fn fuzz_repro_seed_{seed}() {{\n\
             \x20   // {divergence}\n\
             \x20   let src = r#\"\n{asm}\"#;\n\
             \x20   let program = smarq_guest::parse_program(src).expect(\"repro parses\");\n\
             \x20   smarq_fuzz::check_program(&program, &smarq_fuzz::OracleParams::default())\n\
             \x20       .expect(\"repro must stay green\");\n\
             }}\n",
            seed = self.seed,
            divergence = self.divergence,
            asm = disassemble(&self.program),
        )
    }
}

/// Loads every `.s` entry in `dir` (sorted by file name). Missing
/// directories load as empty.
///
/// # Errors
/// Propagates filesystem errors; a file that fails to parse is reported
/// as [`io::ErrorKind::InvalidData`] with the parser's message.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Program)>> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "s"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let src = std::fs::read_to_string(&path)?;
        let program = parse_program(&src).map_err(|e: ParseAsmError| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e:?}", path.display()),
            )
        })?;
        out.push((path, program));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzParams};

    #[test]
    fn render_roundtrips_through_the_parser() {
        let program = generate(5, &FuzzParams::default());
        let repro = Repro {
            seed: 5,
            divergence: "arch-mismatch under smarq8: r16".to_string(),
            original_ops: program.static_instrs(),
            program: program.clone(),
        };
        let parsed = parse_program(&repro.render()).expect("header comments are ignored");
        assert_eq!(parsed, program);
    }

    #[test]
    fn write_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("smarq-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let program = generate(9, &FuzzParams::default());
        let repro = Repro {
            seed: 9,
            divergence: "depgraph-mismatch".to_string(),
            original_ops: program.static_instrs(),
            program: program.clone(),
        };
        let path = repro.write_to(&dir).unwrap();
        assert!(path.ends_with("seed_000009.s"));
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, program);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snippet_mentions_the_oracle_entry_point() {
        let program = generate(3, &FuzzParams::default());
        let repro = Repro {
            seed: 3,
            divergence: "queue-mismatch".to_string(),
            original_ops: program.static_instrs(),
            program,
        };
        let s = repro.rust_snippet();
        assert!(s.contains("fn fuzz_repro_seed_3"));
        assert!(s.contains("smarq_fuzz::check_program"));
    }
}
