//! Layered differential oracles.
//!
//! One fuzz case is checked at five layers, cheapest evidence last:
//!
//! 1. **End-to-end** — a pure [`Interpreter`] run is the reference; the
//!    full [`DynOptSystem`] must reproduce the architectural state
//!    bit-exactly under every hardware scheme. The same case is then
//!    re-run with region chaining disabled ([`DispatchMode::Naive`]) and
//!    the two dispatchers must agree on both the final architectural
//!    state and the guest-instruction totals. A third run with the fast
//!    functional tier enabled ([`ExecTier::Functional`], sampling every
//!    region entry) must likewise agree, with zero sampled tier-down
//!    mismatches. A fourth run moves translation onto the async
//!    background pipeline (a manually stepped depth-1 queue driven by a
//!    seeded interleaving schedule) and must again be bit-exact — every
//!    publish/execute/deopt interleaving is architecturally invisible.
//! 2. **Allocation validation** — every superblock the system formed is
//!    re-optimized through [`smarq_opt::optimize_superblock_traced`] and
//!    the resulting allocation is replayed symbolically by
//!    [`validate_allocation`] (soundness, precision, mechanics).
//! 3. **Static verification** — the same regions go through
//!    [`smarq_verify`]'s independent constraint re-derivation and
//!    symbolic queue replay; any error-severity diagnostic is a
//!    divergence. Unlike layer 2 this layer does *not* share the
//!    production dependence analysis, so a consistent-but-wrong analysis
//!    (the injected faults of `smarq::fault`) is caught here without any
//!    execution at all.
//! 4. **Fast-path differentials** — on the same live regions,
//!    [`DepGraph::compute`] vs [`DepGraph::compute_naive`] edge sets, and
//!    [`AliasQueue::check_first`] vs the full-scan
//!    [`AliasQueue::check`] at every C-bit instruction of the allocated
//!    code.
//! 5. **Whole-chain analysis** — the main run executes under
//!    verify-on-emit, so every memoized region→region link is
//!    chain-checked at resolution time, and afterwards
//!    [`DynOptSystem::analyze_chain`] re-proves the entire cached region
//!    graph at its cross-region fixpoint (write-mask coverage, entry-state
//!    obligations, nospec speculation). This is the only layer that sees
//!    *between* regions, so faults confined to region boundaries
//!    (`SMARQ_FAULT_DROP_BOUNDARY`, `SMARQ_FAULT_WIDEN_RANGE`) are caught
//!    here and nowhere else.
//!
//! The layering is the point: a consistent-but-wrong analysis slips past
//! the validator — which is fed the same wrong dependences — but cannot
//! slip past the independent static verifier, the differential or the
//! end-to-end state check.
//!
//! A separate multi-guest oracle ([`check_multi_guest`]) runs G distinct
//! programs as concurrent tenants of one shared
//! [`smarq_runtime::TranslationHub`] under a seeded interleaved schedule
//! and cross-checks every guest against the same program run alone —
//! covering the shared-cache, cross-guest-invalidation and scheduling
//! machinery the single-guest layers cannot reach.

use smarq::queue::AliasQueue;
use smarq::validate::validate_allocation;
use smarq::{AliasCode, AllocScratch, Dep, DepGraph, MemOpId};
use smarq_guest::{ArchState, Interpreter, Program, RunOutcome};
use smarq_opt::{optimize_superblock_traced, OptConfig};
use smarq_runtime::{
    run_multi_interleaved, DispatchMode, DynOptSystem, ExecTier, GuestContext, HubConfig,
    StepExecutor, StopReason, SystemConfig, TranslationHub,
};

/// Oracle budgets and system knobs.
#[derive(Clone, Copy, Debug)]
pub struct OracleParams {
    /// Guest-instruction budget for the reference interpreter; a program
    /// that does not halt within it is reported as
    /// [`Divergence::Nontermination`] (a skip, not a failure).
    pub interp_budget: u64,
    /// Execution count at which the system considers a block hot (kept
    /// low so short fuzz programs actually form regions).
    pub hot_threshold: u64,
    /// Unroll factor for the optimized systems (larger regions exercise
    /// more alias registers).
    pub unroll_factor: u32,
}

impl Default for OracleParams {
    fn default() -> Self {
        OracleParams {
            interp_budget: 2_000_000,
            hot_threshold: 10,
            unroll_factor: 1,
        }
    }
}

/// The hardware schemes every case is checked under.
pub fn schemes() -> [(&'static str, OptConfig); 6] {
    [
        ("smarq64", OptConfig::smarq(64)),
        ("smarq8", OptConfig::smarq(8)),
        ("smarq_nsr", OptConfig::smarq_no_store_reorder(64)),
        ("efficeon", OptConfig::efficeon()),
        ("alat", OptConfig::alat()),
        ("none", OptConfig::no_alias_hw()),
    ]
}

/// A divergence found by one of the oracle layers.
#[derive(Clone, Debug)]
pub enum Divergence {
    /// The reference interpreter exhausted its budget; the case carries no
    /// signal and is skipped (the minimizer also uses this to reject edits
    /// that break termination).
    Nontermination,
    /// Layer 1: optimized execution left different architectural state.
    ArchMismatch {
        /// Scheme label from [`schemes`].
        scheme: &'static str,
        /// First differing locations.
        detail: String,
    },
    /// Layer 1b: the chained dispatcher (region chaining + resident guest
    /// state + batched stat sync) diverged from the retained naive
    /// dispatcher — different architectural state or different
    /// guest-instruction accounting on the same program.
    DispatchMismatch {
        /// Scheme label from [`schemes`].
        scheme: &'static str,
        /// What differed between the two dispatchers.
        detail: String,
    },
    /// Layer 1c: the fast functional tier diverged from the cycle
    /// simulator — different final architectural state, different
    /// guest-instruction accounting, or a sampled tier-down comparison
    /// that came back non-bit-exact mid-run.
    TierMismatch {
        /// Scheme label from [`schemes`].
        scheme: &'static str,
        /// What differed between the functional tier and the cycle sim.
        detail: String,
    },
    /// Layer 1d: the async background translation pipeline diverged from
    /// inline translation — different architectural state or different
    /// guest-instruction accounting under a seeded publish/execute
    /// interleaving schedule.
    AsyncMismatch {
        /// Scheme label from [`schemes`].
        scheme: &'static str,
        /// The schedule seed the divergence reproduces under.
        seed: u64,
        /// What differed between the async and inline runs.
        detail: String,
    },
    /// Layer 2: the symbolic validator rejected a produced allocation.
    ValidatorReject {
        /// Scheme label.
        scheme: &'static str,
        /// Region index in formation order.
        region: usize,
        /// The validator's error.
        detail: String,
    },
    /// Layer 3: the independent static verifier (`smarq_verify`) rejected
    /// a produced region — an error-severity structured diagnostic.
    StaticVerify {
        /// Scheme label.
        scheme: &'static str,
        /// Region index in formation order.
        region: usize,
        /// The first error diagnostic, JSON-serialized.
        detail: String,
    },
    /// Layer 4: fast dependence analysis disagrees with the naive oracle.
    DepGraphMismatch {
        /// Scheme label.
        scheme: &'static str,
        /// Region index in formation order.
        region: usize,
        /// Edge-set difference summary.
        detail: String,
    },
    /// Multi-guest: G guests sharing a [`TranslationHub`] diverged from
    /// the same programs run alone — a wrong per-guest architectural
    /// state, a broken publish ledger, a violated translate-once
    /// guarantee, or a seeded schedule that does not replay
    /// deterministically.
    MultiGuestMismatch {
        /// Scheme label from [`schemes`].
        scheme: &'static str,
        /// The interleaving seed the divergence reproduces under.
        seed: u64,
        /// What diverged between shared-hub and solo execution.
        detail: String,
    },
    /// Layer 5: the whole-chain analyzer rejected the cached region graph
    /// — a diverged fixpoint, a chain-boundary obligation violation, or
    /// speculation into an unspeculatable address range.
    ChainVerify {
        /// Scheme label.
        scheme: &'static str,
        /// The first chain-level error diagnostic, JSON-serialized (or a
        /// convergence-failure note).
        detail: String,
    },
    /// Layer 4: `check_first` disagrees with the full-scan `check`.
    QueueMismatch {
        /// Scheme label.
        scheme: &'static str,
        /// Region index in formation order.
        region: usize,
        /// The disagreeing check.
        detail: String,
    },
}

impl Divergence {
    /// Short stable label for reports and corpus headers.
    pub fn kind(&self) -> &'static str {
        match self {
            Divergence::Nontermination => "nontermination",
            Divergence::ArchMismatch { .. } => "arch-mismatch",
            Divergence::DispatchMismatch { .. } => "dispatch-mismatch",
            Divergence::TierMismatch { .. } => "tier-mismatch",
            Divergence::AsyncMismatch { .. } => "async-mismatch",
            Divergence::ValidatorReject { .. } => "validator-reject",
            Divergence::StaticVerify { .. } => "static-verify",
            Divergence::DepGraphMismatch { .. } => "depgraph-mismatch",
            Divergence::MultiGuestMismatch { .. } => "multiguest-mismatch",
            Divergence::ChainVerify { .. } => "chain-verify",
            Divergence::QueueMismatch { .. } => "queue-mismatch",
        }
    }

    /// `true` for real failures (everything except a skipped
    /// non-terminating case).
    pub fn is_failure(&self) -> bool {
        !matches!(self, Divergence::Nontermination)
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Nontermination => write!(f, "nontermination (skipped)"),
            Divergence::ArchMismatch { scheme, detail } => {
                write!(f, "arch-mismatch under {scheme}: {detail}")
            }
            Divergence::DispatchMismatch { scheme, detail } => {
                write!(f, "dispatch-mismatch under {scheme}: {detail}")
            }
            Divergence::TierMismatch { scheme, detail } => {
                write!(f, "tier-mismatch under {scheme}: {detail}")
            }
            Divergence::AsyncMismatch {
                scheme,
                seed,
                detail,
            } => write!(
                f,
                "async-mismatch under {scheme} (seed {seed:#x}): {detail}"
            ),
            Divergence::ValidatorReject {
                scheme,
                region,
                detail,
            } => write!(
                f,
                "validator-reject under {scheme} region {region}: {detail}"
            ),
            Divergence::StaticVerify {
                scheme,
                region,
                detail,
            } => write!(f, "static-verify under {scheme} region {region}: {detail}"),
            Divergence::DepGraphMismatch {
                scheme,
                region,
                detail,
            } => write!(
                f,
                "depgraph-mismatch under {scheme} region {region}: {detail}"
            ),
            Divergence::MultiGuestMismatch {
                scheme,
                seed,
                detail,
            } => write!(
                f,
                "multiguest-mismatch under {scheme} (seed {seed:#x}): {detail}"
            ),
            Divergence::ChainVerify { scheme, detail } => {
                write!(f, "chain-verify under {scheme}: {detail}")
            }
            Divergence::QueueMismatch {
                scheme,
                region,
                detail,
            } => write!(f, "queue-mismatch under {scheme} region {region}: {detail}"),
        }
    }
}

/// What a green oracle run covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleReport {
    /// Schemes executed end to end.
    pub schemes: usize,
    /// Chained-vs-naive dispatcher differentials that came out bit-exact.
    pub dispatch_differentials: usize,
    /// Functional-tier-vs-cycle-sim differentials that came out bit-exact
    /// (final state, instruction accounting, and every in-run sample).
    pub tier_differentials: usize,
    /// Async-pipeline-vs-inline differentials that came out bit-exact
    /// under a seeded publish/execute interleaving schedule.
    pub async_differentials: usize,
    /// Regions whose traces passed layers 2–4.
    pub regions_checked: usize,
    /// Allocations replayed by the validator.
    pub allocations_validated: usize,
    /// Regions proven by the independent static verifier.
    pub regions_verified: usize,
    /// Regions covered by a converged whole-chain analysis (layer 5).
    pub chain_regions: usize,
}

fn arch_diff(expected: &ArchState, got: &ArchState) -> String {
    for i in 0..32 {
        if expected.regs[i] != got.regs[i] {
            return format!("r{i}: expected {}, got {}", expected.regs[i], got.regs[i]);
        }
    }
    for i in 0..32 {
        if expected.fregs[i] != got.fregs[i] {
            return format!(
                "f{i}: expected {:#x}, got {:#x}",
                expected.fregs[i], got.fregs[i]
            );
        }
    }
    "memory contents differ".to_string()
}

fn dep_key(d: &Dep) -> (MemOpId, MemOpId, u8) {
    (d.src, d.dst, d.kind as u8)
}

/// Runs all oracle layers over `program`.
///
/// # Errors
/// The first [`Divergence`] found, layer by layer per scheme.
pub fn check_program(program: &Program, params: &OracleParams) -> Result<OracleReport, Divergence> {
    // Layer 0: the reference run.
    let mut reference = Interpreter::new();
    if reference.run(program, params.interp_budget) == RunOutcome::BudgetExhausted {
        return Err(Divergence::Nontermination);
    }
    let expected = reference.arch_state();

    let mut report = OracleReport::default();
    let mut scratch = AllocScratch::new();
    for (label, opt) in schemes() {
        let mut cfg = SystemConfig::with_opt(opt.clone());
        cfg.hot_threshold = params.hot_threshold;
        cfg.unroll_factor = params.unroll_factor;
        // Verify-on-emit for the main run: regions keep their traces, so
        // link resolutions are chain-checked live and layer 5 can re-prove
        // the whole region graph afterwards.
        cfg.verify_translations = true;
        let mut sys = DynOptSystem::new(program.clone(), cfg.clone());
        sys.run_to_completion(u64::MAX);
        report.schemes += 1;

        // Layer 1: bit-exact architectural state.
        let got = sys.interp().arch_state();
        if got != expected {
            return Err(Divergence::ArchMismatch {
                scheme: label,
                detail: arch_diff(&expected, &got),
            });
        }

        // Layer 1b: the chained dispatcher vs the retained naive
        // dispatcher. Same program, same scheme, chaining off: the final
        // architectural state and the guest-instruction accounting must
        // both be bit-exact against the chained run above.
        let mut naive_cfg = cfg.clone();
        naive_cfg.dispatch = DispatchMode::Naive;
        let mut naive_sys = DynOptSystem::new(program.clone(), naive_cfg);
        naive_sys.run_to_completion(u64::MAX);
        let naive_got = naive_sys.interp().arch_state();
        if naive_got != expected {
            return Err(Divergence::DispatchMismatch {
                scheme: label,
                detail: format!(
                    "naive dispatch arch state: {}",
                    arch_diff(&expected, &naive_got)
                ),
            });
        }
        if naive_sys.stats().guest_instrs() != sys.stats().guest_instrs() {
            return Err(Divergence::DispatchMismatch {
                scheme: label,
                detail: format!(
                    "guest_instrs: chained {} vs naive {}",
                    sys.stats().guest_instrs(),
                    naive_sys.stats().guest_instrs()
                ),
            });
        }
        report.dispatch_differentials += 1;

        // Layer 1c: the fast functional tier vs the cycle simulator. Same
        // program, same scheme, functional tier on with every region entry
        // tier-down sampled: the final architectural state and the
        // guest-instruction accounting must match the cycle-sim run above,
        // and every in-run sample must have been bit-exact.
        let mut fast_cfg = cfg.clone();
        fast_cfg.exec_tier = ExecTier::Functional;
        fast_cfg.tier_sample_interval = 1;
        let mut fast_sys = DynOptSystem::new(program.clone(), fast_cfg);
        fast_sys.run_to_completion(u64::MAX);
        let fast_got = fast_sys.interp().arch_state();
        if fast_got != expected {
            return Err(Divergence::TierMismatch {
                scheme: label,
                detail: format!(
                    "functional tier arch state: {}",
                    arch_diff(&expected, &fast_got)
                ),
            });
        }
        if fast_sys.stats().guest_instrs() != sys.stats().guest_instrs() {
            return Err(Divergence::TierMismatch {
                scheme: label,
                detail: format!(
                    "guest_instrs: cycle-sim {} vs functional {}",
                    sys.stats().guest_instrs(),
                    fast_sys.stats().guest_instrs()
                ),
            });
        }
        if fast_sys.stats().tier_sample_mismatches != 0 {
            return Err(Divergence::TierMismatch {
                scheme: label,
                detail: format!(
                    "{} of {} tier-down samples were not bit-exact",
                    fast_sys.stats().tier_sample_mismatches,
                    fast_sys.stats().tier_samples
                ),
            });
        }
        report.tier_differentials += 1;

        // Layer 1d: async background translation vs inline. Same program,
        // same scheme, but translations flow through a manually stepped
        // depth-1 pipeline whose publish points are interleaved against
        // guest dispatch by a seeded xorshift schedule. Whatever the
        // schedule — stale regions running, publishes landing mid-chain,
        // deopts racing retranslations — the architectural state and the
        // guest-instruction accounting must be bit-exact.
        let seed = 0xa11a_5000 + report.schemes as u64;
        let mut async_cfg = cfg.clone();
        async_cfg.async_translate = true;
        async_cfg.translate_queue_depth = 1;
        let mut async_sys = DynOptSystem::with_executor(
            program.clone(),
            async_cfg,
            Box::new(StepExecutor::manual(1)),
        );
        if async_sys.run_interleaved(seed, u64::MAX) != StopReason::Halted {
            return Err(Divergence::AsyncMismatch {
                scheme: label,
                seed,
                detail: "async run did not halt".to_string(),
            });
        }
        let async_got = async_sys.interp().arch_state();
        if async_got != expected {
            return Err(Divergence::AsyncMismatch {
                scheme: label,
                seed,
                detail: format!("async arch state: {}", arch_diff(&expected, &async_got)),
            });
        }
        // (No guest_instrs comparison here: that counter reflects region
        // shapes, and the async run legitimately forms regions from later
        // profile snapshots than the inline run does.)
        report.async_differentials += 1;

        // Layers 2 and 3 over every region the system actually formed.
        for (region, sb) in sys.formed_superblocks().enumerate() {
            let (_, trace) =
                optimize_superblock_traced(sb, &opt, &cfg.machine, sys.blacklist(), &mut scratch);

            // Layer 3a: dependence fast path vs naive oracle.
            let mut fast: Vec<_> = DepGraph::compute(&trace.spec).iter().collect();
            let mut naive: Vec<_> = DepGraph::compute_naive(&trace.spec).iter().collect();
            fast.sort_by_key(dep_key);
            naive.sort_by_key(dep_key);
            if fast != naive {
                let missing: Vec<_> = naive.iter().filter(|d| !fast.contains(d)).collect();
                let extra: Vec<_> = fast.iter().filter(|d| !naive.contains(d)).collect();
                return Err(Divergence::DepGraphMismatch {
                    scheme: label,
                    region,
                    detail: format!(
                        "{} edges missing from fast path {missing:?}, {} extra {extra:?}",
                        missing.len(),
                        extra.len()
                    ),
                });
            }

            if let Some(alloc) = &trace.allocation {
                // Layer 2: symbolic replay of the allocation.
                if let Err(e) =
                    validate_allocation(&trace.spec, &trace.deps, &trace.mem_schedule, alloc)
                {
                    return Err(Divergence::ValidatorReject {
                        scheme: label,
                        region,
                        detail: e.diagnostic(region).to_json(),
                    });
                }
                report.allocations_validated += 1;

                // Layer 4b: check_first vs full-scan check, replaying the
                // allocated alias code on a live queue.
                queue_differential(alloc, label, region)?;
            }

            // Layer 3: the independent static verifier. Fed the original
            // region, not the production dependence analysis, so it also
            // catches consistent-but-wrong analyses — with no execution.
            let diags = smarq_verify::verify_trace(region, &trace, opt.num_alias_regs);
            if let Some(d) = diags.iter().find(|d| d.severity == smarq::Severity::Error) {
                return Err(Divergence::StaticVerify {
                    scheme: label,
                    region,
                    detail: d.to_json(),
                });
            }
            report.regions_verified += 1;
            report.regions_checked += 1;
        }

        // Layer 5: whole-chain analysis over the regions exactly as the
        // system cached them (entry assumptions, write masks, links). The
        // link-time incremental checks already ran during execution; here
        // the full cross-region fixpoint is re-proven in one pass.
        if sys.stats().chain_errors != 0 {
            // `verify_diagnostics` mixes emission and chain findings; pick
            // the first one carrying a chain-layer code.
            let detail = sys
                .stats()
                .verify_diagnostics
                .iter()
                .find(|j| j.contains("\"chain-") || j.contains("\"nospec-speculation\""))
                .cloned()
                .unwrap_or_else(|| "link-time chain check failed".to_string());
            return Err(Divergence::ChainVerify {
                scheme: label,
                detail,
            });
        }
        if let Some(chain) = sys.analyze_chain() {
            if !chain.converged {
                return Err(Divergence::ChainVerify {
                    scheme: label,
                    detail: format!(
                        "chain fixpoint did not converge after {} iterations",
                        chain.iterations
                    ),
                });
            }
            if let Some(d) = chain
                .diagnostics
                .iter()
                .find(|d| d.severity == smarq::Severity::Error)
            {
                return Err(Divergence::ChainVerify {
                    scheme: label,
                    detail: d.to_json(),
                });
            }
            report.chain_regions += chain.regions;
        }
    }
    Ok(report)
}

/// What a green multi-guest oracle run covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiGuestReport {
    /// Schemes executed end to end.
    pub schemes: usize,
    /// Guests in the shared-hub run (the distinct programs plus one
    /// duplicate of guest 0, which exercises cross-guest cache sharing).
    pub guests: usize,
    /// Schemes on which the translate-once counter check was exact (it is
    /// only decidable for rollback-free runs: shared rollback budgets and
    /// the shared blacklist legitimately change which regions form).
    pub translate_once_checks: usize,
}

/// Multi-guest differential oracle: runs `programs` (each as its own
/// guest, plus a duplicate of `programs[0]` to exercise cross-guest cache
/// sharing) through one shared [`TranslationHub`] under a seeded
/// interleaved schedule, and cross-checks every guest against the same
/// program run alone.
///
/// Translation is inline (`workers = 0`), so the whole run — publishes,
/// withdrawals, deopts included — is a pure function of `seed`; a
/// divergence replays from the seed and the generating seeds alone. The
/// oracle checks, per scheme:
///
/// * every guest's final architectural state is bit-exact vs. a pure
///   interpreter run of its program;
/// * the hub's publish ledger balances and nothing is left in flight;
/// * on rollback-free runs, the shared cache translated each unique
///   region exactly once across guests (the solo runs' claim counts,
///   with the duplicate guest counted once);
/// * re-running the same seed reproduces identical per-guest states and
///   an identical hub counter trajectory.
///
/// # Errors
/// [`Divergence::Nontermination`] if any reference run exhausts its
/// budget (a skip), otherwise the first [`Divergence::MultiGuestMismatch`]
/// found.
pub fn check_multi_guest(
    programs: &[Program],
    params: &OracleParams,
    seed: u64,
) -> Result<MultiGuestReport, Divergence> {
    let mut refs = Vec::with_capacity(programs.len());
    for p in programs {
        let mut reference = Interpreter::new();
        if reference.run(p, params.interp_budget) == RunOutcome::BudgetExhausted {
            return Err(Divergence::Nontermination);
        }
        refs.push(reference.arch_state());
    }
    // The references halted within `interp_budget`; 4x headroom means a
    // guest that fails to halt is a real lost-progress bug, not a budget
    // artifact.
    let budget = params.interp_budget.saturating_mul(4);

    let mut report = MultiGuestReport::default();
    for (label, opt) in schemes() {
        let mut cfg = SystemConfig::with_opt(opt.clone());
        cfg.hot_threshold = params.hot_threshold;
        cfg.unroll_factor = params.unroll_factor;
        let mut hub_cfg = HubConfig::from_system(&cfg);
        hub_cfg.workers = 0; // inline translation: deterministic in `seed`
        let err = |detail: String| Divergence::MultiGuestMismatch {
            scheme: label,
            seed,
            detail,
        };

        // Solo baselines: each program alone through a private hub.
        let mut solo_started = 0u64;
        let mut solo_rollbacks = 0u64;
        for (i, p) in programs.iter().enumerate() {
            let hub = TranslationHub::new(hub_cfg.clone());
            let mut g = GuestContext::new(i, p.clone(), &hub);
            g.run_to_completion(&hub, budget);
            if !g.halted() {
                return Err(err(format!("solo guest {i} did not halt within budget")));
            }
            if g.interp().arch_state() != refs[i] {
                return Err(err(format!(
                    "solo guest {i}: {}",
                    arch_diff(&refs[i], &g.interp().arch_state())
                )));
            }
            let s = hub.stats();
            solo_started += s.translations_started;
            solo_rollbacks += s.rollbacks;
        }

        // The shared run, twice with the same seed: once for the
        // differential, once for replayability.
        let run = |run_seed: u64| {
            let hub = TranslationHub::new(hub_cfg.clone());
            let mut guests: Vec<GuestContext> = programs
                .iter()
                .chain(std::iter::once(&programs[0]))
                .enumerate()
                .map(|(i, p)| GuestContext::new(i, p.clone(), &hub))
                .collect();
            run_multi_interleaved(&hub, &mut guests, run_seed, budget);
            let states: Vec<ArchState> = guests.iter().map(|g| g.interp().arch_state()).collect();
            let halted = guests.iter().all(GuestContext::halted);
            hub.drain();
            (states, halted, hub.stats())
        };
        let (states, halted, stats) = run(seed);
        if !halted {
            return Err(err("a shared-hub guest did not halt within budget".into()));
        }
        for (i, got) in states.iter().enumerate() {
            // Guests are programs[0..n] followed by programs[0] again.
            let expect = if i < programs.len() {
                &refs[i]
            } else {
                &refs[0]
            };
            if got != expect {
                return Err(err(format!("guest {i}: {}", arch_diff(expect, got))));
            }
        }
        if stats.inflight_keys != 0
            || stats.translations_started + stats.retranslations
                != stats.translations_published + stats.publish_conflicts
            || stats.published_keys + stats.abandoned_keys != stats.translations_started
        {
            return Err(err(format!("publish ledger does not balance: {stats:?}")));
        }
        // Translate-once is only exact without rollbacks: shared rollback
        // budgets and the shared blacklist legitimately reshape regions.
        if solo_rollbacks == 0 && stats.rollbacks == 0 {
            if stats.translations_started != solo_started {
                return Err(err(format!(
                    "translate-once violated: shared hub claimed {} translations, \
                     solo runs claimed {solo_started}",
                    stats.translations_started
                )));
            }
            report.translate_once_checks += 1;
        }
        let (states2, _, stats2) = run(seed);
        if states2 != states || stats2 != stats {
            return Err(err(
                "same seed did not replay the same states and counters".into()
            ));
        }
        report.schemes += 1;
        report.guests = programs.len() + 1;
    }
    Ok(report)
}

/// Replays `alloc`'s alias code on an [`AliasQueue`] and compares the
/// bitmask fast path against the full scan at every C-bit instruction.
fn queue_differential(
    alloc: &smarq::Allocation,
    scheme: &'static str,
    region: usize,
) -> Result<(), Divergence> {
    let num_regs = alloc.working_set().max(1);
    let mut queue: AliasQueue<MemOpId> = AliasQueue::new(num_regs);
    let err = |detail: String| Divergence::QueueMismatch {
        scheme,
        region,
        detail,
    };
    for code in alloc.code() {
        match *code {
            AliasCode::Op {
                id,
                p_bit,
                c_bit,
                offset,
            } => {
                let Some(offset) = offset else { continue };
                // The allocator does not record load/store kinds in the
                // code stream; exercising both polarities subsumes the
                // real one and doubles the differential coverage.
                for is_load in [false, true] {
                    if c_bit {
                        let full = queue
                            .check(offset.value(), is_load, |_| true)
                            .map_err(|e| err(format!("full scan overflowed at {}", e.offset)))?;
                        let first = queue
                            .check_first(offset.value(), is_load, |_| true)
                            .map_err(|e| err(format!("fast scan overflowed at {}", e.offset)))?;
                        if first != full.first().copied() {
                            return Err(err(format!(
                                "op {id:?} from offset {}: check_first={first:?} \
                                 but full scan starts {:?}",
                                offset.value(),
                                full.first()
                            )));
                        }
                    }
                }
                if p_bit {
                    queue
                        .set(offset.value(), id, false)
                        .map_err(|e| err(format!("set overflowed at {}", e.offset)))?;
                }
            }
            AliasCode::Amov(amov) => {
                queue
                    .amov(amov.src_offset.value(), amov.dst_offset.value())
                    .map_err(|e| err(format!("amov overflowed at {}", e.offset)))?;
            }
            AliasCode::Rotate(r) => {
                queue
                    .rotate(r.amount)
                    .map_err(|e| err(format!("rotate overflowed at {}", e.offset)))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzParams};

    #[test]
    fn clean_code_passes_all_layers() {
        let p = generate(1, &FuzzParams::default());
        let report = check_program(&p, &OracleParams::default()).expect("no divergence");
        assert_eq!(report.schemes, 6);
        assert_eq!(report.dispatch_differentials, 6);
        assert_eq!(report.tier_differentials, 6);
        assert_eq!(report.async_differentials, 6);
        assert!(report.regions_checked > 0, "no regions formed");
        assert!(report.allocations_validated > 0, "no allocations replayed");
        assert!(
            report.regions_verified > 0,
            "no regions statically verified"
        );
        assert!(
            report.chain_regions > 0,
            "no regions covered by whole-chain analysis"
        );
    }

    #[test]
    fn multi_guest_clean_set_passes() {
        let programs: Vec<_> = (10..13)
            .map(|s| generate(s, &FuzzParams::default()))
            .collect();
        let report = check_multi_guest(&programs, &OracleParams::default(), 0x5eed)
            .expect("no multi-guest divergence");
        assert_eq!(report.schemes, 6);
        assert_eq!(report.guests, 4, "three distinct programs + one duplicate");
    }

    #[test]
    fn multi_guest_nontermination_is_a_skip() {
        let programs: Vec<_> = (10..12)
            .map(|s| generate(s, &FuzzParams::default()))
            .collect();
        let d = check_multi_guest(
            &programs,
            &OracleParams {
                interp_budget: 3,
                ..OracleParams::default()
            },
            0x5eed,
        )
        .unwrap_err();
        assert!(!d.is_failure());
    }

    #[test]
    fn nontermination_is_reported_as_skip() {
        // Trip count 1 loop but with a tiny budget: the reference cannot
        // finish, so the oracle must skip rather than fail.
        let p = generate(2, &FuzzParams::default());
        let d = check_program(
            &p,
            &OracleParams {
                interp_budget: 3,
                ..OracleParams::default()
            },
        )
        .unwrap_err();
        assert!(!d.is_failure());
        assert_eq!(d.kind(), "nontermination");
    }
}
