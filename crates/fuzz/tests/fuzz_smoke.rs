//! Clean-oracle smoke sweep: a deterministic slice of the fuzz campaign
//! runs in every `cargo test`, scaled by `SMARQ_TEST_SCALE` for soak
//! runs.

use smarq_fuzz::{check_program, generate, Divergence, FuzzParams, OracleParams};
use smarq_workloads::scaled_count;

#[test]
fn seeded_sweep_stays_green() {
    let cases = scaled_count(24);
    let params = FuzzParams::default();
    let oracle = OracleParams::default();
    let mut skipped = 0;
    for seed in 0..cases {
        match check_program(&generate(seed, &params), &oracle) {
            Ok(report) => assert_eq!(report.schemes, 6),
            Err(Divergence::Nontermination) => skipped += 1,
            Err(d) => panic!("seed {seed}: {d}"),
        }
    }
    assert!(
        skipped * 2 < cases,
        "generator wastes the budget: {skipped}/{cases} nonterminating"
    );
}

#[test]
fn stress_shapes_stay_green() {
    // Tight pools + small register files are the AMOV/overflow stress
    // corner; keep a couple of bigger bodies in every run.
    let params = FuzzParams {
        max_body_ops: 48,
        max_iters: 64,
        max_pool: 2,
    };
    let oracle = OracleParams::default();
    for seed in 1000..1000 + scaled_count(6) {
        match check_program(&generate(seed, &params), &oracle) {
            Ok(_) | Err(Divergence::Nontermination) => {}
            Err(d) => panic!("seed {seed}: {d}"),
        }
    }
}
