//! Mutation sanity: prove the oracles can actually catch a bug.
//!
//! `smarq::fault::set_drop_plain_deps(true)` weakens the constraint
//! analysis — the sealed fast path of `DepGraph::compute` silently drops
//! a deterministic subset of plain dependence edges, exactly a
//! missed-may-alias bug. The fuzzer must (1) find a divergence, (2)
//! delta-debug it to a small repro, and (3) see the repro go green again
//! once the fault is removed.
//!
//! `smarq::fault::set_drop_anti(true)` injects the complementary bug:
//! the allocator skips §4.2 anti-constraint handling entirely. That one
//! is *invisible* to end-to-end oracles — false-positive alias checks
//! roll back and re-execute correctly, they just waste cycles — so the
//! tests below prove the **static validator alone** (`crates/verify`, no
//! execution of any kind) flags both injected faults.
//!
//! Two further faults target the *chain* layer: `set_drop_boundary`
//! (the region write mask forgets a written register) and
//! `set_widen_range` (the runtime's dataflow keeps unsoundly narrow
//! entry ranges). Both are invisible to execution oracles *and* to the
//! per-region validator — the whole-chain analyzer alone must flag them.
//!
//! The fault switches are process-wide, which is why this lives in its
//! own integration-test binary: cargo gives it a dedicated process, so
//! enabling a fault cannot race with unrelated tests. Within the binary,
//! `FAULT_LOCK` serializes the tests against each other.

use smarq::{allocate, DepGraph, MemKind, MemOpId, RegionSpec};
use smarq_fuzz::{check_program, run_campaign, CampaignParams, OracleParams};
use smarq_guest::{AluOp, CmpOp, Program, ProgramBuilder, Reg};
use smarq_runtime::{DynOptSystem, StopReason, SystemConfig};
use std::sync::Mutex;

/// Serializes every test that flips a process-wide fault switch.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn weakened_dependence_rule_is_caught_and_minimized() {
    let _guard = fault_lock();
    smarq::fault::set_drop_plain_deps(true);
    let params = CampaignParams {
        seed: 0,
        cases: 200,
        budget: None,
        max_repros: 1,
        minimize_attempts: 400,
        ..CampaignParams::default()
    };
    let outcome = run_campaign(&params, |_| {});
    smarq::fault::set_drop_plain_deps(false);

    assert!(
        !outcome.repros.is_empty(),
        "oracles failed to catch the injected constraint weakening in {} cases",
        outcome.cases_run
    );
    let repro = &outcome.repros[0];
    assert!(
        repro.program.static_instrs() <= 12,
        "minimization stalled at {} ops (from {}):\n{}",
        repro.program.static_instrs(),
        repro.original_ops,
        repro.render()
    );
    assert!(
        repro.program.static_instrs() < repro.original_ops,
        "minimizer made no progress"
    );

    // On unmodified code the minimized repro must replay green.
    check_program(&repro.program, &OracleParams::default())
        .expect("repro diverges only under the injected fault");
}

/// The paper's Figure 2 region: schedule `[m3, m1, m2, m0]` hoists both
/// loads above the stores they may alias.
fn figure2() -> (RegionSpec, Vec<MemOpId>) {
    let mut r = RegionSpec::new();
    let m0 = r.push(MemKind::Store, 0);
    let m1 = r.push(MemKind::Load, 1);
    let m2 = r.push(MemKind::Store, 2);
    let m3 = r.push(MemKind::Load, 3);
    r.set_may_alias(m1, m2, true);
    r.set_may_alias(m3, m0, true);
    r.set_may_alias(m3, m2, true);
    (r, vec![m3, m1, m2, m0])
}

/// Region whose check/anti edges form a cycle the allocator must break
/// with a moving AMOV (mirrors `smarq::alloc`'s `cycle_region` fixture).
/// Dropping anti handling leaves the producer's entry live inside a
/// checker's scan window — a false-positive the validator must prove.
fn cycle_region() -> (RegionSpec, Vec<MemOpId>) {
    let mut r = RegionSpec::new();
    let c1 = r.push(MemKind::Store, 0);
    let s = r.push(MemKind::Store, 1);
    let x = r.push(MemKind::Load, 3);
    let v = r.push(MemKind::Store, 4);
    let z2 = r.push(MemKind::Load, 3);
    let y = r.push(MemKind::Store, 5);
    let z1 = r.push(MemKind::Load, 0);
    r.set_may_alias(c1, x, true);
    r.set_may_alias(s, x, true);
    r.set_may_alias(x, v, true);
    r.set_may_alias(v, z2, true);
    r.set_may_alias(y, c1, true);
    r.set_may_alias(y, z1, true);
    r.set_may_alias(x, y, true);
    r.set_may_alias(s, z2, false);
    r.set_may_alias(c1, z2, false);
    r.set_may_alias(y, z2, false);
    r.add_load_elim(x, z2);
    r.add_load_elim(c1, z1);
    (r, vec![c1, v, x, s, y])
}

/// The static validator alone — no interpreter, no VLIW simulator, no
/// differential execution — catches the dropped-dependence fault: the
/// faulted analysis omits the `m0 -> m3` plain dependence, the faulted
/// allocation omits its check, and the independently derived facts prove
/// the check is required.
#[test]
fn static_validator_catches_dropped_plain_deps() {
    let _guard = fault_lock();
    let (r, sched) = figure2();

    smarq::fault::set_drop_plain_deps(true);
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).expect("fault only weakens, never breaks, alloc");
    smarq::fault::set_drop_plain_deps(false);

    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "missing-check" && d.witness.as_deref() == Some("M0 ->check M3")),
        "static validator missed the dropped dependence: {diags:?}"
    );

    // Same region without the fault: proven correct.
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(smarq_verify::is_clean(&diags), "got: {diags:?}");
}

/// Rollback-free counted loop: the store (0x2000) and the load (0x1000)
/// never truly alias, so the hoisted load's protection never fires — the
/// write mask is only ever *saved*, never *restored*, and the dropped
/// bit is invisible to every execution oracle.
fn hoistable_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x2000);
    b.jump(entry, body);
    b.st(body, Reg(1), Reg(5), 0);
    b.ld(body, Reg(4), Reg(3), 0);
    b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
    b.st(body, Reg(4), Reg(3), 0);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

/// Loop whose store pointer strides by 8 every iteration: the whole-
/// program dataflow must widen the pointer's interval at the loop head,
/// which is exactly the step `SMARQ_FAULT_WIDEN_RANGE` sabotages.
fn striding_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x8000);
    b.jump(entry, body);
    b.st(body, Reg(1), Reg(3), 0);
    b.ld(body, Reg(4), Reg(5), 0);
    b.alu_imm(body, AluOp::Add, Reg(3), Reg(3), 8);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

fn verify_cfg() -> SystemConfig {
    let mut cfg = SystemConfig {
        hot_threshold: 10,
        ..SystemConfig::default()
    };
    cfg.verify_translations = true;
    cfg
}

fn run_verified(p: &Program) -> DynOptSystem {
    let mut sys = DynOptSystem::new(p.clone(), verify_cfg());
    assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
    sys
}

/// `SMARQ_FAULT_DROP_BOUNDARY` makes [`smarq_vliw::RegionWriteMask::of`]
/// forget one written integer register — a broken chain-boundary
/// obligation (a chained rollback would restore stale state). On a
/// rollback-free program no execution path ever consults the mask, and
/// the per-region validator never sees it (the mask is a runtime
/// artifact, not region code): the **chain analyzer alone** flags it.
#[test]
fn chain_analyzer_alone_catches_dropped_write_mask_bit() {
    let _guard = fault_lock();
    let p = hoistable_loop(200);

    smarq::fault::set_drop_boundary(true);
    let sys = run_verified(&p);
    smarq::fault::set_drop_boundary(false);

    // Invisible to execution: bit-exact vs pure interpretation, and the
    // mask was never consulted for a restore.
    let mut reference = smarq_guest::Interpreter::new();
    reference.run(&p, u64::MAX);
    assert_eq!(sys.interp().arch_state(), reference.arch_state());
    assert_eq!(sys.stats().rollbacks, 0);
    // Invisible to the per-region validator and lint passes.
    assert_eq!(sys.stats().verify_errors, 0);
    // The chain analyzer catches it — both at link time...
    let s = sys.stats();
    assert!(s.chain_checks > 0, "self-loop region must chain-check");
    assert!(s.chain_errors > 0, "link-time chain check missed the gap");
    // ...and in the whole-chain report, as the right code.
    let report = sys.analyze_chain().expect("verify mode keeps traces");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "chain-writemask-gap" && d.severity == smarq::Severity::Error),
        "{:?}",
        report.diagnostics
    );

    // Same program without the fault: proven correct.
    let clean = run_verified(&p);
    assert_eq!(clean.stats().chain_errors, 0);
    let report = clean.analyze_chain().unwrap();
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code == "chain-writemask-gap"),
        "{:?}",
        report.diagnostics
    );
}

/// `SMARQ_FAULT_WIDEN_RANGE` makes the runtime's whole-program dataflow
/// skip widening — the optimizer's entry-range assumption for the loop
/// head stays unsoundly narrow while the chain actually delivers an
/// ever-growing pointer. Execution is untouched (the entry state only
/// feeds the nospec taint, and none is configured), the per-region
/// validator holds no cross-region facts to object with — only the chain
/// analyzer's never-faulted reference fixpoint exposes the lie.
#[test]
fn chain_analyzer_alone_catches_unsound_range_widening() {
    let _guard = fault_lock();
    let p = striding_loop(200);

    smarq::fault::set_widen_range(true);
    let sys = run_verified(&p);
    smarq::fault::set_widen_range(false);

    let mut reference = smarq_guest::Interpreter::new();
    reference.run(&p, u64::MAX);
    assert_eq!(sys.interp().arch_state(), reference.arch_state());
    assert_eq!(sys.stats().verify_errors, 0);
    let s = sys.stats();
    assert!(s.chain_checks > 0);
    assert!(s.chain_errors > 0, "link-time chain check missed the gap");
    let report = sys.analyze_chain().expect("verify mode keeps traces");
    assert!(
        report.diagnostics.iter().any(|d| {
            d.code == "chain-entry-state"
                && d.severity == smarq::Severity::Error
                && d.message.contains("r3")
        }),
        "{:?}",
        report.diagnostics
    );

    // Same program without the fault: the assumption is sound again.
    let clean = run_verified(&p);
    assert_eq!(clean.stats().chain_errors, 0);
    let report = clean.analyze_chain().unwrap();
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code == "chain-entry-state"),
        "{:?}",
        report.diagnostics
    );
}

/// The static validator alone catches the dropped-anti fault, which NO
/// execution-based oracle can: a violated anti-constraint only fires
/// spurious alias exceptions, and rollback re-executes correctly. With
/// §4.2 skipped the allocator leaves a producer's entry live inside a
/// checker's scan window; the symbolic replay proves the false positive
/// and the order-rule audit flags the inverted register order.
#[test]
fn static_validator_catches_dropped_anti_constraints() {
    let _guard = fault_lock();
    let (r, sched) = cycle_region();

    smarq::fault::set_drop_anti(true);
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).expect("fault only weakens, never breaks, alloc");
    smarq::fault::set_drop_anti(false);

    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(
        diags.iter().any(|d| d.code == "false-positive"),
        "symbolic replay missed the unenforced anti-constraint: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.code == "order-rule"),
        "order audit missed the inverted producer/checker order: {diags:?}"
    );

    // Same region without the fault: proven correct.
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(smarq_verify::is_clean(&diags), "got: {diags:?}");
}
