//! Mutation sanity: prove the oracles can actually catch a bug.
//!
//! `smarq::fault::set_drop_plain_deps(true)` weakens the constraint
//! analysis — the sealed fast path of `DepGraph::compute` silently drops
//! a deterministic subset of plain dependence edges, exactly a
//! missed-may-alias bug. The fuzzer must (1) find a divergence, (2)
//! delta-debug it to a small repro, and (3) see the repro go green again
//! once the fault is removed.
//!
//! The fault switch is process-wide, which is why this lives in its own
//! integration-test binary: cargo gives it a dedicated process, so
//! enabling the fault cannot race with unrelated tests.

use smarq_fuzz::{check_program, run_campaign, CampaignParams, OracleParams};

#[test]
fn weakened_dependence_rule_is_caught_and_minimized() {
    smarq::fault::set_drop_plain_deps(true);
    let params = CampaignParams {
        seed: 0,
        cases: 200,
        budget: None,
        max_repros: 1,
        minimize_attempts: 400,
        ..CampaignParams::default()
    };
    let outcome = run_campaign(&params, |_| {});
    smarq::fault::set_drop_plain_deps(false);

    assert!(
        !outcome.repros.is_empty(),
        "oracles failed to catch the injected constraint weakening in {} cases",
        outcome.cases_run
    );
    let repro = &outcome.repros[0];
    assert!(
        repro.program.static_instrs() <= 12,
        "minimization stalled at {} ops (from {}):\n{}",
        repro.program.static_instrs(),
        repro.original_ops,
        repro.render()
    );
    assert!(
        repro.program.static_instrs() < repro.original_ops,
        "minimizer made no progress"
    );

    // On unmodified code the minimized repro must replay green.
    check_program(&repro.program, &OracleParams::default())
        .expect("repro diverges only under the injected fault");
}
