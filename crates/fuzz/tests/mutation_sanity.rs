//! Mutation sanity: prove the oracles can actually catch a bug.
//!
//! `smarq::fault::set_drop_plain_deps(true)` weakens the constraint
//! analysis — the sealed fast path of `DepGraph::compute` silently drops
//! a deterministic subset of plain dependence edges, exactly a
//! missed-may-alias bug. The fuzzer must (1) find a divergence, (2)
//! delta-debug it to a small repro, and (3) see the repro go green again
//! once the fault is removed.
//!
//! `smarq::fault::set_drop_anti(true)` injects the complementary bug:
//! the allocator skips §4.2 anti-constraint handling entirely. That one
//! is *invisible* to end-to-end oracles — false-positive alias checks
//! roll back and re-execute correctly, they just waste cycles — so the
//! tests below prove the **static validator alone** (`crates/verify`, no
//! execution of any kind) flags both injected faults.
//!
//! The fault switches are process-wide, which is why this lives in its
//! own integration-test binary: cargo gives it a dedicated process, so
//! enabling a fault cannot race with unrelated tests. Within the binary,
//! `FAULT_LOCK` serializes the tests against each other.

use smarq::{allocate, DepGraph, MemKind, MemOpId, RegionSpec};
use smarq_fuzz::{check_program, run_campaign, CampaignParams, OracleParams};
use std::sync::Mutex;

/// Serializes every test that flips a process-wide fault switch.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn weakened_dependence_rule_is_caught_and_minimized() {
    let _guard = fault_lock();
    smarq::fault::set_drop_plain_deps(true);
    let params = CampaignParams {
        seed: 0,
        cases: 200,
        budget: None,
        max_repros: 1,
        minimize_attempts: 400,
        ..CampaignParams::default()
    };
    let outcome = run_campaign(&params, |_| {});
    smarq::fault::set_drop_plain_deps(false);

    assert!(
        !outcome.repros.is_empty(),
        "oracles failed to catch the injected constraint weakening in {} cases",
        outcome.cases_run
    );
    let repro = &outcome.repros[0];
    assert!(
        repro.program.static_instrs() <= 12,
        "minimization stalled at {} ops (from {}):\n{}",
        repro.program.static_instrs(),
        repro.original_ops,
        repro.render()
    );
    assert!(
        repro.program.static_instrs() < repro.original_ops,
        "minimizer made no progress"
    );

    // On unmodified code the minimized repro must replay green.
    check_program(&repro.program, &OracleParams::default())
        .expect("repro diverges only under the injected fault");
}

/// The paper's Figure 2 region: schedule `[m3, m1, m2, m0]` hoists both
/// loads above the stores they may alias.
fn figure2() -> (RegionSpec, Vec<MemOpId>) {
    let mut r = RegionSpec::new();
    let m0 = r.push(MemKind::Store, 0);
    let m1 = r.push(MemKind::Load, 1);
    let m2 = r.push(MemKind::Store, 2);
    let m3 = r.push(MemKind::Load, 3);
    r.set_may_alias(m1, m2, true);
    r.set_may_alias(m3, m0, true);
    r.set_may_alias(m3, m2, true);
    (r, vec![m3, m1, m2, m0])
}

/// Region whose check/anti edges form a cycle the allocator must break
/// with a moving AMOV (mirrors `smarq::alloc`'s `cycle_region` fixture).
/// Dropping anti handling leaves the producer's entry live inside a
/// checker's scan window — a false-positive the validator must prove.
fn cycle_region() -> (RegionSpec, Vec<MemOpId>) {
    let mut r = RegionSpec::new();
    let c1 = r.push(MemKind::Store, 0);
    let s = r.push(MemKind::Store, 1);
    let x = r.push(MemKind::Load, 3);
    let v = r.push(MemKind::Store, 4);
    let z2 = r.push(MemKind::Load, 3);
    let y = r.push(MemKind::Store, 5);
    let z1 = r.push(MemKind::Load, 0);
    r.set_may_alias(c1, x, true);
    r.set_may_alias(s, x, true);
    r.set_may_alias(x, v, true);
    r.set_may_alias(v, z2, true);
    r.set_may_alias(y, c1, true);
    r.set_may_alias(y, z1, true);
    r.set_may_alias(x, y, true);
    r.set_may_alias(s, z2, false);
    r.set_may_alias(c1, z2, false);
    r.set_may_alias(y, z2, false);
    r.add_load_elim(x, z2);
    r.add_load_elim(c1, z1);
    (r, vec![c1, v, x, s, y])
}

/// The static validator alone — no interpreter, no VLIW simulator, no
/// differential execution — catches the dropped-dependence fault: the
/// faulted analysis omits the `m0 -> m3` plain dependence, the faulted
/// allocation omits its check, and the independently derived facts prove
/// the check is required.
#[test]
fn static_validator_catches_dropped_plain_deps() {
    let _guard = fault_lock();
    let (r, sched) = figure2();

    smarq::fault::set_drop_plain_deps(true);
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).expect("fault only weakens, never breaks, alloc");
    smarq::fault::set_drop_plain_deps(false);

    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "missing-check" && d.witness.as_deref() == Some("M0 ->check M3")),
        "static validator missed the dropped dependence: {diags:?}"
    );

    // Same region without the fault: proven correct.
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(smarq_verify::is_clean(&diags), "got: {diags:?}");
}

/// The static validator alone catches the dropped-anti fault, which NO
/// execution-based oracle can: a violated anti-constraint only fires
/// spurious alias exceptions, and rollback re-executes correctly. With
/// §4.2 skipped the allocator leaves a producer's entry live inside a
/// checker's scan window; the symbolic replay proves the false positive
/// and the order-rule audit flags the inverted register order.
#[test]
fn static_validator_catches_dropped_anti_constraints() {
    let _guard = fault_lock();
    let (r, sched) = cycle_region();

    smarq::fault::set_drop_anti(true);
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).expect("fault only weakens, never breaks, alloc");
    smarq::fault::set_drop_anti(false);

    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(
        diags.iter().any(|d| d.code == "false-positive"),
        "symbolic replay missed the unenforced anti-constraint: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.code == "order-rule"),
        "order audit missed the inverted producer/checker order: {diags:?}"
    );

    // Same region without the fault: proven correct.
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let diags = smarq_verify::verify_region(0, &r, &sched, &alloc);
    assert!(smarq_verify::is_clean(&diags), "got: {diags:?}");
}
