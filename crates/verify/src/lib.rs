//! Static translation validator and lint framework for SMARQ-optimized
//! regions.
//!
//! This crate is an execution-free proof layer over the optimizer's
//! output. For every scheduled region it:
//!
//! 1. **re-derives** the required check/anti-constraint sets from the
//!    original superblock's memory dependences ([`facts`]) — a deliberate
//!    from-first-principles second implementation of the paper's §4
//!    analysis sharing no derivation code with `smarq::constraints`;
//! 2. **proves** by symbolic dataflow over the alias-register queue state
//!    ([`replay`]) that the emitted code performs every required check and
//!    can never raise a false-positive alias exception;
//! 3. **lints** the region ([`lint`]) for waste and risk: redundant
//!    checks, dead `AMOV`s, overflow-prone working sets and structurally
//!    unprotected speculation.
//!
//! All findings are [`smarq::Diagnostic`]s — structured, severity-graded
//! and JSON-serializable — so the same output feeds the `smarq lint` CLI,
//! the runtime's verify-on-emit mode, the fuzzer's oracle layer and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod dataflow;
pub mod facts;
pub mod lint;
pub mod registry;
pub mod replay;

pub use chain::{analyze_chain, ChainEdge, ChainRegionView, ChainReport};
pub use dataflow::{analyze, analyze_reference, ProgramDataflow};
pub use facts::RegionFacts;
pub use lint::{default_passes, run_passes, LintContext, LintPass};
pub use registry::{is_known, lookup, CodeInfo, CodeOrigin, LintPolicy, CODES, CODE_TABLE_VERSION};

use smarq::range::Interval;
use smarq::{Allocation, Diagnostic, MemOpId, RegionSpec, Severity};
use smarq_opt::OptTrace;

/// Statically validates one optimized region: derives the facts and runs
/// the symbolic replay. Returns every violation (empty = proven correct).
pub fn verify_region(
    region_id: usize,
    spec: &RegionSpec,
    schedule: &[MemOpId],
    alloc: &Allocation,
) -> Vec<Diagnostic> {
    let facts = RegionFacts::derive(spec, schedule);
    replay::replay(region_id, spec, alloc, &facts)
}

/// Runs the default lint passes over one optimized region. `num_regs` is
/// the hardware alias register count the region targets.
pub fn lint_region(
    region_id: usize,
    spec: &RegionSpec,
    schedule: &[MemOpId],
    alloc: &Allocation,
    num_regs: u32,
) -> Vec<Diagnostic> {
    let facts = RegionFacts::derive(spec, schedule);
    let cx = LintContext {
        region_id,
        spec,
        schedule,
        alloc,
        num_regs,
        facts: &facts,
        addr: None,
    };
    run_passes(&cx, &default_passes())
}

/// Validator + lints in one walk (the facts are derived once). This is
/// what `smarq lint` and the CI corpus job run per region.
pub fn check_region(
    region_id: usize,
    spec: &RegionSpec,
    schedule: &[MemOpId],
    alloc: &Allocation,
    num_regs: u32,
) -> Vec<Diagnostic> {
    check_region_ranged(region_id, spec, schedule, alloc, num_regs, None)
}

/// [`check_region`] with optional derived access-address intervals per
/// [`MemOpId`] (from the range analysis); range-aware lint passes refine
/// their severities with them.
pub fn check_region_ranged(
    region_id: usize,
    spec: &RegionSpec,
    schedule: &[MemOpId],
    alloc: &Allocation,
    num_regs: u32,
    addr: Option<&[Interval]>,
) -> Vec<Diagnostic> {
    let facts = RegionFacts::derive(spec, schedule);
    let mut out = replay::replay(region_id, spec, alloc, &facts);
    let cx = LintContext {
        region_id,
        spec,
        schedule,
        alloc,
        num_regs,
        facts: &facts,
        addr,
    };
    out.extend(run_passes(&cx, &default_passes()));
    out
}

/// [`verify_region`] over an optimizer trace. Regions optimized for
/// hardware without alias registers carry no allocation and verify
/// vacuously (there is no speculation to protect).
pub fn verify_trace(region_id: usize, trace: &OptTrace, _num_regs: u32) -> Vec<Diagnostic> {
    match &trace.allocation {
        Some(alloc) => verify_region(region_id, &trace.spec, &trace.mem_schedule, alloc),
        None => Vec::new(),
    }
}

/// [`check_region`] over an optimizer trace (validator + lints).
pub fn check_trace(region_id: usize, trace: &OptTrace, num_regs: u32) -> Vec<Diagnostic> {
    check_trace_ranged(region_id, trace, num_regs, None)
}

/// [`check_trace`] with the region's source superblock and its analyzed
/// entry state: per-op access-address intervals are derived from the
/// range analysis and fed to the range-aware lint passes, which use them
/// to refine severities (e.g. an unprotected pair whose addresses are
/// provably disjoint is a warning, not an error).
pub fn check_trace_ranged(
    region_id: usize,
    trace: &OptTrace,
    num_regs: u32,
    source: Option<(&smarq_ir::Superblock, &smarq::range::RegState)>,
) -> Vec<Diagnostic> {
    let Some(alloc) = &trace.allocation else {
        return Vec::new();
    };
    let addr: Option<Vec<Interval>> = source.map(|(sb, entry)| {
        let ranges = smarq_ir::analyze_superblock(sb, entry);
        (0..trace.spec.len())
            .map(|k| {
                trace
                    .mem_origin
                    .get(k)
                    .and_then(|&oi| ranges.addr.get(oi).copied().flatten())
                    .unwrap_or(Interval::TOP)
            })
            .collect()
    });
    check_region_ranged(
        region_id,
        &trace.spec,
        &trace.mem_schedule,
        alloc,
        num_regs,
        addr.as_deref(),
    )
}

/// `true` when `diags` contains no [`Severity::Error`] finding (warnings
/// and notes do not fail verification).
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity < Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq::{allocate, AliasCode, DepGraph, MemKind};

    fn figure2() -> (RegionSpec, Vec<MemOpId>) {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Load, 3);
        r.set_may_alias(m1, m2, true);
        r.set_may_alias(m3, m0, true);
        r.set_may_alias(m3, m2, true);
        (r, vec![m3, m1, m2, m0])
    }

    #[test]
    fn clean_allocation_verifies_and_lints_clean() {
        let (r, sched) = figure2();
        let deps = DepGraph::compute(&r);
        let alloc = allocate(&r, &deps, &sched, 64).unwrap();
        let diags = check_region(0, &r, &sched, &alloc, 64);
        assert!(
            is_clean(&diags),
            "expected clean, got: {:?}",
            diags.iter().map(|d| d.to_json()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stripped_c_bit_is_a_missing_check() {
        let (r, sched) = figure2();
        let deps = DepGraph::compute(&r);
        let alloc = allocate(&r, &deps, &sched, 64).unwrap();
        let m0 = MemOpId::new(0);
        // Strip m0's C bit from the code stream only: the symbolic replay
        // must notice m0 never examines m3's register.
        let code: Vec<AliasCode> = alloc
            .code()
            .iter()
            .map(|c| match *c {
                AliasCode::Op {
                    id, p_bit, offset, ..
                } if id == m0 => AliasCode::Op {
                    id,
                    p_bit,
                    c_bit: false,
                    offset,
                },
                other => other,
            })
            .collect();
        let per_op: Vec<_> = (0..r.len())
            .map(|i| alloc.op(MemOpId::new(i)).copied())
            .collect();
        let tampered = Allocation::from_parts(
            per_op,
            code,
            alloc.working_set(),
            alloc.stats(),
            alloc.final_checks().to_vec(),
        );
        let diags = verify_region(0, &r, &sched, &tampered);
        assert!(
            diags.iter().any(|d| d.code == "missing-check"
                && d.op == Some(m0)
                && d.witness.as_deref() == Some("M0 ->check M3")),
            "got: {diags:?}"
        );
    }

    #[test]
    fn facts_agree_with_production_constraint_analysis() {
        // The whole point of the second implementation: on real fixtures
        // the independent derivation must reproduce the production sets.
        use smarq::ConstraintGraph;
        let (r, sched) = figure2();
        let deps = DepGraph::compute(&r);
        let graph = ConstraintGraph::derive(&r, &deps, &sched);
        let facts = RegionFacts::derive(&r, &sched);
        let mut ours: Vec<_> = facts.required_checks().collect();
        let mut theirs: Vec<_> = graph.checks().map(|c| (c.src, c.dst)).collect();
        ours.sort();
        theirs.sort();
        assert_eq!(ours, theirs);
        let mut our_antis: Vec<_> = facts.anti_constraints().collect();
        let mut their_antis: Vec<_> = graph.antis().map(|c| (c.src, c.dst)).collect();
        our_antis.sort();
        their_antis.sort();
        assert_eq!(our_antis, their_antis);
    }

    #[test]
    fn trace_without_allocation_verifies_vacuously() {
        // ALAT / no-alias-hardware schemes never allocate; nothing to prove.
        let (r, sched) = figure2();
        let deps = DepGraph::compute(&r);
        let trace = OptTrace {
            spec: r,
            deps,
            mem_schedule: sched,
            allocation: None,
            mem_origin: Vec::new(),
        };
        assert!(verify_trace(0, &trace, 64).is_empty());
        assert!(check_trace(0, &trace, 64).is_empty());
    }
}
