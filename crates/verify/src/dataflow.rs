//! Whole-program interval dataflow over guest control-flow graphs.
//!
//! A classic worklist fixpoint over the abstract domain of
//! [`smarq::range`]: every block gets an entry [`RegState`] (one interval
//! per guest integer register), seeded from the interpreter's true start
//! state (all registers exactly zero) at the program entry and ⊥
//! everywhere else, and propagated through each block's straight-line
//! transfer to its terminator successors until nothing changes.
//!
//! Loops are handled by **widening**: after a block's entry state has
//! been joined [`WIDEN_AFTER`] times, further growth jumps the moving
//! bounds straight to ±∞ ([`smarq::range::widen_state`]), which bounds
//! the iteration count regardless of loop trip counts. A generous
//! iteration cap backstops the claim; [`ProgramDataflow::converged`]
//! reports whether the fixpoint was actually reached (it always is for
//! programs the widening argument covers — the cap exists so a bug here
//! degrades to imprecision, never to a hang).
//!
//! The result feeds two consumers:
//!
//! * the **runtime**, which hands each region's entry-block state to the
//!   optimizer so the unspeculatable-address-range taint
//!   ([`smarq_ir::nospec_taint`]) is range-precise instead of
//!   assume-the-worst;
//! * the **chain analyzer** ([`crate::chain`]), which seeds its
//!   cross-region fixpoint from these states and re-derives every taint
//!   decision independently.
//!
//! [`analyze`] honours the `SMARQ_FAULT_WIDEN_RANGE` mutation switch
//! (`smarq::fault`): at widening points the faulted analysis keeps the
//! old, unsoundly narrow state and pretends it converged — the planted
//! bug the chain analyzer's never-faulted [`analyze_reference`] twin must
//! flag in the mutation-sanity tests.

use smarq::range::{join_state, widen_state, zeroed_state, Interval, RegState};
use smarq_guest::{Block, BlockId, Instr, Program, Terminator};
use smarq_ir::apply_alu;
use std::collections::VecDeque;

/// Joins applied to a block's entry state before growth widens to ±∞.
pub const WIDEN_AFTER: usize = 8;

/// Result of the whole-program fixpoint: the abstract register state at
/// every block entry.
#[derive(Clone, Debug)]
pub struct ProgramDataflow {
    entry_states: Vec<RegState>,
    /// Block transfers performed before the fixpoint stabilized.
    pub iterations: usize,
    /// `false` only if the iteration cap fired before stabilization —
    /// the remaining states are still sound joins, just not provably
    /// maximal-fixpoint. Widening makes this unreachable in practice.
    pub converged: bool,
}

impl ProgramDataflow {
    /// The derived register state at `b`'s entry. Blocks the analysis
    /// proved unreachable keep the all-⊥ state.
    pub fn entry_state(&self, b: BlockId) -> &RegState {
        &self.entry_states[b.index()]
    }

    /// Entry states for every block, indexed by [`BlockId::index`].
    pub fn entry_states(&self) -> &[RegState] {
        &self.entry_states
    }
}

/// Runs the fixpoint, honouring the `SMARQ_FAULT_WIDEN_RANGE` mutation
/// switch (see module docs). This is what the runtime calls.
pub fn analyze(program: &Program) -> ProgramDataflow {
    run(program, smarq::fault::widen_range_enabled())
}

/// Runs the fixpoint with fault injection unconditionally disabled — the
/// chain analyzer's reference computation.
pub fn analyze_reference(program: &Program) -> ProgramDataflow {
    run(program, false)
}

/// Straight-line transfer of one block body (terminators read registers
/// but never write them). Mirrors `smarq_ir::range::analyze_superblock`'s
/// per-op transfer on the guest [`Instr`] level.
fn transfer_block(block: &Block, state: &mut RegState) {
    let r = |reg: smarq_guest::Reg| reg.0 as usize & 63;
    for i in &block.instrs {
        match *i {
            Instr::IConst { rd, value } => state[r(rd)] = Interval::exact(value),
            Instr::Alu { op, rd, ra, rb } => {
                state[r(rd)] = apply_alu(op, state[r(ra)], state[r(rb)]);
            }
            Instr::AluImm { op, rd, ra, imm } => {
                state[r(rd)] = apply_alu(op, state[r(ra)], Interval::exact(imm));
            }
            // Values entering the integer file from memory or the FP file
            // are unconstrained.
            Instr::Ld { rd, .. } | Instr::FtoI { rd, .. } => state[r(rd)] = Interval::TOP,
            Instr::FConst { .. }
            | Instr::Fpu { .. }
            | Instr::ItoF { .. }
            | Instr::St { .. }
            | Instr::FLd { .. }
            | Instr::FSt { .. } => {}
        }
    }
}

fn successors(term: &Terminator) -> impl Iterator<Item = BlockId> {
    let (a, b) = match *term {
        Terminator::Jump(t) => (Some(t), None),
        Terminator::Branch {
            taken, fallthrough, ..
        } => (Some(taken), Some(fallthrough)),
        Terminator::Halt => (None, None),
    };
    a.into_iter().chain(b)
}

fn run(program: &Program, faulted: bool) -> ProgramDataflow {
    let n = program.num_blocks();
    let mut entry_states = vec![[Interval::BOTTOM; 64]; n];
    entry_states[program.entry().index()] = zeroed_state();
    // Per-block join count, for the widening threshold.
    let mut joins = vec![0usize; n];
    let mut queued = vec![false; n];
    let mut work = VecDeque::with_capacity(n);
    work.push_back(program.entry());
    queued[program.entry().index()] = true;

    // Each changed join moves at least one interval bound strictly up the
    // lattice; per block that can happen at most WIDEN_AFTER times before
    // widening, and widening moves each of the 128 bounds at most once
    // more. The cap is that bound with headroom — hitting it means a bug
    // in the lattice, and the result degrades to "not converged".
    let cap = n.max(1) * 64 * (WIDEN_AFTER + 4);
    let mut iterations = 0usize;
    let mut converged = true;

    while let Some(b) = work.pop_front() {
        queued[b.index()] = false;
        iterations += 1;
        if iterations > cap {
            converged = false;
            break;
        }
        let mut out = entry_states[b.index()];
        let block = program.block(b);
        transfer_block(block, &mut out);
        for s in successors(&block.term) {
            let si = s.index();
            let changed = if joins[si] < WIDEN_AFTER {
                join_state(&mut entry_states[si], &out)
            } else if faulted {
                // Injected bug (SMARQ_FAULT_WIDEN_RANGE): skip the
                // widening, keep the narrow state, report convergence.
                false
            } else {
                widen_state(&mut entry_states[si], &out)
            };
            if changed {
                joins[si] += 1;
                if !queued[si] {
                    queued[si] = true;
                    work.push_back(s);
                }
            }
        }
    }

    ProgramDataflow {
        entry_states,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{AluOp, CmpOp, ProgramBuilder, Reg};

    /// entry: r1 = 0x1000; r2 = r1 + 8 → body: r3 = load; → done.
    fn straight_line() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0x1000);
        b.alu_imm(entry, AluOp::Add, Reg(2), Reg(1), 8);
        b.jump(entry, body);
        b.ld(body, Reg(3), Reg(2), 0);
        b.jump(body, done);
        b.halt(done);
        b.finish(entry)
    }

    /// A counted loop advancing a pointer by 8 every iteration.
    fn pointer_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0); // induction
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000); // pointer
        b.jump(entry, body);
        b.ld(body, Reg(4), Reg(3), 0);
        b.alu_imm(body, AluOp::Add, Reg(3), Reg(3), 8);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn straight_line_states_are_exact() {
        let p = straight_line();
        let df = analyze_reference(&p);
        assert!(df.converged);
        let body = df.entry_state(BlockId(1));
        assert_eq!(body[1], Interval::exact(0x1000));
        assert_eq!(body[2], Interval::exact(0x1008));
        // Never-written registers stay exactly zero (interpreter start).
        assert_eq!(body[9], Interval::exact(0));
        let done = df.entry_state(BlockId(2));
        assert!(done[3].is_top(), "loaded value is unconstrained");
    }

    #[test]
    fn loop_terminates_by_widening() {
        let p = pointer_loop(1_000_000);
        let df = analyze_reference(&p);
        assert!(df.converged);
        // Widening must have pushed the growing bounds to +∞ long before
        // a trip-count-proportional iteration count.
        assert!(df.iterations < 200, "iterations = {}", df.iterations);
        let body = df.entry_state(BlockId(1));
        // The growing bound is widened to +∞; the add's corner then
        // overflows i64 (guest ALUs wrap), so the transfer soundly
        // collapses the pointer to ⊤ — every address it really reaches
        // is contained either way.
        assert_eq!(body[3].hi, i64::MAX, "widened growing bound");
        assert!(body[3].contains(0x1000 + 8 * 999_999));
        assert_eq!(body[1].hi, i64::MAX, "widened induction bound");
    }

    #[test]
    fn unreachable_blocks_stay_bottom() {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let orphan = b.block();
        b.halt(entry);
        b.iconst(orphan, Reg(1), 5);
        b.halt(orphan);
        let p = b.finish(entry);
        let df = analyze_reference(&p);
        assert!(df.entry_state(BlockId(1)).iter().all(|iv| iv.is_bottom()));
    }

    #[test]
    fn faulted_run_is_unsoundly_narrow_but_claims_convergence() {
        // The WIDEN_RANGE fault keeps pre-widening states: the pointer's
        // derived range stops a few joins past 0x1000 instead of reaching
        // +∞ — exactly the kind of miss that lets the optimizer speculate
        // across a nospec range the pointer really reaches.
        let p = pointer_loop(1_000_000);
        let faulted = run(&p, true);
        let reference = run(&p, false);
        assert!(faulted.converged, "the fault pretends convergence");
        let f = faulted.entry_state(BlockId(1))[3];
        let r = reference.entry_state(BlockId(1))[3];
        assert_eq!(r.hi, i64::MAX);
        assert!(
            f.hi < 0x1000 + 8 * (WIDEN_AFTER as i64 + 2),
            "faulted bound should stall near the join threshold, got {f}"
        );
        // Concretely: iteration 20 puts the pointer at 0x1000 + 160,
        // outside the faulted range — the unsoundness witness.
        assert!(!f.contains(0x1000 + 160));
        assert!(r.contains(0x1000 + 160));
    }
}
