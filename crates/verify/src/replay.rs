//! Symbolic dataflow over the scheduled region's alias-register queue
//! state — the proving half of the static translation validator.
//!
//! The replay walks the emitted alias-annotation stream
//! ([`smarq::AliasCode`]) and tracks, per *absolute register order*, which
//! operation's access range a register holds. It is an independent model of
//! the hardware (not a reuse of [`smarq::queue::AliasQueue`]): live entries
//! are keyed by their absolute order `base + offset` in a [`BTreeMap`],
//! which is exact because every live entry's order lies in
//! `[base, base + num_regs)` — entries below `base` are cleared by the very
//! rotation that moved `base` past them, and `set` can never reach
//! `base + num_regs` — so distinct live orders always occupy distinct
//! physical registers.
//!
//! Against that state the replay proves, for the facts independently
//! derived by [`crate::facts`]:
//!
//! * **soundness** — every required `X →check Y` is actually performed on
//!   `Y`'s live register (following `AMOV` relocations), and the
//!   load-skips-load-set hardware filter never suppresses it;
//! * **precision** — no scan examines a may-aliasing range it is not
//!   required to: such an examination is a latent false-positive alias
//!   exception, the exact hazard anti-constraints exist to prevent;
//! * **mechanics** — offsets stay inside the modeled file, the
//!   `order = base + offset` invariant holds at every instruction, `AMOV`
//!   sources are still live, and rotations never exceed the file size.
//!
//! Every violation becomes a structured [`Diagnostic`]; the replay collects
//! all of them instead of stopping at the first.

use crate::facts::RegionFacts;
use smarq::{AliasCode, Allocation, Diagnostic, MemOpId, RegionSpec, Severity};
use std::collections::{BTreeMap, HashSet};

/// One live alias register in the symbolic state.
#[derive(Clone, Copy, Debug)]
struct SymEntry {
    /// The operation whose access range the register holds. Follows the
    /// range through `AMOV` relocations, so checks performed on a moved
    /// register still resolve to the original producer.
    op: MemOpId,
    /// Set by a load (later loads skip it).
    set_by_load: bool,
}

/// Replays `alloc`'s alias code symbolically and proves it implements
/// `facts`. Returns every violation found (empty = proven).
pub fn replay(
    region_id: usize,
    spec: &RegionSpec,
    alloc: &Allocation,
    facts: &RegionFacts,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Model exactly the registers the allocation uses; whether that fits
    // the *hardware* file is the overflow-risk lint's question.
    let num_regs = alloc.working_set().max(1) as u64;
    let mut base = 0u64;
    let mut entries: BTreeMap<u64, SymEntry> = BTreeMap::new();
    let mut performed: HashSet<(MemOpId, MemOpId)> = HashSet::new();
    // Code position of each op, for diagnostic spans.
    let mut op_span: Vec<Option<usize>> = vec![None; spec.len()];

    let err = |code, message: String| Diagnostic::new(Severity::Error, region_id, code, message);

    for (pc, code) in alloc.code().iter().enumerate() {
        match *code {
            AliasCode::Op {
                id,
                p_bit,
                c_bit,
                offset,
            } => {
                op_span[id.index()] = Some(pc);
                if !(p_bit || c_bit) {
                    continue;
                }
                let Some(offset) = offset else {
                    out.push(
                        err(
                            "order-invariant",
                            format!("{id} carries P/C bits but encodes no register offset"),
                        )
                        .with_op(id)
                        .with_span(pc, pc + 1),
                    );
                    continue;
                };
                let off = offset.value() as u64;
                if off >= num_regs {
                    out.push(
                        err(
                            "offset-out-of-range",
                            format!(
                                "{id} references offset {off} but the allocation's \
                                 working set is {num_regs}"
                            ),
                        )
                        .with_op(id)
                        .with_span(pc, pc + 1),
                    );
                    continue;
                }
                // order = base + offset must agree with the allocation's
                // own metadata at this execution point.
                match alloc.op(id) {
                    Some(a)
                        if a.base.value() == base
                            && a.offset == offset
                            && a.order.value() == base + off => {}
                    _ => {
                        out.push(
                            err(
                                "order-invariant",
                                format!(
                                    "{id}: order = base + offset does not hold at its \
                                     execution point (base {base}, offset {off})"
                                ),
                            )
                            .with_op(id)
                            .with_span(pc, pc + 1),
                        );
                    }
                }
                let is_load = spec.op(id).kind.is_load();
                if c_bit {
                    // Hardware scan: every valid register at order >= own.
                    for (&order, e) in entries.range(base + off..) {
                        debug_assert!(order < base + num_regs);
                        if is_load && e.set_by_load {
                            continue; // loads never check load-set entries
                        }
                        performed.insert((id, e.op));
                        // Precision: a genuine alias must be a required
                        // check, else the hardware could raise a false
                        // positive exception here.
                        if spec.may_alias(id, e.op)
                            && !(is_load && spec.op(e.op).kind.is_load())
                            && !facts.is_required_check(id, e.op)
                        {
                            out.push(
                                err(
                                    "false-positive",
                                    format!(
                                        "{id}'s scan reaches {}'s live range: a runtime \
                                         alias would roll the region back for nothing",
                                        e.op
                                    ),
                                )
                                .with_op(id)
                                .with_span(pc, pc + 1)
                                .with_witness(format!("{} ->anti {id} unenforced", e.op)),
                            );
                        }
                    }
                }
                if p_bit {
                    entries.insert(
                        base + off,
                        SymEntry {
                            op: id,
                            set_by_load: is_load,
                        },
                    );
                }
            }
            AliasCode::Amov(amov) => {
                let (src, dst) = (
                    amov.src_offset.value() as u64,
                    amov.dst_offset.value() as u64,
                );
                if src >= num_regs || dst >= num_regs {
                    out.push(
                        err(
                            "offset-out-of-range",
                            format!("AMOV {src},{dst} outside the {num_regs}-register window"),
                        )
                        .with_op(amov.moved_op)
                        .with_span(pc, pc + 1),
                    );
                    continue;
                }
                let moved = entries.remove(&(base + src));
                match moved {
                    Some(e) if e.op == amov.moved_op => {
                        if dst != src {
                            entries.insert(base + dst, e);
                        }
                    }
                    other => {
                        out.push(
                            err(
                                "premature-release",
                                format!(
                                    "AMOV expects {}'s range at offset {src} but the \
                                     register holds {}",
                                    amov.moved_op,
                                    other.map_or("nothing".to_string(), |e| e.op.to_string()),
                                ),
                            )
                            .with_op(amov.moved_op)
                            .with_span(pc, pc + 1),
                        );
                        // Apply the hardware effect anyway: moving an
                        // empty register clears the destination.
                        if dst != src {
                            match other {
                                Some(e) => {
                                    entries.insert(base + dst, e);
                                }
                                None => {
                                    entries.remove(&(base + dst));
                                }
                            }
                        }
                    }
                }
            }
            AliasCode::Rotate(r) => {
                let amount = r.amount as u64;
                if amount > num_regs {
                    out.push(
                        err(
                            "rotate-overflow",
                            format!("rotate {amount} exceeds the {num_regs}-register file"),
                        )
                        .with_span(pc, pc + 1),
                    );
                    continue;
                }
                base += amount;
                // Registers that rotated out are released (cleared).
                entries = entries.split_off(&base);
            }
        }
    }

    // Soundness: every required check was actually performed.
    for (checker, checkee) in facts.required_checks() {
        if !performed.contains(&(checker, checkee)) {
            let mut d = err(
                "missing-check",
                format!(
                    "speculation unprotected: {checker} never examines {checkee}'s \
                     alias register"
                ),
            )
            .with_op(checker)
            .with_witness(format!("{checker} ->check {checkee}"));
            if let Some(p) = op_span[checker.index()] {
                d = d.with_span(p, p + 1);
            }
            out.push(d);
        }
    }

    // REGISTER-ALLOCATION-RULE on the final orders, for constraint
    // endpoints never relocated by an AMOV (relocated ones are covered by
    // the replay itself).
    let moved: HashSet<MemOpId> = alloc
        .code()
        .iter()
        .filter_map(|c| match c {
            AliasCode::Amov(a) => Some(a.moved_op),
            _ => None,
        })
        .collect();
    let check_rule = facts.required_checks().map(|(x, y)| (x, y, false));
    let anti_rule = facts.anti_constraints().map(|(x, y)| (x, y, true));
    for (x, y, anti) in check_rule.chain(anti_rule) {
        if moved.contains(&x) || moved.contains(&y) {
            continue;
        }
        let (Some(xa), Some(ya)) = (alloc.op(x), alloc.op(y)) else {
            continue;
        };
        let ok = if anti {
            xa.order < ya.order
        } else {
            xa.order <= ya.order
        };
        if !ok {
            let rel = if anti { "<" } else { "<=" };
            let kind = if anti { "anti" } else { "check" };
            out.push(
                err(
                    "order-rule",
                    format!(
                        "REGISTER-ALLOCATION-RULE violated: order({x}) {rel} order({y}) \
                         required but the final orders are {} and {}",
                        xa.order.value(),
                        ya.order.value()
                    ),
                )
                .with_op(x)
                .with_witness(format!("{x} ->{kind} {y}")),
            );
        }
    }

    out
}
