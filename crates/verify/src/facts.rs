//! Independent re-derivation of the paper's §4 dependence and constraint
//! sets — the validator's *facts* about a region.
//!
//! This is deliberately a from-first-principles second implementation. It
//! shares **no derivation code** with `smarq::deps` or `smarq::constraints`:
//! where the production path enumerates candidate pairs from sealed
//! location-class buckets and stores edge lists plus hash sets, this module
//! walks every pair with plain loops against the spec's public `may_alias`
//! relation and stores dense `n × n` boolean matrices. The two
//! implementations must agree on every region the optimizer ever forms;
//! divergence in either direction is a bug in one of them, which is exactly
//! the point of keeping both.
//!
//! The rules implemented, straight from the paper:
//!
//! * **DEPENDENCE** — `X →dep Y` when `X` precedes `Y` in original order,
//!   both survive elimination, they may alias, and at least one is a store.
//! * **NOSPEC-DEPENDENCE** — when either op is marked *unspeculatable*
//!   (its address can touch a configured nospec range), the pair is a
//!   dependence regardless of the alias relation, as long as one is a
//!   store: tainted accesses keep exact program order.
//! * **EXTENDED-DEPENDENCE 1** — load `Z` eliminated by forwarding from
//!   `X`: every surviving *store* `Y` strictly between `X` and `Z` that may
//!   alias `X` gets `Y →dep X` (the forwarding source's register stands in
//!   for the invisible load).
//! * **EXTENDED-DEPENDENCE 2** — store `X` eliminated because `Z`
//!   overwrites it: every surviving *load* `Y` strictly between that may
//!   alias `Z` gets `Z →dep Y`.
//! * **CHECK-CONSTRAINT** — `X →check Y` for every `X →dep Y` where the
//!   schedule moved `Y` above `X`; `X` gains the `C` requirement, `Y` the
//!   `P` requirement.
//! * **ANTI-CONSTRAINT** — `X →anti Y` for every `X →dep Y` kept in
//!   original order where `Y` is not already required to check `X`, `X`
//!   must produce and `Y` must check: `X`'s register must leave `Y`'s scan
//!   window before `Y` executes, or a genuine runtime alias raises a false
//!   positive exception.

use smarq::{MemOpId, RegionSpec};

/// The required protection sets for one region under one schedule,
/// independently derived. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct RegionFacts {
    n: usize,
    /// `dep[x * n + y]` ⇔ `X →dep Y`.
    dep: Vec<bool>,
    /// `check[x * n + y]` ⇔ `X →check Y` (`X` must examine `Y`'s register).
    check: Vec<bool>,
    /// `anti[x * n + y]` ⇔ `X →anti Y`.
    anti: Vec<bool>,
    /// Op must set an alias register (`P`).
    p_req: Vec<bool>,
    /// Op must check alias registers (`C`).
    c_req: Vec<bool>,
    /// Position of each surviving op in the schedule.
    pos: Vec<Option<usize>>,
}

impl RegionFacts {
    /// Derives all facts for `region` under `schedule`.
    pub fn derive(region: &RegionSpec, schedule: &[MemOpId]) -> Self {
        let n = region.len();
        let mut f = RegionFacts {
            n,
            dep: vec![false; n * n],
            check: vec![false; n * n],
            anti: vec![false; n * n],
            p_req: vec![false; n],
            c_req: vec![false; n],
            pos: vec![None; n],
        };
        let live = |i: usize| !region.is_eliminated(MemOpId::new(i));

        // DEPENDENCE: all-pairs walk, original order.
        for i in 0..n {
            if !live(i) {
                continue;
            }
            for j in (i + 1)..n {
                if !live(j) {
                    continue;
                }
                let (x, y) = (MemOpId::new(i), MemOpId::new(j));
                let a_store = region.op(x).kind.is_store();
                let b_store = region.op(y).kind.is_store();
                let ordered = region.may_alias(x, y) || region.is_nospec(x) || region.is_nospec(y);
                if (a_store || b_store) && ordered {
                    f.dep[i * n + j] = true;
                }
            }
        }

        // EXTENDED-DEPENDENCE 1: backward Y ->dep X per load elimination.
        for le in region.load_elims() {
            let (src, elim) = (le.source.index(), le.eliminated.index());
            for y in (src + 1)..elim {
                if live(y)
                    && region.op(MemOpId::new(y)).kind.is_store()
                    && region.may_alias(MemOpId::new(y), le.source)
                {
                    f.dep[y * n + src] = true;
                }
            }
        }

        // EXTENDED-DEPENDENCE 2: backward Z ->dep Y per store elimination.
        for se in region.store_elims() {
            let (elim, over) = (se.eliminated.index(), se.overwriter.index());
            for y in (elim + 1)..over {
                if live(y)
                    && region.op(MemOpId::new(y)).kind.is_load()
                    && region.may_alias(se.overwriter, MemOpId::new(y))
                {
                    f.dep[over * n + y] = true;
                }
            }
        }

        for (k, &op) in schedule.iter().enumerate() {
            f.pos[op.index()] = Some(k);
        }

        // CHECK-CONSTRAINT pass: needs only deps + schedule positions.
        for x in 0..n {
            for y in 0..n {
                if !f.dep[x * n + y] {
                    continue;
                }
                if let (Some(px), Some(py)) = (f.pos[x], f.pos[y]) {
                    if py < px {
                        f.check[x * n + y] = true;
                        f.c_req[x] = true;
                        f.p_req[y] = true;
                    }
                }
            }
        }

        // ANTI-CONSTRAINT pass: needs the *final* P/C requirement bits, so
        // it runs strictly after the check pass.
        for x in 0..n {
            for y in 0..n {
                if !f.dep[x * n + y] {
                    continue;
                }
                if let (Some(px), Some(py)) = (f.pos[x], f.pos[y]) {
                    if px < py && !f.check[y * n + x] && f.p_req[x] && f.c_req[y] {
                        f.anti[x * n + y] = true;
                    }
                }
            }
        }
        f
    }

    /// Number of ops in the region.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the region has no ops.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `X →dep Y`?
    pub fn has_dep(&self, x: MemOpId, y: MemOpId) -> bool {
        self.dep[x.index() * self.n + y.index()]
    }

    /// Is `checker →check checkee` required?
    pub fn is_required_check(&self, checker: MemOpId, checkee: MemOpId) -> bool {
        self.check[checker.index() * self.n + checkee.index()]
    }

    /// Is `X →anti Y` required?
    pub fn has_anti(&self, x: MemOpId, y: MemOpId) -> bool {
        self.anti[x.index() * self.n + y.index()]
    }

    /// Must `op` set an alias register?
    pub fn requires_p(&self, op: MemOpId) -> bool {
        self.p_req[op.index()]
    }

    /// Must `op` check alias registers?
    pub fn requires_c(&self, op: MemOpId) -> bool {
        self.c_req[op.index()]
    }

    /// Schedule position of `op`, if it was scheduled.
    pub fn position(&self, op: MemOpId) -> Option<usize> {
        self.pos[op.index()]
    }

    /// All required checks `(checker, checkee)`.
    pub fn required_checks(&self) -> impl Iterator<Item = (MemOpId, MemOpId)> + '_ {
        pairs(&self.check, self.n)
    }

    /// All required anti-constraints `(producer, checker)`.
    pub fn anti_constraints(&self) -> impl Iterator<Item = (MemOpId, MemOpId)> + '_ {
        pairs(&self.anti, self.n)
    }

    /// `(checks, antis)` counts.
    pub fn counts(&self) -> (usize, usize) {
        (
            self.check.iter().filter(|&&b| b).count(),
            self.anti.iter().filter(|&&b| b).count(),
        )
    }
}

fn pairs(matrix: &[bool], n: usize) -> impl Iterator<Item = (MemOpId, MemOpId)> + '_ {
    matrix
        .iter()
        .enumerate()
        .filter(|&(_, &set)| set)
        .map(move |(idx, _)| (MemOpId::new(idx / n), MemOpId::new(idx % n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq::MemKind;

    /// Paper Figure 2: two hoisted loads, two stores checking them.
    fn figure2() -> (RegionSpec, Vec<MemOpId>) {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Load, 3);
        r.set_may_alias(m1, m2, true);
        r.set_may_alias(m3, m0, true);
        r.set_may_alias(m3, m2, true);
        (r, vec![m3, m1, m2, m0])
    }

    #[test]
    fn figure2_checks_match_paper() {
        let (r, sched) = figure2();
        let f = RegionFacts::derive(&r, &sched);
        let (m0, m1, m2, m3) = (
            MemOpId::new(0),
            MemOpId::new(1),
            MemOpId::new(2),
            MemOpId::new(3),
        );
        assert!(f.is_required_check(m2, m3));
        assert!(f.is_required_check(m0, m3));
        assert!(
            !f.is_required_check(m2, m1),
            "m1 stays above m2: no reordering, no check"
        );
        assert!(!f.is_required_check(m3, m2));
        assert_eq!(f.counts(), (2, 0), "figure 2: two checks, no antis");
        assert!(f.requires_p(m3) && !f.requires_p(m1));
        assert!(f.requires_c(m0) && f.requires_c(m2));
    }

    #[test]
    fn anti_appears_when_checker_follows_producer() {
        // The validate.rs anti fixture: l hoisted above s0, s1 checks l2;
        // l ->dep s1 stays in order, so l ->anti s1 is required.
        let mut r = RegionSpec::new();
        let s0 = r.push(MemKind::Store, 9);
        let l = r.push(MemKind::Load, 1);
        let s1 = r.push(MemKind::Store, 2);
        let l2 = r.push(MemKind::Load, 3);
        r.set_may_alias(s0, l, true);
        r.set_may_alias(s1, l2, true);
        r.set_may_alias(l, s1, true);
        let f = RegionFacts::derive(&r, &[l, l2, s0, s1]);
        assert!(f.is_required_check(s0, l));
        assert!(f.is_required_check(s1, l2));
        assert!(f.has_anti(l, s1));
        assert_eq!(f.counts(), (2, 1));
    }

    #[test]
    fn load_elim_extends_protection_to_forwarding_source() {
        // Paper Figure 5 shape: m2's load is eliminated (forwarded from
        // m0); the intervening store m1 must check the forwarding source.
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Load, 0);
        let m1 = r.push(MemKind::Store, 1);
        let m2 = r.push(MemKind::Load, 0);
        r.set_may_alias(m1, m0, true);
        r.set_may_alias(m1, m2, true);
        r.add_load_elim(m0, m2);
        let f = RegionFacts::derive(&r, &[m0, m1]);
        assert!(f.has_dep(m1, m0), "extended dep M1 ->dep M0");
        assert!(
            f.is_required_check(m1, m0),
            "store must check the forwarding source"
        );
    }

    #[test]
    fn store_elim_extends_protection_to_overwriter() {
        // Store m0 eliminated (overwritten by m2); the intervening load m1
        // aliasing m2 gets the backward dep m2 ->dep m1 — so even with no
        // reordering at all the overwriter must check the load (the
        // eliminated store's effect logically moved down to m2).
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 0);
        r.set_may_alias(m2, m1, true);
        r.set_may_alias(m0, m1, false);
        r.add_store_elim(m0, m2);
        let f = RegionFacts::derive(&r, &[m1, m2]);
        assert!(f.has_dep(m2, m1), "extended dep M2 ->dep M1");
        assert!(
            f.is_required_check(m2, m1),
            "overwriter checks the intervening load even in original order"
        );
        // Scheduling the overwriter above the load flips the protection:
        // the extended dep is satisfied by order, but the plain dep
        // m1 ->dep m2 is now reordered, so the load checks the store.
        let f2 = RegionFacts::derive(&r, &[m2, m1]);
        assert!(!f2.is_required_check(m2, m1));
        assert!(f2.is_required_check(m1, m2));
        assert_eq!(f2.counts(), (1, 0));
    }

    #[test]
    fn eliminated_ops_take_no_part_in_plain_deps() {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 0);
        let m2 = r.push(MemKind::Load, 0);
        r.add_load_elim(m1, m2);
        let f = RegionFacts::derive(&r, &[m1, m0]);
        assert!(!f.has_dep(m0, m2), "eliminated op has no plain dep");
        assert!(f.has_dep(m0, m1));
        assert!(f.is_required_check(m0, m1));
    }
}
