//! Cross-region chain verification: a fixpoint abstract interpretation
//! over the **chain graph** (regions as nodes, region→region exit edges)
//! plus the static obligations every chained entry relies on.
//!
//! The runtime's chained dispatcher executes region after region without
//! returning to the interpreter; each hand-off silently assumes:
//!
//! * the successor's **resident-state write mask** covers every register
//!   the emitted code can write (masked checkpointing restores exactly
//!   those — an under-approximate mask corrupts rollback state);
//! * the register-range facts the optimizer **assumed at entry** (for the
//!   unspeculatable-address-range taint) over-approximate every state a
//!   predecessor can actually deliver;
//! * the alias-register queue is **reset at region entry** (hardware
//!   semantics, `smarq::AliasQueue::reset`), so no queue state crosses
//!   the edge.
//!
//! [`analyze_chain`] proves all three. It seeds each region's entry state
//! from the never-faulted whole-program dataflow
//! ([`crate::dataflow::analyze_reference`]), then propagates superblock
//! exit states ([`smarq_ir::analyze_superblock`]) along chain edges —
//! joining, and widening loop back-edges after [`WIDEN_AFTER`] joins —
//! until the region entry states stabilize. On the fixpoint it runs five
//! chain-level checks (codes in [`crate::registry`]):
//!
//! | code | severity | catches |
//! |------|----------|---------|
//! | `chain-writemask-gap`     | Error   | a write mask missing an emitted destination register (the `SMARQ_FAULT_DROP_BOUNDARY` mutation) |
//! | `chain-entry-state`       | Error   | an optimizer entry assumption no predecessor guarantees (the `SMARQ_FAULT_WIDEN_RANGE` mutation) |
//! | `nospec-speculation`      | Error   | a memory op whose chain-derived address can touch a configured nospec range yet was eliminated, reordered, or given P/C bits |
//! | `cross-region-dead-amov`  | Warning | an `AMOV` after the region's last scan, proven dead *chain-wide* by the entry queue reset |
//! | `chain-unreachable-check` | Warning | a required check whose two address ranges are provably disjoint — the scan can never fire |
//!
//! Everything here re-derives its facts from the caller-provided views;
//! in particular the write-mask walk deliberately does **not** call the
//! production [`RegionWriteMask::of`] (that is the code under test).

use crate::dataflow::{self, WIDEN_AFTER};
use crate::facts::RegionFacts;
use smarq::range::{join_state, widen_state, NospecRanges, RegState};
use smarq::{AliasCode, Diagnostic, MemOpId, Severity};
use smarq_guest::Program;
use smarq_ir::{analyze_superblock, nospec_taint, SbRanges, Superblock};
use smarq_opt::OptTrace;
use smarq_vliw::{RegionWriteMask, VliwOp, VliwProgram};
use std::collections::VecDeque;

/// One cached region as the chain analyzer sees it: the formation-order
/// id, the formed superblock, the optimizer's trace, the emitted code and
/// the two runtime-facing artifacts under scrutiny (the write mask the
/// dispatcher will checkpoint by, and the entry state the optimizer's
/// taint analysis assumed — `None` when it assumed nothing, i.e. ⊤).
pub struct ChainRegionView<'a> {
    /// Region index in formation order (goes into diagnostics).
    pub region_id: usize,
    /// The formed superblock (gives the entry block and exit targets).
    pub sb: &'a Superblock,
    /// The optimizer's trace for the region (spec, schedule, allocation,
    /// and the [`smarq_opt::OptTrace::mem_origin`] index back into `sb`).
    pub trace: &'a OptTrace,
    /// The emitted code, for the independent write-mask re-derivation.
    pub vliw: &'a VliwProgram,
    /// The write mask the dispatcher will actually use (possibly produced
    /// under the `SMARQ_FAULT_DROP_BOUNDARY` mutation).
    pub write_mask: RegionWriteMask,
    /// The entry register state the optimizer's nospec taint used
    /// (possibly produced under the `SMARQ_FAULT_WIDEN_RANGE` mutation).
    pub assumed_entry: Option<RegState>,
}

/// A chain edge: `regions[from]` exit `exit_id` continues at
/// `regions[to]`'s entry block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChainEdge {
    /// Source region (index into the view slice).
    pub from: usize,
    /// Exit id within the source region.
    pub exit_id: usize,
    /// Destination region (index into the view slice).
    pub to: usize,
}

/// Result of [`analyze_chain`].
pub struct ChainReport {
    /// Region-transfer steps the chain fixpoint took.
    pub iterations: usize,
    /// `false` only if the iteration cap fired (widening makes that
    /// unreachable in practice; see [`crate::dataflow`]).
    pub converged: bool,
    /// Regions analyzed.
    pub regions: usize,
    /// Chain edges derived from the exit tables.
    pub edges: Vec<ChainEdge>,
    /// Fixpoint entry state per region (same order as the input views).
    pub entry_states: Vec<RegState>,
    /// Findings from all five chain checks.
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs the chain fixpoint and all chain-level checks. `program` is the
/// guest program the regions were formed from; `nospec` is the configured
/// unspeculatable address range set (empty disables the nospec check).
pub fn analyze_chain(
    program: &Program,
    regions: &[ChainRegionView<'_>],
    nospec: &NospecRanges,
) -> ChainReport {
    let n = regions.len();
    // Seed from the never-faulted whole-program dataflow: sound for any
    // path into the region, chained or interpreted.
    let df = dataflow::analyze_reference(program);
    let mut entry: Vec<RegState> = regions
        .iter()
        .map(|r| *df.entry_state(r.sb.entry))
        .collect();

    // Chain edges from the exit tables: A exits to B's entry block.
    let mut edges = Vec::new();
    for (a, ra) in regions.iter().enumerate() {
        for (exit_id, ex) in ra.sb.exits.iter().enumerate() {
            let Some(target) = ex.target else { continue };
            for (b, rb) in regions.iter().enumerate() {
                if rb.sb.entry == target {
                    edges.push(ChainEdge {
                        from: a,
                        exit_id,
                        to: b,
                    });
                }
            }
        }
    }
    let out_edges: Vec<Vec<&ChainEdge>> = (0..n)
        .map(|a| edges.iter().filter(|e| e.from == a).collect())
        .collect();

    // Fixpoint over the chain graph. The seed is already a sound
    // over-approximation of every concrete entry, so this converges fast;
    // it exists because a superblock's exit state (⊤ for loaded values,
    // exact for in-region constants) is *incomparable* to the program
    // dataflow's view, and the nospec verdicts must hold for the join.
    let mut joins = vec![0usize; n];
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();
    let cap = n.max(1) * 64 * (WIDEN_AFTER + 4);
    let mut iterations = 0usize;
    let mut converged = true;
    while let Some(a) = work.pop_front() {
        queued[a] = false;
        iterations += 1;
        if iterations > cap {
            converged = false;
            break;
        }
        let ranges = analyze_superblock(regions[a].sb, &entry[a]);
        for e in &out_edges[a] {
            let exit_state = &ranges.exit_states[e.exit_id];
            let changed = if joins[e.to] < WIDEN_AFTER {
                join_state(&mut entry[e.to], exit_state)
            } else {
                widen_state(&mut entry[e.to], exit_state)
            };
            if changed {
                joins[e.to] += 1;
                if !queued[e.to] {
                    queued[e.to] = true;
                    work.push_back(e.to);
                }
            }
        }
    }

    // Checks on the fixpoint.
    let mut diagnostics = Vec::new();
    for (r, view) in regions.iter().enumerate() {
        let ranges = analyze_superblock(view.sb, &entry[r]);
        check_write_mask(view, &mut diagnostics);
        check_entry_state(view, &entry, regions, &edges, r, &mut diagnostics);
        check_nospec(view, &ranges, nospec, &mut diagnostics);
        check_dead_amov(view, regions, &out_edges[r], &mut diagnostics);
        check_unreachable(view, &ranges, &mut diagnostics);
    }

    ChainReport {
        iterations,
        converged,
        regions: n,
        edges,
        entry_states: entry,
        diagnostics,
    }
}

/// Independent re-derivation of the destination-register sets of the
/// emitted code — deliberately *not* [`RegionWriteMask::of`], which is
/// the (possibly fault-injected) production path under test.
fn derive_write_sets(vliw: &VliwProgram) -> (u64, u64) {
    let mut ints = 0u64;
    let mut fps = 0u64;
    for op in vliw.bundles.iter().flat_map(|b| &b.ops) {
        match *op {
            VliwOp::IConst { rd, .. }
            | VliwOp::Alu { rd, .. }
            | VliwOp::AluImm { rd, .. }
            | VliwOp::Copy { rd, .. }
            | VliwOp::FtoI { rd, .. }
            | VliwOp::Load { rd, .. } => ints |= 1u64 << (rd & 63),
            VliwOp::FConst { fd, .. }
            | VliwOp::Fpu { fd, .. }
            | VliwOp::FCopy { fd, .. }
            | VliwOp::ItoF { fd, .. }
            | VliwOp::FLoad { fd, .. } => fps |= 1u64 << (fd & 63),
            _ => {}
        }
    }
    (ints, fps)
}

fn check_write_mask(view: &ChainRegionView<'_>, out: &mut Vec<Diagnostic>) {
    let (ints, fps) = derive_write_sets(view.vliw);
    let miss_ints = ints & !view.write_mask.ints;
    let miss_fps = fps & !view.write_mask.fps;
    if miss_ints == 0 && miss_fps == 0 {
        return;
    }
    let mut missing = Vec::new();
    for r in 0..64u32 {
        if miss_ints >> r & 1 == 1 {
            missing.push(format!("r{r}"));
        }
        if miss_fps >> r & 1 == 1 {
            missing.push(format!("f{r}"));
        }
    }
    out.push(Diagnostic::new(
        Severity::Error,
        view.region_id,
        "chain-writemask-gap",
        format!(
            "resident-state write mask misses emitted destination register(s) {}; \
             a chained rollback would restore stale values",
            missing.join(", ")
        ),
    ));
}

fn check_entry_state(
    view: &ChainRegionView<'_>,
    entries: &[RegState],
    regions: &[ChainRegionView<'_>],
    edges: &[ChainEdge],
    r: usize,
    out: &mut Vec<Diagnostic>,
) {
    let Some(assumed) = &view.assumed_entry else {
        return; // assumed ⊤: trivially guaranteed
    };
    let reference = &entries[r];
    // Guest architectural registers only: temporaries carry no value into
    // a region (the superblock transfer resets them to ⊤ itself).
    for reg in 0..32usize {
        if reference[reg].le(assumed[reg]) {
            continue;
        }
        // Localize: which chained predecessor edges deliver the excess
        // states? (Exit states re-derived from each predecessor's own
        // *reference* fixpoint entry — never from its assumptions.)
        let culprits: Vec<String> = edges
            .iter()
            .filter(|e| e.to == r)
            .filter(|e| {
                let ranges = analyze_superblock(regions[e.from].sb, &entries[e.from]);
                !ranges.exit_states[e.exit_id][reg].le(assumed[reg])
            })
            .map(|e| format!("region {} exit {}", regions[e.from].region_id, e.exit_id))
            .collect();
        let via = if culprits.is_empty() {
            String::from("the interpreted entry path")
        } else {
            culprits.join(", ")
        };
        out.push(Diagnostic::new(
            Severity::Error,
            view.region_id,
            "chain-entry-state",
            format!(
                "optimizer assumed r{reg} in {} at entry, but the chain can deliver {} \
                 (via {via}); range-derived decisions for this region are unsound",
                assumed[reg], reference[reg]
            ),
        ));
    }
}

fn check_nospec(
    view: &ChainRegionView<'_>,
    ranges: &SbRanges,
    nospec: &NospecRanges,
    out: &mut Vec<Diagnostic>,
) {
    if nospec.is_empty() {
        return;
    }
    let taint = nospec_taint(view.sb, ranges, nospec);
    let trace = view.trace;
    let pos = |id: MemOpId| trace.mem_schedule.iter().position(|&x| x == id);
    for k in 0..trace.mem_origin.len() {
        let id = MemOpId::new(k);
        let oi = trace.mem_origin[k];
        if !taint[oi] {
            continue;
        }
        let Some(p) = pos(id) else {
            out.push(
                Diagnostic::new(
                    Severity::Error,
                    view.region_id,
                    "nospec-speculation",
                    format!(
                        "{id} can touch an unspeculatable range {nospec} but was \
                         eliminated from the schedule"
                    ),
                )
                .with_op(id),
            );
            continue;
        };
        if let Some(alloc) = &trace.allocation {
            if let Some(a) = alloc.op(id) {
                if a.p_bit || a.c_bit {
                    out.push(
                        Diagnostic::new(
                            Severity::Error,
                            view.region_id,
                            "nospec-speculation",
                            format!(
                                "{id} can touch an unspeculatable range {nospec} but \
                                 carries alias bits (P={}, C={})",
                                a.p_bit, a.c_bit
                            ),
                        )
                        .with_op(id),
                    );
                }
            }
        }
        // Program order against every other scheduled memory op: a
        // tainted op must hold its exact position.
        for (j, &other) in trace.mem_schedule.iter().enumerate() {
            if other == id {
                continue;
            }
            let oj = trace.mem_origin[other.index()];
            if (oj < oi) != (j < p) {
                out.push(
                    Diagnostic::new(
                        Severity::Error,
                        view.region_id,
                        "nospec-speculation",
                        format!(
                            "{id} can touch an unspeculatable range {nospec} but was \
                             reordered against {other}"
                        ),
                    )
                    .with_op(id)
                    .with_witness(format!("{id} <-> {other}")),
                );
            }
        }
    }
}

fn check_dead_amov(
    view: &ChainRegionView<'_>,
    regions: &[ChainRegionView<'_>],
    out_edges: &[&ChainEdge],
    out: &mut Vec<Diagnostic>,
) {
    if out_edges.is_empty() {
        return; // no chained successor: nothing cross-region to prove
    }
    let Some(alloc) = &view.trace.allocation else {
        return;
    };
    let code = alloc.code();
    let last_scan = code
        .iter()
        .rposition(|c| matches!(c, AliasCode::Op { c_bit: true, .. }));
    let successors: Vec<String> = out_edges
        .iter()
        .map(|e| format!("region {}", regions[e.to].region_id))
        .collect();
    for (pc, c) in code.iter().enumerate() {
        let AliasCode::Amov(amov) = c else { continue };
        if last_scan.is_some_and(|s| pc < s) {
            continue;
        }
        out.push(
            Diagnostic::new(
                Severity::Warning,
                view.region_id,
                "cross-region-dead-amov",
                format!(
                    "AMOV for {} executes after the region's last scan; the chained \
                     successor(s) {} reset the alias queue at entry, so its effect is \
                     provably dead chain-wide",
                    amov.moved_op,
                    successors.join(", ")
                ),
            )
            .with_op(amov.moved_op)
            .with_span(pc, pc + 1),
        );
    }
}

fn check_unreachable(view: &ChainRegionView<'_>, ranges: &SbRanges, out: &mut Vec<Diagnostic>) {
    let trace = view.trace;
    if trace.mem_origin.is_empty() {
        return;
    }
    let facts = RegionFacts::derive(&trace.spec, &trace.mem_schedule);
    let addr_of = |id: MemOpId| ranges.addr[trace.mem_origin[id.index()]];
    for (checker, checkee) in facts.required_checks() {
        let (Some(a), Some(b)) = (addr_of(checker), addr_of(checkee)) else {
            continue;
        };
        // Word footprints: [lo, hi + 7]. Disjoint ⇒ the scan can never
        // observe a genuine alias — dead protection overhead.
        if crate::lint::provably_disjoint(a, b) {
            out.push(
                Diagnostic::new(
                    Severity::Warning,
                    view.region_id,
                    "chain-unreachable-check",
                    format!(
                        "{checker} is required to check {checkee}, but their chain-derived \
                         address ranges {a} and {b} are provably disjoint; the check can \
                         never fire"
                    ),
                )
                .with_op(checker)
                .with_witness(format!("{checker} ->check {checkee}")),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq::range::Interval;
    use smarq::{allocate, AmovInsn, DepGraph, MemKind, RegionSpec};
    use smarq_guest::{AluOp, BlockId, CmpOp, ProgramBuilder, Reg};
    use smarq_ir::{IrExit, IrOp, OpOrigin};
    use smarq_vliw::{AliasAnnot, Bundle, ExitTarget};

    /// Guest program: B0 pins r1=0x1000, r2=0x2000; B1 is a self-loop
    /// with a store through r1 and a load through r2; B2 halts.
    fn base_program() -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0x1000);
        b.iconst(entry, Reg(2), 0x2000);
        b.iconst(entry, Reg(3), 0);
        b.iconst(entry, Reg(4), 100);
        b.jump(entry, body);
        b.st(body, Reg(3), Reg(1), 0);
        b.ld(body, Reg(5), Reg(2), 0);
        b.alu_imm(body, AluOp::Add, Reg(3), Reg(3), 1);
        b.branch(body, CmpOp::Lt, Reg(3), Reg(4), body, done);
        b.halt(done);
        b.finish(entry)
    }

    /// Hand-built region over B1: store (m0) then load (m1), may-alias,
    /// load hoisted above the store in the schedule — a required check
    /// (m0 →check m1) — chaining back to itself.
    struct Fixture {
        sb: Superblock,
        trace: OptTrace,
        vliw: VliwProgram,
    }

    fn fixture(schedule: Vec<MemOpId>) -> Fixture {
        let ops = vec![
            IrOp::St {
                rs: 3,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 5,
                base: 2,
                disp: 0,
            },
            IrOp::Exit {
                exit_id: 0,
                cond: None,
            },
        ];
        let sb = Superblock {
            origins: (0..ops.len() as u32)
                .map(|i| OpOrigin {
                    block: BlockId(1),
                    instr: i,
                })
                .collect(),
            ops,
            exits: vec![IrExit {
                target: Some(BlockId(1)),
            }],
            entry: BlockId(1),
            trace: vec![BlockId(1)],
        };
        let mut spec = RegionSpec::new();
        let m0 = spec.push(MemKind::Store, 0);
        let m1 = spec.push(MemKind::Load, 1);
        spec.set_may_alias(m0, m1, true);
        let deps = DepGraph::compute(&spec);
        let allocation = Some(allocate(&spec, &deps, &schedule, 64).unwrap());
        let trace = OptTrace {
            spec,
            deps,
            mem_schedule: schedule,
            allocation,
            mem_origin: vec![0, 1],
        };
        let vliw = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![
                    VliwOp::Load {
                        rd: 5,
                        base: 2,
                        disp: 0,
                        alias: AliasAnnot::None,
                        tag: 1,
                    },
                    VliwOp::Store {
                        rs: 3,
                        base: 1,
                        disp: 0,
                        alias: AliasAnnot::None,
                        tag: 0,
                    },
                ],
            }],
            exits: vec![ExitTarget {
                guest_block: Some(1),
            }],
        };
        Fixture { sb, trace, vliw }
    }

    fn hoisted() -> Vec<MemOpId> {
        vec![MemOpId::new(1), MemOpId::new(0)]
    }

    fn view<'a>(f: &'a Fixture, assumed: Option<RegState>) -> ChainRegionView<'a> {
        ChainRegionView {
            region_id: 0,
            sb: &f.sb,
            trace: &f.trace,
            vliw: &f.vliw,
            write_mask: RegionWriteMask::of(&f.vliw),
            assumed_entry: assumed,
        }
    }

    fn errors(report: &ChainReport) -> Vec<&Diagnostic> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn chain_fixpoint_converges_and_derives_edges() {
        let p = base_program();
        let f = fixture(hoisted());
        let df = dataflow::analyze_reference(&p);
        let assumed = Some(*df.entry_state(BlockId(1)));
        let report = analyze_chain(&p, &[view(&f, assumed)], &NospecRanges::none());
        assert!(report.converged);
        assert_eq!(report.regions, 1);
        assert_eq!(
            report.edges,
            vec![ChainEdge {
                from: 0,
                exit_id: 0,
                to: 0
            }],
            "self-loop edge"
        );
        assert!(errors(&report).is_empty(), "{:?}", report.diagnostics);
        // The fixpoint keeps the exact bases through the back edge.
        assert_eq!(report.entry_states[0][1], Interval::exact(0x1000));
        assert_eq!(report.entry_states[0][2], Interval::exact(0x2000));
        // ...and the disjoint-address required check is called out.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "chain-unreachable-check" && d.severity == Severity::Warning));
    }

    #[test]
    fn writemask_gap_is_an_error() {
        let p = base_program();
        let f = fixture(hoisted());
        let mut v = view(&f, None);
        // Simulate the DROP_BOUNDARY fault: the mask forgets the load's
        // destination register r5.
        v.write_mask.ints &= !(1u64 << 5);
        let report = analyze_chain(&p, &[v], &NospecRanges::none());
        let errs = errors(&report);
        assert!(
            errs.iter()
                .any(|d| d.code == "chain-writemask-gap" && d.message.contains("r5")),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn unsound_entry_assumption_is_an_error() {
        let p = base_program();
        let f = fixture(hoisted());
        // Simulate the WIDEN_RANGE fault: the optimizer assumed r2 stays
        // far below what the chain actually delivers.
        let mut assumed = *dataflow::analyze_reference(&p).entry_state(BlockId(1));
        assumed[2] = Interval::of(0, 0x10);
        let report = analyze_chain(&p, &[view(&f, Some(assumed))], &NospecRanges::none());
        assert!(
            errors(&report)
                .iter()
                .any(|d| d.code == "chain-entry-state" && d.message.contains("r2")),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn nospec_speculation_flags_reorder_bits_and_elimination() {
        let p = base_program();
        let nospec = NospecRanges::parse("0x2000..0x2008").unwrap();
        // Hoisted schedule: the tainted load (m1, address 0x2000) was
        // reordered above the store and carries a P bit.
        let f = fixture(hoisted());
        let report = analyze_chain(&p, &[view(&f, None)], &nospec);
        let errs = errors(&report);
        assert!(
            errs.iter()
                .any(|d| d.code == "nospec-speculation" && d.message.contains("reordered")),
            "{:?}",
            report.diagnostics
        );
        assert!(
            errs.iter()
                .any(|d| d.code == "nospec-speculation" && d.message.contains("alias bits")),
            "{:?}",
            report.diagnostics
        );
        // Program-order schedule, no alias bits: clean under the same
        // nospec config.
        let clean = fixture(vec![MemOpId::new(0), MemOpId::new(1)]);
        let report = analyze_chain(&p, &[view(&clean, None)], &nospec);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == "nospec-speculation"),
            "{:?}",
            report.diagnostics
        );
        // A range neither op touches stays silent even when hoisted.
        let far = NospecRanges::parse("0x9000..0x9008").unwrap();
        let report = analyze_chain(&p, &[view(&f, None)], &far);
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == "nospec-speculation"));
        // A tainted op missing from the schedule entirely (eliminated).
        let mut gone = fixture(hoisted());
        gone.trace.mem_schedule = vec![MemOpId::new(0)];
        let report = analyze_chain(&p, &[view(&gone, None)], &nospec);
        assert!(
            errors(&report)
                .iter()
                .any(|d| d.code == "nospec-speculation" && d.message.contains("eliminated")),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn amov_after_last_scan_is_dead_chain_wide() {
        let p = base_program();
        let mut f = fixture(hoisted());
        // Append a clean-up AMOV after every scan. The in-region DeadAmov
        // pass calls this dead *within the region*; the chain pass proves
        // it stays dead across the self-loop edge (queue reset at entry).
        let alloc = f.trace.allocation.as_ref().unwrap();
        let m1 = MemOpId::new(1);
        let off = alloc.op(m1).unwrap().offset;
        let mut code = alloc.code().to_vec();
        code.push(AliasCode::Amov(AmovInsn {
            moved_op: m1,
            src_offset: off,
            dst_offset: off,
            is_move: false,
        }));
        let per_op: Vec<_> = (0..f.trace.spec.len())
            .map(|i| alloc.op(MemOpId::new(i)).copied())
            .collect();
        f.trace.allocation = Some(smarq::Allocation::from_parts(
            per_op,
            code,
            alloc.working_set(),
            alloc.stats(),
            alloc.final_checks().to_vec(),
        ));
        let report = analyze_chain(&p, &[view(&f, None)], &NospecRanges::none());
        assert!(
            report.diagnostics.iter().any(|d| {
                d.code == "cross-region-dead-amov"
                    && d.severity == Severity::Warning
                    && d.op == Some(m1)
            }),
            "{:?}",
            report.diagnostics
        );
    }
}
