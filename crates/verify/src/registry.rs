//! The stable diagnostic-code registry and lint policy.
//!
//! Every machine-readable diagnostic code any layer of the verifier can
//! emit — allocator failures, replay-validator violations, per-region
//! lints and chain-level checks — is declared here exactly once, with its
//! origin, default severity and a one-line description. The table is the
//! contract behind `smarq lint --list`, the `--deny`/`--allow` policy
//! flags, and the JSON report's `code_table_version` field: consumers may
//! cache code semantics keyed on the version and rely on codes never
//! changing meaning within one version.
//!
//! [`LintPolicy`] implements the CLI policy: `--deny CODE` upgrades that
//! code's findings to [`Severity::Error`], `--allow CODE` downgrades them
//! to [`Severity::Info`] (allow wins when both name the same code). Exit
//! status is decided from *post-policy* severities.

use smarq::{Diagnostic, Severity};

/// Version of the code table. Bump when a code is added, removed, or its
/// meaning changes; the JSON report carries this so downstream tooling
/// can detect skew.
pub const CODE_TABLE_VERSION: u32 = 1;

/// Which layer of the verifier emits a code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodeOrigin {
    /// The production allocator's own failure codes ([`smarq::AllocError`]).
    Allocator,
    /// The symbolic replay validator ([`crate::replay`]).
    Validator,
    /// A per-region lint pass ([`crate::lint`]).
    Lint,
    /// A chain-level check ([`crate::chain`]).
    Chain,
}

impl CodeOrigin {
    /// Stable lowercase label for listings and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CodeOrigin::Allocator => "allocator",
            CodeOrigin::Validator => "validator",
            CodeOrigin::Lint => "lint",
            CodeOrigin::Chain => "chain",
        }
    }
}

/// One registered diagnostic code.
#[derive(Clone, Copy, Debug)]
pub struct CodeInfo {
    /// The stable machine-readable code, e.g. `"missing-check"`.
    pub code: &'static str,
    /// The emitting layer.
    pub origin: CodeOrigin,
    /// The severity the code carries by default (the highest one the
    /// emitter uses, for codes emitted at several).
    pub default_severity: Severity,
    /// One-line description for `smarq lint --list`.
    pub description: &'static str,
}

/// The full code table, grouped by origin.
pub const CODES: &[CodeInfo] = &[
    // -- allocator failures (smarq::AllocError::code) --------------------
    CodeInfo {
        code: "bad-schedule",
        origin: CodeOrigin::Allocator,
        default_severity: Severity::Error,
        description: "scheduled op sequence violates the allocator's input contract",
    },
    CodeInfo {
        code: "alloc-overflow",
        origin: CodeOrigin::Allocator,
        default_severity: Severity::Error,
        description: "alias register demand exceeded the hardware file during allocation",
    },
    CodeInfo {
        code: "unresolved-constraints",
        origin: CodeOrigin::Allocator,
        default_severity: Severity::Error,
        description: "constraint graph could not be discharged by region end",
    },
    // -- replay validator -------------------------------------------------
    CodeInfo {
        code: "order-invariant",
        origin: CodeOrigin::Validator,
        default_severity: Severity::Error,
        description: "order = base + offset fails at an op's execution point",
    },
    CodeInfo {
        code: "offset-out-of-range",
        origin: CodeOrigin::Validator,
        default_severity: Severity::Error,
        description: "emitted offset lies outside the allocated register window",
    },
    CodeInfo {
        code: "false-positive",
        origin: CodeOrigin::Validator,
        default_severity: Severity::Error,
        description: "a scan can reach a live range no required check justifies",
    },
    CodeInfo {
        code: "premature-release",
        origin: CodeOrigin::Validator,
        default_severity: Severity::Error,
        description: "AMOV moves a register that does not hold the expected range",
    },
    CodeInfo {
        code: "rotate-overflow",
        origin: CodeOrigin::Validator,
        default_severity: Severity::Error,
        description: "rotation amount exceeds the register file",
    },
    CodeInfo {
        code: "missing-check",
        origin: CodeOrigin::Validator,
        default_severity: Severity::Error,
        description: "a required check is never performed by the emitted code",
    },
    CodeInfo {
        code: "order-rule",
        origin: CodeOrigin::Validator,
        default_severity: Severity::Error,
        description: "REGISTER-ALLOCATION-RULE violated by the final orders",
    },
    // -- per-region lint passes -------------------------------------------
    CodeInfo {
        code: "redundant-check",
        origin: CodeOrigin::Lint,
        default_severity: Severity::Warning,
        description: "C bit emitted for an op that is not required to check anything",
    },
    CodeInfo {
        code: "dead-amov",
        origin: CodeOrigin::Lint,
        default_severity: Severity::Warning,
        description: "AMOV whose moved or cleared range no later check can observe",
    },
    CodeInfo {
        code: "overflow-risk",
        origin: CodeOrigin::Lint,
        default_severity: Severity::Error,
        description: "re-derived working set exceeds or crowds the hardware file",
    },
    CodeInfo {
        code: "unprotected-speculation",
        origin: CodeOrigin::Lint,
        default_severity: Severity::Error,
        description: "a required check-constraint lacks its emitted P or C bit",
    },
    // -- chain-level checks -----------------------------------------------
    CodeInfo {
        code: "chain-writemask-gap",
        origin: CodeOrigin::Chain,
        default_severity: Severity::Error,
        description: "resident-state write mask misses an emitted destination register",
    },
    CodeInfo {
        code: "chain-entry-state",
        origin: CodeOrigin::Chain,
        default_severity: Severity::Error,
        description: "an optimizer entry-range assumption no chain predecessor guarantees",
    },
    CodeInfo {
        code: "nospec-speculation",
        origin: CodeOrigin::Chain,
        default_severity: Severity::Error,
        description: "a memory op that can touch an unspeculatable range was speculated",
    },
    CodeInfo {
        code: "cross-region-dead-amov",
        origin: CodeOrigin::Chain,
        default_severity: Severity::Warning,
        description: "AMOV after the last scan, dead chain-wide by the entry queue reset",
    },
    CodeInfo {
        code: "chain-unreachable-check",
        origin: CodeOrigin::Chain,
        default_severity: Severity::Warning,
        description: "required check whose derived address ranges are provably disjoint",
    },
];

/// Looks a code up in the table.
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code == code)
}

/// `true` when `code` is registered.
pub fn is_known(code: &str) -> bool {
    lookup(code).is_some()
}

/// Severity overrides from `--deny CODE` / `--allow CODE` flags.
#[derive(Clone, Debug, Default)]
pub struct LintPolicy {
    deny: Vec<String>,
    allow: Vec<String>,
}

impl LintPolicy {
    /// Builds a policy, rejecting unknown codes (a typo in a CI gate must
    /// fail loudly, not silently gate nothing).
    ///
    /// # Errors
    /// Returns the offending code when it is not in [`CODES`].
    pub fn new(
        deny: impl IntoIterator<Item = String>,
        allow: impl IntoIterator<Item = String>,
    ) -> Result<Self, String> {
        let deny: Vec<String> = deny.into_iter().collect();
        let allow: Vec<String> = allow.into_iter().collect();
        for c in deny.iter().chain(allow.iter()) {
            if !is_known(c) {
                return Err(format!(
                    "unknown diagnostic code '{c}' (see `smarq lint --list`)"
                ));
            }
        }
        Ok(LintPolicy { deny, allow })
    }

    /// `true` when no overrides are configured.
    pub fn is_empty(&self) -> bool {
        self.deny.is_empty() && self.allow.is_empty()
    }

    /// Applies the policy to one finding: deny ⇒ Error, allow ⇒ Info;
    /// allow wins when both name the code.
    pub fn apply(&self, d: &mut Diagnostic) {
        if self.allow.iter().any(|c| c == d.code) {
            d.severity = Severity::Info;
        } else if self.deny.iter().any(|c| c == d.code) {
            d.severity = Severity::Error;
        }
    }

    /// Applies the policy to every finding in `diags`.
    pub fn apply_all(&self, diags: &mut [Diagnostic]) {
        for d in diags {
            self.apply(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_nonempty() {
        for (i, a) in CODES.iter().enumerate() {
            assert!(!a.code.is_empty() && !a.description.is_empty());
            for b in &CODES[i + 1..] {
                assert_ne!(a.code, b.code, "duplicate code");
            }
        }
    }

    #[test]
    fn every_default_lint_pass_is_registered() {
        for p in crate::lint::default_passes() {
            let info = lookup(p.name()).unwrap_or_else(|| panic!("unregistered: {}", p.name()));
            assert_eq!(info.origin, CodeOrigin::Lint);
        }
    }

    #[test]
    fn chain_codes_are_registered() {
        for c in [
            "chain-writemask-gap",
            "chain-entry-state",
            "nospec-speculation",
            "cross-region-dead-amov",
            "chain-unreachable-check",
        ] {
            assert_eq!(lookup(c).unwrap().origin, CodeOrigin::Chain);
        }
    }

    #[test]
    fn policy_rejects_unknown_codes_and_overrides_severity() {
        assert!(LintPolicy::new(vec!["not-a-code".into()], vec![]).is_err());
        let policy =
            LintPolicy::new(vec!["dead-amov".into()], vec!["redundant-check".into()]).unwrap();
        let mut warn = Diagnostic::new(Severity::Warning, 0, "dead-amov", "x");
        policy.apply(&mut warn);
        assert_eq!(warn.severity, Severity::Error);
        let mut red = Diagnostic::new(Severity::Warning, 0, "redundant-check", "x");
        policy.apply(&mut red);
        assert_eq!(red.severity, Severity::Info);
        // Allow wins over deny on the same code.
        let both = LintPolicy::new(vec!["dead-amov".into()], vec!["dead-amov".into()]).unwrap();
        let mut d = Diagnostic::new(Severity::Warning, 0, "dead-amov", "x");
        both.apply(&mut d);
        assert_eq!(d.severity, Severity::Info);
    }
}
