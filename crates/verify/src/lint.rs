//! Pluggable lint passes over optimized regions.
//!
//! Where the replay validator ([`crate::replay`]) proves hard correctness
//! properties, lint passes flag *quality* problems — wasted checks, dead
//! `AMOV`s, register pressure close to the hardware limit — plus one
//! redundant structural safety net (`unprotected-speculation`). Each pass
//! sees the same [`LintContext`] the validator worked from and appends
//! [`Diagnostic`]s; adding a pass means implementing [`LintPass`] and
//! registering it in [`default_passes`] (or passing a custom set to
//! [`run_passes`]).

use crate::facts::RegionFacts;
use smarq::range::{Interval, ACCESS_BYTES};
use smarq::{AliasCode, Allocation, Diagnostic, MemOpId, RegionSpec, Severity};

/// Everything a lint pass may inspect about one optimized region.
pub struct LintContext<'a> {
    /// Region index in formation order (goes into diagnostics).
    pub region_id: usize,
    /// The original superblock's memory shape.
    pub spec: &'a RegionSpec,
    /// The final memory schedule.
    pub schedule: &'a [MemOpId],
    /// The emitted allocation under scrutiny.
    pub alloc: &'a Allocation,
    /// The *hardware* alias register count the region will run on (the
    /// allocation's working set must fit it).
    pub num_regs: u32,
    /// Independently derived protection requirements.
    pub facts: &'a RegionFacts,
    /// Derived access-address interval per [`MemOpId`] index (⊤ where
    /// unknown), from the value-range analysis; `None` when no range
    /// analysis ran. Range-aware passes refine their verdicts with it.
    pub addr: Option<&'a [Interval]>,
}

/// `true` when two word accesses with the given start-address intervals
/// provably never overlap (both bounded, footprints disjoint).
pub(crate) fn provably_disjoint(a: Interval, b: Interval) -> bool {
    if a.is_bottom() || b.is_bottom() || a.is_top() || b.is_top() {
        return false;
    }
    a.hi.saturating_add(ACCESS_BYTES - 1) < b.lo || b.hi.saturating_add(ACCESS_BYTES - 1) < a.lo
}

/// One lint pass. Implementations must be pure observers: they read the
/// context and append diagnostics, nothing else.
pub trait LintPass {
    /// Stable pass name (also used as the diagnostic code prefix).
    fn name(&self) -> &'static str;
    /// One-line description for `smarq lint --list`.
    fn description(&self) -> &'static str;
    /// Runs the pass, appending any findings to `out`.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The built-in passes, in execution order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(RedundantCheck),
        Box::new(DeadAmov),
        Box::new(OverflowRisk),
        Box::new(UnprotectedSpeculation),
    ]
}

/// Runs `passes` over `cx`, returning their combined findings.
pub fn run_passes(cx: &LintContext<'_>, passes: &[Box<dyn LintPass>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in passes {
        p.run(cx, &mut out);
    }
    out
}

/// Flags emitted `C` bits that no required check justifies: the scan is
/// pure overhead — it can only ever examine ranges the op either never
/// aliases or must not be examining at all.
pub struct RedundantCheck;

impl LintPass for RedundantCheck {
    fn name(&self) -> &'static str {
        "redundant-check"
    }
    fn description(&self) -> &'static str {
        "C bit emitted for an op that is not required to check anything"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (pc, code) in cx.alloc.code().iter().enumerate() {
            let AliasCode::Op {
                id, c_bit: true, ..
            } = *code
            else {
                continue;
            };
            if !cx.facts.requires_c(id) {
                out.push(
                    Diagnostic::new(
                        Severity::Warning,
                        cx.region_id,
                        "redundant-check",
                        format!("{id} checks alias registers but no check-constraint needs it"),
                    )
                    .with_op(id)
                    .with_span(pc, pc + 1),
                );
            }
        }
    }
}

/// Flags `AMOV`s whose effect nothing downstream can observe: a relocation
/// preserving a range no later op is required to check, or a clean-up
/// executed after the last scan of the region.
pub struct DeadAmov;

impl LintPass for DeadAmov {
    fn name(&self) -> &'static str {
        "dead-amov"
    }
    fn description(&self) -> &'static str {
        "AMOV whose moved or cleared range no later check can observe"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let code = cx.alloc.code();
        // Ops with a C bit at each code position, for the "any scan left?"
        // question, and their ids for the "required check left?" question.
        let later_checkers: Vec<Vec<MemOpId>> = {
            let mut acc: Vec<MemOpId> = Vec::new();
            let mut per_pc: Vec<Vec<MemOpId>> = vec![Vec::new(); code.len()];
            for pc in (0..code.len()).rev() {
                per_pc[pc] = acc.clone();
                if let AliasCode::Op {
                    id, c_bit: true, ..
                } = code[pc]
                {
                    acc.push(id);
                }
            }
            per_pc
        };
        for (pc, c) in code.iter().enumerate() {
            let AliasCode::Amov(amov) = c else { continue };
            let dead = if amov.is_move {
                // A relocation is justified only by a checker still to come
                // that is required to examine the moved range.
                !later_checkers[pc]
                    .iter()
                    .any(|&x| cx.facts.is_required_check(x, amov.moved_op))
            } else {
                // A clean-up is justified only by *some* scan still to
                // come — it exists to hide the range from that scan.
                later_checkers[pc].is_empty()
            };
            if dead {
                let what = if amov.is_move {
                    "relocates a range no later op is required to check"
                } else {
                    "clears a range after the region's last scan"
                };
                out.push(
                    Diagnostic::new(
                        Severity::Warning,
                        cx.region_id,
                        "dead-amov",
                        format!("AMOV for {} {what}", amov.moved_op),
                    )
                    .with_op(amov.moved_op)
                    .with_span(pc, pc + 1),
                );
            }
        }
    }
}

/// Flags allocations that exceed — or come within an eighth of — the
/// hardware alias register file. Overflow is an error (the region cannot
/// run under speculation); near-overflow is a warning (one more hoist or a
/// larger unroll tips it over, costing a retranslation).
///
/// The register demand is **re-derived from the code stream** — the
/// largest offset any `P`/`C` op or `AMOV` references, and the largest
/// rotation amount — rather than trusting the allocation's recorded
/// `working_set()` statistic. A tampered or miscomputed statistic that
/// *understates* the demand would otherwise hide a genuine overflow.
pub struct OverflowRisk;

/// The minimal alias register file the code stream can run on: every
/// referenced offset must exist (`offset < N`) and every rotation must
/// fit (`amount <= N`), per [`smarq::AliasQueue`] semantics.
fn derived_working_set(alloc: &Allocation) -> u32 {
    let mut need = 0u32;
    for c in alloc.code() {
        match *c {
            AliasCode::Op {
                p_bit,
                c_bit,
                offset: Some(o),
                ..
            } if p_bit || c_bit => need = need.max(o.value() + 1),
            AliasCode::Amov(a) => {
                need = need
                    .max(a.src_offset.value() + 1)
                    .max(a.dst_offset.value() + 1);
            }
            AliasCode::Rotate(r) => need = need.max(r.amount),
            _ => {}
        }
    }
    need
}

impl LintPass for OverflowRisk {
    fn name(&self) -> &'static str {
        "overflow-risk"
    }
    fn description(&self) -> &'static str {
        "re-derived working set exceeds or crowds the hardware alias register file"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let ws = derived_working_set(cx.alloc);
        let recorded = cx.alloc.working_set();
        let hw = cx.num_regs;
        let liar = if ws > recorded {
            format!(" (recorded working set {recorded} understates the code stream)")
        } else {
            String::new()
        };
        if ws > hw {
            out.push(Diagnostic::new(
                Severity::Error,
                cx.region_id,
                "overflow-risk",
                format!("working set {ws} exceeds the {hw}-register hardware file{liar}"),
            ));
        } else if u64::from(ws) * 8 >= u64::from(hw) * 7 {
            out.push(Diagnostic::new(
                Severity::Warning,
                cx.region_id,
                "overflow-risk",
                format!(
                    "working set {ws} uses >= 7/8 of the {hw}-register hardware file; \
                     one more hoisted op risks an allocation overflow{liar}"
                ),
            ));
        }
    }
}

/// Structural completeness check: every required check-constraint must be
/// backed by the emitted bits — the checkee sets a register (`P`) and the
/// checker scans (`C`). The replay validator proves the same property
/// end-to-end; this pass exists to localize the failure to the exact
/// missing bit.
///
/// Range-aware: when the value-range analysis supplies address intervals
/// ([`LintContext::addr`]) and the pair's access footprints are provably
/// disjoint, the missing bit cannot cause a missed alias at runtime — the
/// finding is downgraded from [`Severity::Error`] to
/// [`Severity::Warning`] (the may-alias fact is stale, not the bits).
pub struct UnprotectedSpeculation;

impl LintPass for UnprotectedSpeculation {
    fn name(&self) -> &'static str {
        "unprotected-speculation"
    }
    fn description(&self) -> &'static str {
        "a required check-constraint lacks its emitted P or C bit"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (checker, checkee) in cx.facts.required_checks() {
            let witness = format!("{checker} ->check {checkee}");
            let harmless = cx.addr.is_some_and(|addr| {
                provably_disjoint(addr[checker.index()], addr[checkee.index()])
            });
            let (sev, note) = if harmless {
                (
                    Severity::Warning,
                    " (derived address ranges are disjoint, so the pair cannot alias)",
                )
            } else {
                (Severity::Error, "")
            };
            match cx.alloc.op(checkee) {
                Some(a) if a.p_bit => {}
                _ => out.push(
                    Diagnostic::new(
                        sev,
                        cx.region_id,
                        "unprotected-speculation",
                        format!(
                            "{checkee} was reordered or stands in for an eliminated op \
                             but sets no alias register{note}"
                        ),
                    )
                    .with_op(checkee)
                    .with_witness(witness.clone()),
                ),
            }
            match cx.alloc.op(checker) {
                Some(a) if a.c_bit => {}
                _ => out.push(
                    Diagnostic::new(
                        sev,
                        cx.region_id,
                        "unprotected-speculation",
                        format!("{checker} must check {checkee}'s register but has no C bit{note}"),
                    )
                    .with_op(checker)
                    .with_witness(witness),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq::alloc::AllocStats;
    use smarq::{allocate, AmovInsn, DepGraph, MemKind, Offset, OpAlias};

    /// Paper Figure 2 region + schedule + a clean allocation.
    fn figure2() -> (RegionSpec, Vec<MemOpId>, Allocation) {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Load, 3);
        r.set_may_alias(m1, m2, true);
        r.set_may_alias(m3, m0, true);
        r.set_may_alias(m3, m2, true);
        let deps = DepGraph::compute(&r);
        let sched = vec![m3, m1, m2, m0];
        let alloc = allocate(&r, &deps, &sched, 64).unwrap();
        (r, sched, alloc)
    }

    fn run_pass(
        pass: &dyn LintPass,
        spec: &RegionSpec,
        schedule: &[MemOpId],
        alloc: &Allocation,
        num_regs: u32,
    ) -> Vec<Diagnostic> {
        run_pass_ranged(pass, spec, schedule, alloc, num_regs, None)
    }

    fn run_pass_ranged(
        pass: &dyn LintPass,
        spec: &RegionSpec,
        schedule: &[MemOpId],
        alloc: &Allocation,
        num_regs: u32,
        addr: Option<&[Interval]>,
    ) -> Vec<Diagnostic> {
        let facts = RegionFacts::derive(spec, schedule);
        let cx = LintContext {
            region_id: 0,
            spec,
            schedule,
            alloc,
            num_regs,
            facts: &facts,
            addr,
        };
        let mut out = Vec::new();
        pass.run(&cx, &mut out);
        out
    }

    /// Rebuilds `alloc` with `edit` applied to its code stream.
    fn with_code(
        spec: &RegionSpec,
        alloc: &Allocation,
        edit: impl Fn(Vec<AliasCode>) -> Vec<AliasCode>,
    ) -> Allocation {
        let per_op: Vec<_> = (0..spec.len())
            .map(|i| alloc.op(MemOpId::new(i)).copied())
            .collect();
        Allocation::from_parts(
            per_op,
            edit(alloc.code().to_vec()),
            alloc.working_set(),
            alloc.stats(),
            alloc.final_checks().to_vec(),
        )
    }

    #[test]
    fn redundant_check_clean_region_passes() {
        let (r, sched, alloc) = figure2();
        assert!(run_pass(&RedundantCheck, &r, &sched, &alloc, 64).is_empty());
    }

    #[test]
    fn redundant_check_flags_gratuitous_c_bit() {
        let (r, sched, alloc) = figure2();
        // m3 is a pure producer; give it a C bit it does not need.
        let m3 = MemOpId::new(3);
        let tampered = with_code(&r, &alloc, |code| {
            code.into_iter()
                .map(|c| match c {
                    AliasCode::Op {
                        id, p_bit, offset, ..
                    } if id == m3 => AliasCode::Op {
                        id,
                        p_bit,
                        c_bit: true,
                        offset,
                    },
                    other => other,
                })
                .collect()
        });
        let diags = run_pass(&RedundantCheck, &r, &sched, &tampered, 64);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "redundant-check");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].op, Some(m3));
    }

    #[test]
    fn dead_amov_legit_cleanup_passes() {
        let (r, sched, alloc) = figure2();
        // Insert a clean-up AMOV for m3 *before* the region's remaining
        // scans: it hides the range from them, so it is justified.
        let m3 = MemOpId::new(3);
        let off = alloc.op(m3).unwrap().offset;
        let amov = AliasCode::Amov(AmovInsn {
            moved_op: m3,
            src_offset: off,
            dst_offset: off,
            is_move: false,
        });
        let edited = with_code(&r, &alloc, |mut code| {
            code.insert(1, amov);
            code
        });
        let diags = run_pass(&DeadAmov, &r, &sched, &edited, 64);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dead_amov_flags_cleanup_after_last_scan() {
        let (r, sched, alloc) = figure2();
        let m3 = MemOpId::new(3);
        let off = alloc.op(m3).unwrap().offset;
        let amov = AliasCode::Amov(AmovInsn {
            moved_op: m3,
            src_offset: off,
            dst_offset: off,
            is_move: false,
        });
        let tampered = with_code(&r, &alloc, |mut code| {
            code.push(amov); // after every scan: guards nothing
            code
        });
        let diags = run_pass(&DeadAmov, &r, &sched, &tampered, 64);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "dead-amov");
        assert_eq!(diags[0].op, Some(m3));
    }

    #[test]
    fn dead_amov_flags_relocation_nobody_checks() {
        let (r, sched, alloc) = figure2();
        // m1's range is required by nobody (m1 stays in order below m2):
        // "relocating" it is dead even with scans still to come.
        let m1 = MemOpId::new(1);
        let amov = AliasCode::Amov(AmovInsn {
            moved_op: m1,
            src_offset: Offset(0),
            dst_offset: Offset(1),
            is_move: true,
        });
        let tampered = with_code(&r, &alloc, |mut code| {
            code.insert(0, amov);
            code
        });
        let diags = run_pass(&DeadAmov, &r, &sched, &tampered, 64);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "dead-amov");
        assert_eq!(diags[0].op, Some(m1));
    }

    #[test]
    fn overflow_risk_roomy_file_passes() {
        let (r, sched, alloc) = figure2();
        assert!(run_pass(&OverflowRisk, &r, &sched, &alloc, 64).is_empty());
    }

    #[test]
    fn overflow_risk_flags_overflow_and_crowding() {
        let (r, sched, alloc) = figure2();
        let ws = alloc.working_set();
        // Hardware file smaller than the working set: hard error.
        let diags = run_pass(&OverflowRisk, &r, &sched, &alloc, ws - 1);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "overflow-risk");
        assert_eq!(diags[0].severity, Severity::Error);
        // Exactly-full file: fits, but crowded — warning.
        let diags = run_pass(&OverflowRisk, &r, &sched, &alloc, ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn overflow_risk_ignores_understated_working_set_stat() {
        let (r, sched, alloc) = figure2();
        // Graft an AMOV referencing offset 3 into the code stream while
        // the recorded working-set statistic stays at the original
        // (smaller) value: the code stream now demands a 4-register file
        // the statistic understates.
        let m3 = MemOpId::new(3);
        let tampered = with_code(&r, &alloc, |mut code| {
            code.push(AliasCode::Amov(AmovInsn {
                moved_op: m3,
                src_offset: Offset(3),
                dst_offset: Offset(3),
                is_move: false,
            }));
            code
        });
        assert_eq!(derived_working_set(&tampered), 4);
        assert!(tampered.working_set() < 4, "statistic must understate");
        // Positive: one register short of the re-derived demand is an
        // overflow, regardless of the lying statistic.
        let diags = run_pass(&OverflowRisk, &r, &sched, &tampered, 3);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("understates"), "{diags:?}");
        // Negative at the exact boundary: the demand just fits — crowding
        // warning at most, never an error.
        let diags = run_pass(&OverflowRisk, &r, &sched, &tampered, 4);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn unprotected_speculation_disjoint_ranges_downgrade_to_warning() {
        let (r, sched, alloc) = figure2();
        // Strip the hoisted load's P bit so both its check-pairs fire.
        let m3 = MemOpId::new(3);
        let per_op: Vec<_> = (0..r.len())
            .map(|i| {
                let id = MemOpId::new(i);
                let mut a = alloc.op(id).copied();
                if id == m3 {
                    if let Some(op_alias) = a.as_mut() {
                        op_alias.p_bit = false;
                    }
                }
                a
            })
            .collect();
        let tampered = Allocation::from_parts(
            per_op,
            alloc.code().to_vec(),
            alloc.working_set(),
            alloc.stats(),
            alloc.final_checks().to_vec(),
        );
        // Without range information: hard errors.
        let diags = run_pass(&UnprotectedSpeculation, &r, &sched, &tampered, 64);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        // Provably disjoint footprints: the missing bit cannot miss a real
        // alias, so the findings downgrade to warnings.
        let addrs = [
            Interval::exact(0x000),
            Interval::exact(0x100),
            Interval::exact(0x200),
            Interval::exact(0x300),
        ];
        let diags = run_pass_ranged(
            &UnprotectedSpeculation,
            &r,
            &sched,
            &tampered,
            64,
            Some(&addrs),
        );
        assert!(!diags.is_empty());
        assert!(
            diags.iter().all(|d| d.severity == Severity::Warning),
            "{diags:?}"
        );
        // ⊤ addresses (nothing proven) must not downgrade.
        let tops = [Interval::TOP; 4];
        let diags = run_pass_ranged(
            &UnprotectedSpeculation,
            &r,
            &sched,
            &tampered,
            64,
            Some(&tops),
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn unprotected_speculation_clean_region_passes() {
        let (r, sched, alloc) = figure2();
        assert!(run_pass(&UnprotectedSpeculation, &r, &sched, &alloc, 64).is_empty());
    }

    #[test]
    fn unprotected_speculation_flags_stripped_bits() {
        let (r, sched, alloc) = figure2();
        let (m0, m3) = (MemOpId::new(0), MemOpId::new(3));
        // Strip the P bit from the hoisted load's metadata and the C bit
        // from one checker: both halves of the pass must fire.
        let strip = |a: Option<OpAlias>, id: MemOpId, target: MemOpId, p: bool| match a {
            Some(mut op_alias) if id == target => {
                if p {
                    op_alias.p_bit = false;
                } else {
                    op_alias.c_bit = false;
                }
                Some(op_alias)
            }
            other => other,
        };
        let per_op: Vec<_> = (0..r.len())
            .map(|i| {
                let id = MemOpId::new(i);
                let a = alloc.op(id).copied();
                let a = strip(a, id, m3, true);
                strip(a, id, m0, false)
            })
            .collect();
        let tampered = Allocation::from_parts(
            per_op,
            alloc.code().to_vec(),
            alloc.working_set(),
            AllocStats::default(),
            alloc.final_checks().to_vec(),
        );
        let diags = run_pass(&UnprotectedSpeculation, &r, &sched, &tampered, 64);
        assert!(
            diags
                .iter()
                .any(|d| d.op == Some(m3) && d.code == "unprotected-speculation"),
            "missing P finding: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.op == Some(m0) && d.code == "unprotected-speculation"),
            "missing C finding: {diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn pass_names_and_descriptions_are_stable() {
        let names: Vec<_> = default_passes().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "redundant-check",
                "dead-amov",
                "overflow-risk",
                "unprotected-speculation"
            ]
        );
        for p in default_passes() {
            assert!(!p.description().is_empty());
        }
    }
}
