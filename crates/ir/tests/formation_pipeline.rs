//! Integration: formation → unrolling → region lowering compose correctly
//! on real profiled programs.

use smarq::DepGraph;
use smarq_guest::{AluOp, CmpOp, Interpreter, ProgramBuilder, Reg};
use smarq_ir::{
    build_region_spec, form_superblock, unroll_superblock, AliasAnalysis, FormationParams,
};

fn pointer_loop() -> (smarq_guest::Program, smarq_guest::BlockId) {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let head = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), 300);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(4), 0x2000);
    b.jump(entry, head);
    b.ld(head, Reg(5), Reg(3), 0);
    b.st(head, Reg(5), Reg(4), 0); // cross-pointer: may-alias
    b.ld(head, Reg(6), Reg(3), 8); // same base as first load: disjoint
    b.alu_imm(head, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(head, CmpOp::Lt, Reg(1), Reg(2), head, done);
    b.halt(done);
    (b.finish(entry), head)
}

#[test]
fn lowering_reflects_the_analysis_after_unrolling() {
    let (p, head) = pointer_loop();
    let mut i = Interpreter::new();
    i.run(&p, 1_000_000);
    let sb = form_superblock(&p, i.profile(), head, FormationParams::default());
    let (u, applied) = unroll_superblock(&sb, 3, 512);
    assert_eq!(applied, 3);

    let analysis = AliasAnalysis::new(&u);
    let (spec, map) = build_region_spec(&u, &analysis);
    assert_eq!(spec.len(), 9, "3 memops x 3 replicas");
    assert_eq!(map.len(), 9);

    // Within one replica: [r3+0] vs [r3+8] disambiguated; vs [r4] may.
    let ids: Vec<_> = (0..9).map(smarq::MemOpId::new).collect();
    assert!(!spec.may_alias(ids[0], ids[2]));
    assert!(spec.may_alias(ids[0], ids[1]));
    // Across replicas nothing is provable (r3/r4 unchanged, same version —
    // the loads at [r3+0] in different replicas are MUST aliases).
    assert!(spec.may_alias(ids[0], ids[3]));

    // Dependences exist and the unrolled region allocates cleanly when the
    // loads hoist above the cross-pointer stores.
    let deps = DepGraph::compute(&spec);
    assert!(
        deps.has_dep(ids[1], ids[3]),
        "store then next replica's load"
    );
    let schedule = vec![
        ids[0], ids[2], ids[1], ids[3], ids[5], ids[4], ids[6], ids[8], ids[7],
    ];
    let alloc = smarq::allocate(&spec, &deps, &schedule, 64).unwrap();
    smarq::validate::validate_allocation(&spec, &deps, &schedule, &alloc).unwrap();
}

#[test]
fn origins_repeat_across_replicas() {
    let (p, head) = pointer_loop();
    let mut i = Interpreter::new();
    i.run(&p, 1_000_000);
    let sb = form_superblock(&p, i.profile(), head, FormationParams::default());
    let (u, _) = unroll_superblock(&sb, 2, 512);
    let body = sb.ops.len() - 1;
    for k in 0..body {
        assert_eq!(u.origins[k], u.origins[k + body], "replica provenance");
    }
}
