//! # smarq-ir — optimizer IR, superblock formation and alias analysis
//!
//! The dynamic optimizer of the SMARQ paper forms *superblock* regions
//! along hot execution paths, translates them into an internal
//! representation, and runs a deliberately simple binary-level alias
//! analysis (expensive analyses are impractical at runtime — paper §1, §7).
//! This crate provides those pieces:
//!
//! * [`IrOp`]/[`Superblock`]: a single-entry, multiple-side-exit region of
//!   straight-line operations over the 64+64 target register files, with
//!   provenance back to guest blocks/instructions;
//! * [`form_superblock`]: region formation following the profile's biased
//!   successors from a hot block until a cold block, a cycle, or a size
//!   limit (paper §6);
//! * [`AliasAnalysis`]: `base register version + displacement`
//!   disambiguation — precise *no-alias*/*must-alias* for accesses off the
//!   same base value, conservative *may-alias* otherwise (the class of
//!   simple analyses the paper cites as the practical choice for dynamic
//!   optimizers);
//! * [`build_region_spec`]: lowering of the superblock's memory operations
//!   into a [`smarq::RegionSpec`] for constraint analysis and alias
//!   register allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod form;
mod range;
mod regionmap;
mod sblock;
mod unroll;

pub use alias::{AliasAnalysis, AliasRel, MemRef};
pub use form::{form_superblock, FormationParams};
pub use range::{
    analyze_superblock, analyze_superblock_top, apply_alu, bottom_state, nospec_taint, SbRanges,
};
pub use regionmap::{build_region_spec, RegionMap};
pub use sblock::{IrExit, IrOp, OpOrigin, Superblock};
pub use unroll::unroll_superblock;
