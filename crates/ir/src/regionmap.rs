//! Lowering a superblock's memory operations into a [`smarq::RegionSpec`].

use crate::alias::{AliasAnalysis, AliasRel};
use crate::sblock::Superblock;
use smarq::{MemKind, MemOpId, RegionSpec};

/// Mapping between superblock op indices and [`MemOpId`]s, plus the alias
/// relations the optimizer needs beyond the region spec (must-alias
/// knowledge drives eliminations; the spec itself only tracks may-alias).
#[derive(Clone, Debug)]
pub struct RegionMap {
    /// `mem_ids[k]` = superblock op index of memory op `k`.
    op_index: Vec<usize>,
    /// Reverse map: superblock op index → memory op id.
    mem_id: Vec<Option<MemOpId>>,
}

impl RegionMap {
    /// Superblock op index of memory operation `id`.
    pub fn op_index(&self, id: MemOpId) -> usize {
        self.op_index[id.index()]
    }

    /// Memory op id of superblock op `index`, if it is a memory op.
    pub fn mem_id(&self, index: usize) -> Option<MemOpId> {
        self.mem_id.get(index).copied().flatten()
    }

    /// Number of memory operations.
    pub fn len(&self) -> usize {
        self.op_index.len()
    }

    /// `true` when the region has no memory operations.
    pub fn is_empty(&self) -> bool {
        self.op_index.is_empty()
    }
}

/// Builds the [`RegionSpec`] for a superblock from the alias analysis:
/// every memory operation in original order, with explicit pairwise
/// may-alias facts (`May`/`Must` → may alias, `No` → no alias).
///
/// Eliminations are recorded by the optimizer afterwards via
/// [`RegionSpec::add_load_elim`]/[`RegionSpec::add_store_elim`].
pub fn build_region_spec(sb: &Superblock, analysis: &AliasAnalysis) -> (RegionSpec, RegionMap) {
    let mut spec = RegionSpec::new();
    let mut op_index = Vec::new();
    let mut mem_id = vec![None; sb.ops.len()];
    for (i, op) in sb.ops.iter().enumerate() {
        if !op.is_mem() {
            continue;
        }
        let kind = if op.is_store() {
            MemKind::Store
        } else {
            MemKind::Load
        };
        // Distinct loc classes; aliasing is set explicitly below.
        let id = spec.push(kind, op_index.len() as u32);
        mem_id[i] = Some(id);
        op_index.push(i);
    }
    for a in 0..op_index.len() {
        for b in (a + 1)..op_index.len() {
            let rel = analysis.relation(op_index[a], op_index[b]);
            let may = rel != AliasRel::No;
            spec.set_may_alias(MemOpId::new(a), MemOpId::new(b), may);
        }
    }
    (spec, RegionMap { op_index, mem_id })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sblock::{IrExit, IrOp, OpOrigin};
    use smarq::DepGraph;
    use smarq_guest::BlockId;

    fn sb(ops: Vec<IrOp>) -> Superblock {
        let n = ops.len();
        let mut ops = ops;
        ops.push(IrOp::Exit {
            exit_id: 0,
            cond: None,
        });
        Superblock {
            origins: vec![
                OpOrigin {
                    block: BlockId(0),
                    instr: 0
                };
                n + 1
            ],
            ops,
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        }
    }

    #[test]
    fn spec_mirrors_kinds_and_relations() {
        let s = sb(vec![
            IrOp::Ld {
                rd: 1,
                base: 2,
                disp: 0,
            },
            IrOp::St {
                rs: 1,
                base: 2,
                disp: 8,
            },
            IrOp::FSt {
                fs: 0,
                base: 3,
                disp: 0,
            },
        ]);
        let a = AliasAnalysis::new(&s);
        let (spec, map) = build_region_spec(&s, &a);
        assert_eq!(spec.len(), 3);
        assert_eq!(map.len(), 3);
        assert_eq!(map.op_index(MemOpId::new(0)), 0);
        assert_eq!(map.mem_id(1), Some(MemOpId::new(1)));
        assert_eq!(map.mem_id(3), None); // the exit
                                         // Same base, disjoint disps: no alias. Different base: may.
        assert!(!spec.may_alias(MemOpId::new(0), MemOpId::new(1)));
        assert!(spec.may_alias(MemOpId::new(0), MemOpId::new(2)));
        assert_eq!(spec.op(MemOpId::new(2)).kind, MemKind::Store);
        // Dependences follow: no dep between disambiguated pair.
        let deps = DepGraph::compute(&spec);
        assert!(!deps.has_dep(MemOpId::new(0), MemOpId::new(1)));
        assert!(deps.has_dep(MemOpId::new(0), MemOpId::new(2)));
    }

    #[test]
    fn empty_region_is_fine() {
        let s = sb(vec![IrOp::IConst { rd: 1, value: 0 }]);
        let a = AliasAnalysis::new(&s);
        let (spec, map) = build_region_spec(&s, &a);
        assert!(spec.is_empty());
        assert!(map.is_empty());
    }
}
