//! Superblock formation from execution profiles (paper §6: "the dynamic
//! optimizer forms a region along the hot execution paths starting from the
//! basic block until it reaches a cold block").

use crate::sblock::{IrExit, IrOp, OpOrigin, Superblock};
use smarq_guest::{BlockId, Instr, Profile, Program, Terminator};

/// Parameters of hot-region formation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FormationParams {
    /// A block joins the trace only if its execution count reaches this.
    pub cold_threshold: u64,
    /// Maximum number of guest blocks per superblock.
    pub max_blocks: usize,
    /// Maximum number of IR operations per superblock.
    pub max_ops: usize,
}

impl Default for FormationParams {
    fn default() -> Self {
        FormationParams {
            cold_threshold: 10,
            max_blocks: 16,
            max_ops: 512,
        }
    }
}

fn translate_instr(i: &Instr) -> IrOp {
    match *i {
        Instr::IConst { rd, value } => IrOp::IConst { rd: rd.0, value },
        Instr::Alu { op, rd, ra, rb } => IrOp::Alu {
            op,
            rd: rd.0,
            ra: ra.0,
            rb: rb.0,
        },
        Instr::AluImm { op, rd, ra, imm } => IrOp::AluImm {
            op,
            rd: rd.0,
            ra: ra.0,
            imm,
        },
        Instr::FConst { fd, value } => IrOp::FConst { fd: fd.0, value },
        Instr::Fpu { op, fd, fa, fb } => IrOp::Fpu {
            op,
            fd: fd.0,
            fa: fa.0,
            fb: fb.0,
        },
        Instr::ItoF { fd, ra } => IrOp::ItoF { fd: fd.0, ra: ra.0 },
        Instr::FtoI { rd, fa } => IrOp::FtoI { rd: rd.0, fa: fa.0 },
        Instr::Ld { rd, base, disp } => IrOp::Ld {
            rd: rd.0,
            base: base.0,
            disp,
        },
        Instr::St { rs, base, disp } => IrOp::St {
            rs: rs.0,
            base: base.0,
            disp,
        },
        Instr::FLd { fd, base, disp } => IrOp::FLd {
            fd: fd.0,
            base: base.0,
            disp,
        },
        Instr::FSt { fs, base, disp } => IrOp::FSt {
            fs: fs.0,
            base: base.0,
            disp,
        },
    }
}

/// Forms a superblock starting at `start`, following the profile's biased
/// successors until a halt, a trace cycle (loop back-edge), a cold block,
/// or a size limit. Every off-trace branch direction becomes a conditional
/// side exit; the region ends with an unconditional exit to the next guest
/// block (or to `None` for halt).
///
/// ```
/// use smarq_guest::{ProgramBuilder, Interpreter, Reg, CmpOp, AluOp};
/// use smarq_ir::{form_superblock, FormationParams};
///
/// let mut b = ProgramBuilder::new();
/// let head = b.block();
/// let done = b.block();
/// b.iconst(head, Reg(2), 1);
/// b.alu_imm(head, AluOp::Add, Reg(1), Reg(1), 1);
/// b.branch(head, CmpOp::Lt, Reg(1), Reg(2), head, done);
/// b.halt(done);
/// let p = b.finish(head);
/// let mut interp = Interpreter::new();
/// interp.run(&p, 10_000);
/// let sb = form_superblock(&p, interp.profile(), head, FormationParams::default());
/// assert_eq!(sb.entry, head);
/// sb.validate().unwrap();
/// ```
pub fn form_superblock(
    program: &Program,
    profile: &Profile,
    start: BlockId,
    params: FormationParams,
) -> Superblock {
    let mut ops = Vec::new();
    let mut origins = Vec::new();
    let mut exits = Vec::new();
    let mut trace = Vec::new();

    let push_exit = |ops: &mut Vec<IrOp>,
                     origins: &mut Vec<OpOrigin>,
                     exits: &mut Vec<IrExit>,
                     block: BlockId,
                     target: Option<BlockId>,
                     cond: Option<(smarq_guest::CmpOp, u8, u8)>| {
        let exit_id = exits.len() as u32;
        exits.push(IrExit { target });
        ops.push(IrOp::Exit { exit_id, cond });
        origins.push(OpOrigin::terminator(block));
    };

    let mut cur = start;
    loop {
        trace.push(cur);
        let block = program.block(cur);
        for (i, instr) in block.instrs.iter().enumerate() {
            ops.push(translate_instr(instr));
            origins.push(OpOrigin {
                block: cur,
                instr: i as u32,
            });
        }

        // Decide the on-trace successor. An unprofiled branch (possible
        // only for the start block in pathological cases) falls back to its
        // fall-through direction; the cold-threshold test below will then
        // terminate the trace.
        let succ = profile.biased_successor(program, cur).or(match block.term {
            Terminator::Branch { fallthrough, .. } => Some(fallthrough),
            _ => None,
        });
        let stop_reason = match succ {
            None => Some(None), // Halt (or unprofiled block): end the region.
            Some(next) => {
                if trace.contains(&next)
                    || trace.len() >= params.max_blocks
                    || ops.len() >= params.max_ops
                    || profile.block_count(next) < params.cold_threshold
                {
                    Some(Some(next))
                } else {
                    None
                }
            }
        };

        match block.term {
            Terminator::Halt => {
                push_exit(&mut ops, &mut origins, &mut exits, cur, None, None);
                break;
            }
            Terminator::Jump(t) => {
                match stop_reason {
                    Some(target) => {
                        push_exit(&mut ops, &mut origins, &mut exits, cur, target, None);
                        break;
                    }
                    None => {
                        cur = t; // fall through along the trace
                    }
                }
            }
            Terminator::Branch {
                op,
                ra,
                rb,
                taken,
                fallthrough,
            } => {
                let next = succ.expect("branch always has a successor");
                // Side exit toward the off-trace direction.
                if taken == fallthrough {
                    // Degenerate branch: behaves like a jump.
                } else if next == taken {
                    push_exit(
                        &mut ops,
                        &mut origins,
                        &mut exits,
                        cur,
                        Some(fallthrough),
                        Some((op.negate(), ra.0, rb.0)),
                    );
                } else {
                    push_exit(
                        &mut ops,
                        &mut origins,
                        &mut exits,
                        cur,
                        Some(taken),
                        Some((op, ra.0, rb.0)),
                    );
                }
                match stop_reason {
                    Some(target) => {
                        push_exit(&mut ops, &mut origins, &mut exits, cur, target, None);
                        break;
                    }
                    None => cur = next,
                }
            }
        }
    }

    // Guarantee the final unconditional exit exists (Jump/Branch paths that
    // broke out pushed it; Halt pushed one too).
    let sb = Superblock {
        ops,
        origins,
        exits,
        entry: start,
        trace,
    };
    debug_assert!(sb.validate().is_ok(), "{:?}", sb.validate());
    sb
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{AluOp, CmpOp, Interpreter, ProgramBuilder, Reg};

    /// A loop head with a biased branch back to itself and a cold exit.
    fn looping_program() -> (Program, BlockId) {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), 100);
        b.iconst(entry, Reg(3), 0x1000);
        b.jump(entry, body);
        b.ld(body, Reg(4), Reg(3), 0);
        b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(body, Reg(4), Reg(3), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        (b.finish(entry), body)
    }

    #[test]
    fn loop_body_forms_single_block_region_with_backedge() {
        let (p, body) = looping_program();
        let mut i = Interpreter::new();
        i.run(&p, 100_000);
        let sb = form_superblock(&p, i.profile(), body, FormationParams::default());
        sb.validate().unwrap();
        assert_eq!(sb.trace, vec![body]);
        // Side exit to `done` (the cold direction) + final exit back to body.
        assert_eq!(sb.exits.len(), 2);
        assert_eq!(sb.exits[1].target, Some(body), "loop back-edge");
        assert_eq!(sb.mem_op_count(), 2);
        // The conditional exit tests the *negated* loop condition.
        let cond_exit = sb
            .ops
            .iter()
            .find_map(|o| match o {
                IrOp::Exit { cond: Some(c), .. } => Some(*c),
                _ => None,
            })
            .unwrap();
        assert_eq!(cond_exit.0, CmpOp::Ge);
    }

    #[test]
    fn multi_block_trace_follows_bias() {
        // entry -> a -> b -> a (loop over two blocks), c cold.
        let mut bld = ProgramBuilder::new();
        let entry = bld.block();
        let a = bld.block();
        let bb = bld.block();
        let cold = bld.block();
        bld.iconst(entry, Reg(1), 0);
        bld.iconst(entry, Reg(2), 50);
        bld.jump(entry, a);
        bld.alu_imm(a, AluOp::Add, Reg(1), Reg(1), 1);
        bld.jump(a, bb);
        bld.alu_imm(bb, AluOp::Add, Reg(3), Reg(3), 2);
        bld.branch(bb, CmpOp::Lt, Reg(1), Reg(2), a, cold);
        bld.halt(cold);
        let p = bld.finish(entry);
        let mut i = Interpreter::new();
        i.run(&p, 100_000);
        let sb = form_superblock(&p, i.profile(), a, FormationParams::default());
        sb.validate().unwrap();
        assert_eq!(sb.trace, vec![a, bb]);
        assert_eq!(sb.exits.last().unwrap().target, Some(a));
    }

    #[test]
    fn cold_successor_ends_the_trace() {
        let (p, body) = looping_program();
        let mut i = Interpreter::new();
        i.run(&p, 100_000);
        // Form from the entry block: its successor (body) is hot, then the
        // trace stops when it would revisit body.
        let sb = form_superblock(&p, i.profile(), p.entry(), FormationParams::default());
        sb.validate().unwrap();
        assert_eq!(sb.trace, vec![p.entry(), body]);
    }

    #[test]
    fn max_blocks_is_respected() {
        let (p, _body) = looping_program();
        let mut i = Interpreter::new();
        i.run(&p, 100_000);
        let sb = form_superblock(
            &p,
            i.profile(),
            p.entry(),
            FormationParams {
                max_blocks: 1,
                ..FormationParams::default()
            },
        );
        assert_eq!(sb.trace.len(), 1);
        sb.validate().unwrap();
    }

    #[test]
    fn halting_block_ends_with_halt_exit() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.iconst(e, Reg(1), 1);
        b.halt(e);
        let p = b.finish(e);
        let mut i = Interpreter::new();
        i.run(&p, 100);
        let sb = form_superblock(&p, i.profile(), e, FormationParams::default());
        sb.validate().unwrap();
        assert_eq!(sb.exits.len(), 1);
        assert_eq!(sb.exits[0].target, None);
    }
}
