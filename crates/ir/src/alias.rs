//! Simple binary-level alias analysis.
//!
//! The paper (§1, §7) argues that dynamic optimizers cannot afford strong
//! alias analysis and instead rely on a simple, fast one plus hardware
//! detection for the speculated remainder. We implement the standard
//! `base register version + displacement` disambiguation: two accesses are
//! compared precisely when they use the *same value* of the same base
//! register (same SSA-style version within the region); any other pair is
//! conservatively *may-alias* — exactly the class of pairs the optimizer
//! speculates on.

use crate::sblock::Superblock;

/// Result of an alias query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AliasRel {
    /// Provably disjoint.
    No,
    /// Unknown — the speculation target.
    May,
    /// Provably the same word.
    Must,
}

/// A symbolic memory reference: `base register` at a specific definition
/// `version`, plus a byte displacement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Base register.
    pub base: u8,
    /// Definition version of the base register at the access point.
    pub version: u32,
    /// Byte displacement.
    pub disp: i64,
}

impl MemRef {
    /// Relation between two 8-byte accesses.
    pub fn relation(&self, other: &MemRef) -> AliasRel {
        if self.base != other.base || self.version != other.version {
            return AliasRel::May;
        }
        // Same base value. The word actually accessed is `(base + disp) >>
        // 3` and nothing pins the base's low bits at analysis time:
        //  * equal displacements hit the same word for every base value;
        //  * displacements 8+ bytes apart can never share a word;
        //  * anything closer straddles a word boundary for *some* base
        //    values, so folding displacements to aligned windows here
        //    would mis-disambiguate unaligned pointers (found by the
        //    differential fuzzer; see tests/corpus/seed_000012.s).
        if self.disp == other.disp {
            AliasRel::Must
        } else if self.disp.abs_diff(other.disp) >= 8 {
            AliasRel::No
        } else {
            AliasRel::May
        }
    }
}

/// Alias analysis over a superblock: a [`MemRef`] for every memory
/// operation, queryable by op index.
#[derive(Clone, Debug)]
pub struct AliasAnalysis {
    /// `refs[i]` is `Some(MemRef)` when op `i` is a memory operation.
    refs: Vec<Option<MemRef>>,
}

impl AliasAnalysis {
    /// Runs the analysis over `sb`.
    pub fn new(sb: &Superblock) -> Self {
        let mut version = [0u32; 64];
        let mut refs = Vec::with_capacity(sb.ops.len());
        for op in &sb.ops {
            let r = op.mem_addr().map(|(base, disp)| MemRef {
                base,
                version: version[base as usize],
                disp,
            });
            refs.push(r);
            if let Some(rd) = op.int_def() {
                version[rd as usize] += 1;
            }
        }
        AliasAnalysis { refs }
    }

    /// The memory reference of op `i`, if it is a memory op.
    pub fn mem_ref(&self, i: usize) -> Option<MemRef> {
        self.refs.get(i).copied().flatten()
    }

    /// Alias relation between ops `i` and `j`.
    ///
    /// # Panics
    /// Panics if either op is not a memory operation.
    pub fn relation(&self, i: usize, j: usize) -> AliasRel {
        let a = self.refs[i].expect("op i is a memory op");
        let b = self.refs[j].expect("op j is a memory op");
        a.relation(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sblock::{IrExit, IrOp, OpOrigin};
    use smarq_guest::{AluOp, BlockId};

    fn sb(ops: Vec<IrOp>) -> Superblock {
        let n = ops.len();
        let mut ops = ops;
        ops.push(IrOp::Exit {
            exit_id: 0,
            cond: None,
        });
        Superblock {
            origins: vec![
                OpOrigin {
                    block: BlockId(0),
                    instr: 0
                };
                n + 1
            ],
            ops,
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        }
    }

    #[test]
    fn same_base_same_version_disambiguates() {
        let s = sb(vec![
            IrOp::Ld {
                rd: 1,
                base: 2,
                disp: 0,
            },
            IrOp::St {
                rs: 1,
                base: 2,
                disp: 8,
            },
            IrOp::St {
                rs: 1,
                base: 2,
                disp: 0,
            },
        ]);
        let a = AliasAnalysis::new(&s);
        assert_eq!(a.relation(0, 1), AliasRel::No);
        assert_eq!(a.relation(0, 2), AliasRel::Must);
        assert_eq!(a.relation(1, 2), AliasRel::No);
    }

    #[test]
    fn different_bases_may_alias() {
        let s = sb(vec![
            IrOp::Ld {
                rd: 1,
                base: 2,
                disp: 0,
            },
            IrOp::St {
                rs: 1,
                base: 3,
                disp: 0,
            },
        ]);
        let a = AliasAnalysis::new(&s);
        assert_eq!(a.relation(0, 1), AliasRel::May);
    }

    #[test]
    fn base_redefinition_bumps_version() {
        let s = sb(vec![
            IrOp::Ld {
                rd: 1,
                base: 2,
                disp: 0,
            },
            IrOp::AluImm {
                op: AluOp::Add,
                rd: 2,
                ra: 2,
                imm: 8,
            },
            IrOp::Ld {
                rd: 3,
                base: 2,
                disp: 0,
            },
        ]);
        let a = AliasAnalysis::new(&s);
        // Different versions of r2: conservatively may-alias, even though
        // a smarter analysis would prove disjointness.
        assert_eq!(a.relation(0, 2), AliasRel::May);
        assert_eq!(a.mem_ref(0).unwrap().version, 0);
        assert_eq!(a.mem_ref(2).unwrap().version, 1);
    }

    #[test]
    fn loads_redefining_their_own_base() {
        // ld r2 = [r2]: the access uses version 0; later accesses see v1.
        let s = sb(vec![
            IrOp::Ld {
                rd: 2,
                base: 2,
                disp: 0,
            },
            IrOp::Ld {
                rd: 1,
                base: 2,
                disp: 0,
            },
        ]);
        let a = AliasAnalysis::new(&s);
        assert_eq!(a.mem_ref(0).unwrap().version, 0);
        assert_eq!(a.mem_ref(1).unwrap().version, 1);
        assert_eq!(a.relation(0, 1), AliasRel::May);
    }

    #[test]
    fn sub_word_displacements_depend_on_base_alignment() {
        // With base = 8k the two accesses share a word; with base = 8k+4
        // they do not. Absent alignment facts the analysis must say May in
        // both directions — folding to aligned windows miscompiled
        // unaligned pointers (caught by the differential fuzzer).
        let at = |disp| MemRef {
            base: 1,
            version: 0,
            disp,
        };
        assert_eq!(at(1).relation(&at(6)), AliasRel::May);
        assert_eq!(at(0).relation(&at(7)), AliasRel::May);
        assert_eq!(at(12).relation(&at(16)), AliasRel::May);
        // Equal displacements are Must for every base value; 8+ bytes
        // apart can never share a word.
        assert_eq!(at(6).relation(&at(6)), AliasRel::Must);
        assert_eq!(at(0).relation(&at(8)), AliasRel::No);
        assert_eq!(at(16).relation(&at(4)), AliasRel::No);
    }

    #[test]
    fn non_mem_ops_have_no_ref() {
        let s = sb(vec![IrOp::IConst { rd: 1, value: 3 }]);
        let a = AliasAnalysis::new(&s);
        assert_eq!(a.mem_ref(0), None);
    }
}
