//! Superblock loop unrolling.
//!
//! The paper (§2.2) argues that "large scheduling/optimization regions are
//! critical for achieving good performance on in-order processors" and
//! that larger regions need more alias registers — the scalability
//! motivation for SMARQ. Unrolling is the standard way a dynamic optimizer
//! grows loop regions.
//!
//! A superblock whose final exit returns to its own entry (a loop region)
//! is unrolled by replicating its body: the unconditional back-edge exit
//! between replicas disappears, while every conditional side exit is kept
//! (each iteration can still leave early). Registers carry from replica to
//! replica exactly as they would across iterations, so the transformation
//! is semantics-preserving by construction; op origins repeat, so runtime
//! alias blacklisting applies to every replica at once.

use crate::sblock::{IrOp, Superblock};

/// Unrolls `sb` by `factor` if it is a self-loop region, bounded by
/// `max_ops`. Returns the unrolled superblock and the factor actually
/// applied (1 when the region is not a self-loop, `factor <= 1`, or the
/// body would exceed `max_ops`).
///
/// ```
/// use smarq_guest::{ProgramBuilder, Interpreter, Reg, CmpOp, AluOp};
/// use smarq_ir::{form_superblock, unroll_superblock, FormationParams};
///
/// let mut b = ProgramBuilder::new();
/// let head = b.block();
/// let done = b.block();
/// b.iconst(head, Reg(2), 100);
/// b.alu_imm(head, AluOp::Add, Reg(1), Reg(1), 1);
/// b.branch(head, CmpOp::Lt, Reg(1), Reg(2), head, done);
/// b.halt(done);
/// let p = b.finish(head);
/// let mut i = Interpreter::new();
/// i.run(&p, 10_000);
/// let sb = form_superblock(&p, i.profile(), head, FormationParams::default());
/// let (unrolled, applied) = unroll_superblock(&sb, 4, 512);
/// assert_eq!(applied, 4);
/// assert!(unrolled.ops.len() > 3 * sb.ops.len());
/// unrolled.validate().unwrap();
/// ```
pub fn unroll_superblock(sb: &Superblock, factor: u32, max_ops: usize) -> (Superblock, u32) {
    debug_assert!(sb.validate().is_ok());
    let is_self_loop = sb
        .exits
        .last()
        .map(|e| e.target == Some(sb.entry))
        .unwrap_or(false)
        && matches!(sb.ops.last(), Some(IrOp::Exit { cond: None, .. }));
    if !is_self_loop || factor <= 1 {
        return (sb.clone(), 1);
    }

    let body_len = sb.ops.len() - 1; // without the final back-edge exit
    let mut applied = factor.min(((max_ops.saturating_sub(1)) / body_len.max(1)) as u32);
    if applied <= 1 {
        return (sb.clone(), 1);
    }
    let final_exit = *sb.ops.last().expect("non-empty superblock");
    let final_origin = *sb.origins.last().expect("origins aligned");

    let mut ops = Vec::with_capacity(body_len * applied as usize + 1);
    let mut origins = Vec::with_capacity(ops.capacity());
    for _ in 0..applied {
        ops.extend_from_slice(&sb.ops[..body_len]);
        origins.extend_from_slice(&sb.origins[..body_len]);
    }
    ops.push(final_exit);
    origins.push(final_origin);

    let out = Superblock {
        ops,
        origins,
        exits: sb.exits.clone(),
        entry: sb.entry,
        trace: sb.trace.clone(),
    };
    debug_assert!(out.validate().is_ok());
    // `applied` is at least 2 here.
    if out.ops.len() > max_ops {
        applied = 1;
        return (sb.clone(), applied);
    }
    (out, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::{form_superblock, FormationParams};
    use smarq_guest::{AluOp, CmpOp, Interpreter, ProgramBuilder, Reg};

    fn loop_program() -> (smarq_guest::Program, smarq_guest::BlockId) {
        let mut b = ProgramBuilder::new();
        let head = b.block();
        let done = b.block();
        b.iconst(head, Reg(2), 500);
        b.ld(head, Reg(4), Reg(3), 0);
        b.st(head, Reg(4), Reg(3), 8);
        b.alu_imm(head, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(head, CmpOp::Lt, Reg(1), Reg(2), head, done);
        b.halt(done);
        (b.finish(head), head)
    }

    fn loop_sb() -> Superblock {
        let (p, head) = loop_program();
        let mut i = Interpreter::new();
        i.run(&p, 100_000);
        form_superblock(&p, i.profile(), head, FormationParams::default())
    }

    #[test]
    fn unrolls_self_loops() {
        let sb = loop_sb();
        let body = sb.ops.len() - 1;
        let (u, applied) = unroll_superblock(&sb, 3, 512);
        assert_eq!(applied, 3);
        assert_eq!(u.ops.len(), 3 * body + 1);
        u.validate().unwrap();
        // Side exits replicate; the exit table does not.
        assert_eq!(u.exits.len(), sb.exits.len());
        let orig_side_exits = sb.ops.iter().filter(|o| o.is_exit()).count() - 1;
        let side_exits = u.ops.iter().filter(|o| o.is_exit()).count();
        assert_eq!(side_exits, 3 * orig_side_exits + 1);
        // Memory operations scale with the factor.
        assert_eq!(u.mem_op_count(), 3 * sb.mem_op_count());
    }

    #[test]
    fn factor_capped_by_max_ops() {
        let sb = loop_sb();
        let body = sb.ops.len() - 1;
        let (u, applied) = unroll_superblock(&sb, 100, body * 4 + 1);
        assert!(applied <= 4, "applied {applied}");
        assert!(u.ops.len() <= body * 4 + 1);
    }

    #[test]
    fn non_loops_are_untouched() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.iconst(e, Reg(1), 1);
        b.halt(e);
        let p = b.finish(e);
        let mut i = Interpreter::new();
        i.run(&p, 100);
        let sb = form_superblock(&p, i.profile(), e, FormationParams::default());
        let (u, applied) = unroll_superblock(&sb, 8, 512);
        assert_eq!(applied, 1);
        assert_eq!(u, sb);
    }

    #[test]
    fn factor_one_is_identity() {
        let sb = loop_sb();
        let (u, applied) = unroll_superblock(&sb, 1, 512);
        assert_eq!(applied, 1);
        assert_eq!(u, sb);
    }
}
