//! The superblock IR.

use smarq_guest::{AluOp, BlockId, CmpOp, FpuOp};

/// Where an IR operation came from in the guest program (used to identify
/// memory operations stably across re-translations, e.g. for the runtime's
/// alias blacklist).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpOrigin {
    /// Guest block.
    pub block: BlockId,
    /// Instruction index within the block; `u32::MAX` marks operations
    /// synthesized from the block terminator (side exits).
    pub instr: u32,
}

impl OpOrigin {
    /// Origin of a terminator-synthesized op.
    pub fn terminator(block: BlockId) -> Self {
        OpOrigin {
            block,
            instr: u32::MAX,
        }
    }
}

/// A region exit target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IrExit {
    /// The guest block to continue at; `None` means program halt.
    pub target: Option<BlockId>,
}

/// A straight-line IR operation. Registers are physical target registers
/// (`0..64` in each file); guest state lives in `0..32`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum IrOp {
    /// `rd = value`.
    IConst {
        /// Destination.
        rd: u8,
        /// Immediate.
        value: i64,
    },
    /// `rd = ra <op> rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// First source.
        ra: u8,
        /// Second source.
        rb: u8,
    },
    /// `rd = ra <op> imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Source.
        ra: u8,
        /// Immediate.
        imm: i64,
    },
    /// `rd = ra`.
    Copy {
        /// Destination.
        rd: u8,
        /// Source.
        ra: u8,
    },
    /// `fd = value`.
    FConst {
        /// Destination.
        fd: u8,
        /// Immediate.
        value: f64,
    },
    /// `fd = fa <op> fb`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: u8,
        /// First source.
        fa: u8,
        /// Second source.
        fb: u8,
    },
    /// `fd = fa`.
    FCopy {
        /// Destination.
        fd: u8,
        /// Source.
        fa: u8,
    },
    /// `fd = (f64) ra`.
    ItoF {
        /// Destination.
        fd: u8,
        /// Source.
        ra: u8,
    },
    /// `rd = (i64) fa`.
    FtoI {
        /// Destination.
        rd: u8,
        /// Source.
        fa: u8,
    },
    /// Integer load.
    Ld {
        /// Destination.
        rd: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
    },
    /// Integer store.
    St {
        /// Source.
        rs: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
    },
    /// FP load.
    FLd {
        /// Destination.
        fd: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
    },
    /// FP store.
    FSt {
        /// Source.
        fs: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
    },
    /// Region exit: unconditional when `cond` is `None`, otherwise taken
    /// when the predicate holds. Exits are scheduling barriers.
    Exit {
        /// Index into [`Superblock::exits`].
        exit_id: u32,
        /// Optional predicate `(op, ra, rb)`.
        cond: Option<(CmpOp, u8, u8)>,
    },
}

impl IrOp {
    /// `true` for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            IrOp::Ld { .. } | IrOp::St { .. } | IrOp::FLd { .. } | IrOp::FSt { .. }
        )
    }

    /// `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, IrOp::St { .. } | IrOp::FSt { .. })
    }

    /// `true` for region exits.
    pub fn is_exit(&self) -> bool {
        matches!(self, IrOp::Exit { .. })
    }

    /// `(base, disp)` of a memory operation, if it is one.
    pub fn mem_addr(&self) -> Option<(u8, i64)> {
        match *self {
            IrOp::Ld { base, disp, .. }
            | IrOp::St { base, disp, .. }
            | IrOp::FLd { base, disp, .. }
            | IrOp::FSt { base, disp, .. } => Some((base, disp)),
            _ => None,
        }
    }

    /// Destination integer register, if any.
    pub fn int_def(&self) -> Option<u8> {
        match *self {
            IrOp::IConst { rd, .. }
            | IrOp::Alu { rd, .. }
            | IrOp::AluImm { rd, .. }
            | IrOp::Copy { rd, .. }
            | IrOp::FtoI { rd, .. }
            | IrOp::Ld { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Destination FP register, if any.
    pub fn fp_def(&self) -> Option<u8> {
        match *self {
            IrOp::FConst { fd, .. }
            | IrOp::Fpu { fd, .. }
            | IrOp::FCopy { fd, .. }
            | IrOp::ItoF { fd, .. }
            | IrOp::FLd { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// Integer source registers.
    pub fn int_uses(&self) -> Vec<u8> {
        match *self {
            IrOp::Alu { ra, rb, .. } => vec![ra, rb],
            IrOp::AluImm { ra, .. } | IrOp::Copy { ra, .. } | IrOp::ItoF { ra, .. } => vec![ra],
            IrOp::Ld { base, .. } | IrOp::FLd { base, .. } | IrOp::FSt { base, .. } => vec![base],
            IrOp::St { rs, base, .. } => vec![rs, base],
            IrOp::Exit {
                cond: Some((_, ra, rb)),
                ..
            } => vec![ra, rb],
            _ => vec![],
        }
    }

    /// FP source registers.
    pub fn fp_uses(&self) -> Vec<u8> {
        match *self {
            IrOp::Fpu { fa, fb, .. } => vec![fa, fb],
            IrOp::FCopy { fa, .. } | IrOp::FtoI { fa, .. } => vec![fa],
            IrOp::FSt { fs, .. } => vec![fs],
            _ => vec![],
        }
    }
}

/// A superblock region: straight-line ops with side exits, plus provenance.
#[derive(Clone, PartialEq, Debug)]
pub struct Superblock {
    /// Operations in original (guest) program order.
    pub ops: Vec<IrOp>,
    /// Provenance of each op (same length as `ops`).
    pub origins: Vec<OpOrigin>,
    /// Exit table.
    pub exits: Vec<IrExit>,
    /// The guest block the region starts at.
    pub entry: BlockId,
    /// The guest blocks forming the trace, in order.
    pub trace: Vec<BlockId>,
}

impl Superblock {
    /// Number of memory operations.
    pub fn mem_op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_mem()).count()
    }

    /// Indices of memory operations, in program order.
    pub fn mem_op_indices(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_mem())
            .map(|(i, _)| i)
            .collect()
    }

    /// Basic structural validation (exit ids in range, final op is an
    /// unconditional exit, origins aligned).
    pub fn validate(&self) -> Result<(), String> {
        if self.ops.len() != self.origins.len() {
            return Err("origins out of sync with ops".into());
        }
        match self.ops.last() {
            Some(IrOp::Exit { cond: None, .. }) => {}
            _ => return Err("superblock must end with an unconditional exit".into()),
        }
        for op in &self.ops {
            if let IrOp::Exit { exit_id, .. } = op {
                if *exit_id as usize >= self.exits.len() {
                    return Err(format!("exit id {exit_id} out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification_and_uses() {
        let st = IrOp::St {
            rs: 3,
            base: 4,
            disp: 8,
        };
        assert!(st.is_mem() && st.is_store());
        assert_eq!(st.mem_addr(), Some((4, 8)));
        assert_eq!(st.int_uses(), vec![3, 4]);
        assert_eq!(st.int_def(), None);

        let ld = IrOp::Ld {
            rd: 1,
            base: 2,
            disp: 0,
        };
        assert_eq!(ld.int_def(), Some(1));
        assert_eq!(ld.int_uses(), vec![2]);

        let fst = IrOp::FSt {
            fs: 5,
            base: 6,
            disp: 0,
        };
        assert_eq!(fst.fp_uses(), vec![5]);
        assert_eq!(fst.int_uses(), vec![6]);

        let exit = IrOp::Exit {
            exit_id: 0,
            cond: Some((smarq_guest::CmpOp::Lt, 1, 2)),
        };
        assert!(exit.is_exit());
        assert_eq!(exit.int_uses(), vec![1, 2]);
    }

    #[test]
    fn validation_catches_missing_final_exit() {
        let sb = Superblock {
            ops: vec![IrOp::IConst { rd: 1, value: 0 }],
            origins: vec![OpOrigin {
                block: BlockId(0),
                instr: 0,
            }],
            exits: vec![],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        };
        assert!(sb.validate().is_err());
    }

    #[test]
    fn validation_checks_exit_range() {
        let sb = Superblock {
            ops: vec![IrOp::Exit {
                exit_id: 1,
                cond: None,
            }],
            origins: vec![OpOrigin::terminator(BlockId(0))],
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        };
        assert!(sb.validate().is_err());
    }

    #[test]
    fn mem_op_indexing() {
        let sb = Superblock {
            ops: vec![
                IrOp::IConst { rd: 1, value: 1 },
                IrOp::Ld {
                    rd: 2,
                    base: 1,
                    disp: 0,
                },
                IrOp::St {
                    rs: 2,
                    base: 1,
                    disp: 8,
                },
                IrOp::Exit {
                    exit_id: 0,
                    cond: None,
                },
            ],
            origins: vec![
                OpOrigin {
                    block: BlockId(0),
                    instr: 0,
                },
                OpOrigin {
                    block: BlockId(0),
                    instr: 1,
                },
                OpOrigin {
                    block: BlockId(0),
                    instr: 2,
                },
                OpOrigin::terminator(BlockId(0)),
            ],
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        };
        assert!(sb.validate().is_ok());
        assert_eq!(sb.mem_op_count(), 2);
        assert_eq!(sb.mem_op_indices(), vec![1, 2]);
    }
}
