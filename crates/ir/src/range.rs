//! Interval transfer over superblock IR.
//!
//! Steps a [`Superblock`]'s straight-line ops from an abstract entry
//! register state ([`smarq::RegState`]), deriving:
//!
//! * the **address interval** of every memory operation (the base
//!   register's interval shifted by the displacement), evaluated at the
//!   op's program point;
//! * the register state at every region **exit**, for chain-graph
//!   propagation in `crates/verify`.
//!
//! Superblocks are loop-free, so this is a single pass with no widening.
//! The same transfer is used by the optimizer (to *taint* operations
//! whose address can touch an unspeculatable range) and by the static
//! chain analyzer (to independently re-derive those ranges) — keeping the
//! two in one place is what makes the analyzer's nospec verdicts exact
//! rather than heuristic.

use crate::sblock::{IrOp, Superblock};
use smarq::range::{top_state, Interval, NospecRanges, RegState};
use smarq_guest::AluOp;

/// Sound abstract counterpart of [`AluOp::apply`] (wrapping semantics:
/// any result that may wrap is ⊤). Exact inputs always fold concretely.
pub fn apply_alu(op: AluOp, a: Interval, b: Interval) -> Interval {
    if a.is_bottom() || b.is_bottom() {
        return Interval::BOTTOM;
    }
    if let (Some(x), Some(y)) = (a.as_exact(), b.as_exact()) {
        return Interval::exact(op.apply(x, y));
    }
    match op {
        AluOp::Add => a + b,
        AluOp::Sub => a - b,
        AluOp::Mul => a * b,
        // 1 iff a < b; without exact inputs the best sound bound.
        AluOp::Slt => Interval::of(0, 1),
        // Bit ops, shifts and division distribute poorly over intervals;
        // ⊤ is the sound default and precision there has no consumer.
        AluOp::Div | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Shl | AluOp::Shr => Interval::TOP,
    }
}

/// Result of [`analyze_superblock`].
#[derive(Clone, Debug)]
pub struct SbRanges {
    /// Per superblock op index: the interval of the access **start
    /// address**, for memory operations (`None` otherwise).
    pub addr: Vec<Option<Interval>>,
    /// Register state at each exit (indexed by `exit_id`; joined when an
    /// id is reachable from several `Exit` ops). Exits never reached by
    /// the scan keep the all-⊥ state.
    pub exit_states: Vec<RegState>,
}

/// The all-⊥ register state (identity of [`smarq::range::join_state`]).
pub fn bottom_state() -> RegState {
    [Interval::BOTTOM; 64]
}

/// Runs the interval transfer over `sb` from `entry`. `entry` abstracts
/// the **guest** registers (`0..32`) at region entry; translator
/// temporaries (`32..`) are reset to ⊤ regardless of what `entry` says,
/// since no value flows into a region through them.
pub fn analyze_superblock(sb: &Superblock, entry: &RegState) -> SbRanges {
    let mut state = *entry;
    for r in state.iter_mut().skip(32) {
        *r = Interval::TOP;
    }
    let mut addr = Vec::with_capacity(sb.ops.len());
    let mut exit_states = vec![bottom_state(); sb.exits.len()];
    for op in &sb.ops {
        addr.push(
            op.mem_addr()
                .map(|(base, disp)| state[base as usize & 63] + Interval::exact(disp)),
        );
        match *op {
            IrOp::IConst { rd, value } => state[rd as usize & 63] = Interval::exact(value),
            IrOp::Alu { op, rd, ra, rb } => {
                state[rd as usize & 63] =
                    apply_alu(op, state[ra as usize & 63], state[rb as usize & 63]);
            }
            IrOp::AluImm { op, rd, ra, imm } => {
                state[rd as usize & 63] =
                    apply_alu(op, state[ra as usize & 63], Interval::exact(imm));
            }
            IrOp::Copy { rd, ra } => state[rd as usize & 63] = state[ra as usize & 63],
            // Values entering the integer file from memory or the FP file
            // are unconstrained.
            IrOp::FtoI { rd, .. } | IrOp::Ld { rd, .. } => state[rd as usize & 63] = Interval::TOP,
            IrOp::Exit { exit_id, .. } => {
                let slot = &mut exit_states[exit_id as usize];
                smarq::range::join_state(slot, &state);
            }
            IrOp::FConst { .. }
            | IrOp::Fpu { .. }
            | IrOp::FCopy { .. }
            | IrOp::ItoF { .. }
            | IrOp::St { .. }
            | IrOp::FLd { .. }
            | IrOp::FSt { .. } => {}
        }
    }
    SbRanges { addr, exit_states }
}

/// Per-op *taint*: `true` when the op is a memory operation whose access
/// (word footprint) can touch a configured unspeculatable range given the
/// derived address intervals. Tainted ops must never be reordered,
/// eliminated, or given P/C bits. With an unknown entry state
/// (`top_state`) every memory op is tainted — the sound fallback.
pub fn nospec_taint(sb: &Superblock, ranges: &SbRanges, nospec: &NospecRanges) -> Vec<bool> {
    if nospec.is_empty() {
        return vec![false; sb.ops.len()];
    }
    ranges
        .addr
        .iter()
        .map(|a| a.is_some_and(|iv| nospec.intersects_access(iv)))
        .collect()
}

/// [`analyze_superblock`] from the unconstrained entry state — what the
/// optimizer uses when no whole-program dataflow result is available.
pub fn analyze_superblock_top(sb: &Superblock) -> SbRanges {
    analyze_superblock(sb, &top_state())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sblock::{IrExit, OpOrigin};
    use smarq::range::zeroed_state;
    use smarq_guest::BlockId;

    fn sb(ops: Vec<IrOp>) -> Superblock {
        let n = ops.len();
        let mut ops = ops;
        ops.push(IrOp::Exit {
            exit_id: 0,
            cond: None,
        });
        Superblock {
            origins: vec![
                OpOrigin {
                    block: BlockId(0),
                    instr: 0
                };
                n + 1
            ],
            ops,
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        }
    }

    #[test]
    fn constants_flow_into_addresses() {
        let s = sb(vec![
            IrOp::IConst {
                rd: 1,
                value: 0x100,
            },
            IrOp::AluImm {
                op: AluOp::Add,
                rd: 2,
                ra: 1,
                imm: 8,
            },
            IrOp::Ld {
                rd: 3,
                base: 2,
                disp: 16,
            },
        ]);
        let r = analyze_superblock(&s, &zeroed_state());
        assert_eq!(r.addr[2], Some(Interval::exact(0x100 + 8 + 16)));
        // Loaded values are unconstrained.
        let exit = &r.exit_states[0];
        assert!(exit[3].is_top());
        assert_eq!(exit[2], Interval::exact(0x108));
    }

    #[test]
    fn temporaries_start_top_even_with_exact_entry() {
        let s = sb(vec![IrOp::Ld {
            rd: 1,
            base: 40,
            disp: 0,
        }]);
        let mut entry = zeroed_state();
        entry[40] = Interval::exact(7); // must be ignored: 40 is a temp
        let r = analyze_superblock(&s, &entry);
        assert_eq!(r.addr[0], Some(Interval::TOP));
    }

    #[test]
    fn taint_follows_nospec_ranges() {
        let s = sb(vec![
            IrOp::IConst {
                rd: 1,
                value: 0x1000,
            },
            IrOp::Ld {
                rd: 2,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0x100,
            },
        ]);
        let ranges = analyze_superblock(&s, &zeroed_state());
        let nospec = NospecRanges::parse("0x1100..0x1108").unwrap();
        let taint = nospec_taint(&s, &ranges, &nospec);
        assert_eq!(taint, vec![false, false, true, false]);
        assert!(nospec_taint(&s, &ranges, &NospecRanges::none())
            .iter()
            .all(|&t| !t));
        // In-superblock constants pin the address even from ⊤ entry.
        let top = analyze_superblock_top(&s);
        assert_eq!(nospec_taint(&s, &top, &nospec), taint);
        // An entry-dependent base is only tainted when entry is unknown.
        let s2 = sb(vec![IrOp::Ld {
            rd: 2,
            base: 1,
            disp: 0,
        }]);
        let zero = analyze_superblock(&s2, &zeroed_state());
        assert_eq!(nospec_taint(&s2, &zero, &nospec), vec![false, false]);
        let t2 = nospec_taint(&s2, &analyze_superblock_top(&s2), &nospec);
        assert_eq!(t2, vec![true, false]);
    }

    #[test]
    fn alu_transfer_is_sound_on_samples() {
        use smarq::prng::Prng;
        let mut rng = Prng::new(42);
        let ivs = [
            Interval::exact(3),
            Interval::of(-5, 9),
            Interval::of(0, 1 << 40),
            Interval::TOP,
            Interval::of(i64::MIN / 2, -3),
        ];
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Slt,
        ];
        for &a in &ivs {
            for &b in &ivs {
                for &op in &ops {
                    let out = apply_alu(op, a, b);
                    for _ in 0..64 {
                        let x = sample(&mut rng, a);
                        let y = sample(&mut rng, b);
                        assert!(
                            out.contains(op.apply(x, y)),
                            "{op:?} {a} {b}: {x} op {y} = {} not in {out}",
                            op.apply(x, y)
                        );
                    }
                }
            }
        }
    }

    fn sample(rng: &mut smarq::prng::Prng, iv: Interval) -> i64 {
        let span = iv.hi.wrapping_sub(iv.lo) as u64;
        if span == u64::MAX {
            rng.next_u64() as i64
        } else {
            iv.lo.wrapping_add((rng.next_u64() % (span + 1)) as i64)
        }
    }
}
