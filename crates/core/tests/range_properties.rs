//! Property-based tests for the interval lattice in `smarq::range`: join
//! monotonicity and lattice laws, widening termination, and soundness of
//! the interval arithmetic against concrete (wrapping) machine integers.
//!
//! Like `tests/properties.rs`, scenarios come from the in-repo seeded
//! [`Prng`] — the workspace builds offline, without proptest — and every
//! case is reproducible from its printed seed.

use smarq::prng::Prng;
use smarq::range::{join_state, widen_state, zeroed_state, Interval};

const CASES: u64 = 4096;

/// A random interval, biased across the shapes that matter: ⊥, ⊤, exact
/// points, small ranges, and ranges hugging the i64 corners.
fn interval(rng: &mut Prng) -> Interval {
    match rng.bounded(8) {
        0 => Interval::BOTTOM,
        1 => Interval::TOP,
        2 => Interval::exact(rng.range_i64(-1000, 1000)),
        3 => Interval::exact(rng.next_u64() as i64),
        4..=5 => {
            let a = rng.range_i64(-10_000, 10_000);
            let b = rng.range_i64(-10_000, 10_000);
            Interval::of(a.min(b), a.max(b))
        }
        _ => {
            let a = rng.next_u64() as i64;
            let b = rng.next_u64() as i64;
            Interval::of(a.min(b), a.max(b))
        }
    }
}

/// A concrete point inside `iv` (None for ⊥).
fn point_in(rng: &mut Prng, iv: Interval) -> Option<i64> {
    if iv.is_bottom() {
        return None;
    }
    // range_i64 is inclusive on both ends but cannot span the full
    // domain; clamp the sampling window around zero when it would.
    let (lo, hi) = (iv.lo, iv.hi);
    if lo == i64::MIN && hi == i64::MAX {
        return Some(rng.next_u64() as i64);
    }
    let span = hi.wrapping_sub(lo) as u64;
    Some(lo.wrapping_add(rng.bounded(span.saturating_add(1).max(1)) as i64))
}

#[test]
fn join_is_an_upper_bound_and_monotone() {
    let mut rng = Prng::new(0x1a77);
    for case in 0..CASES {
        let a = interval(&mut rng);
        let b = interval(&mut rng);
        let c = interval(&mut rng);
        let j = a.join(b);
        // Upper bound of both operands, commutative, idempotent.
        assert!(a.le(j) && b.le(j), "case {case}: {a} ⊔ {b} = {j}");
        assert_eq!(j, b.join(a), "case {case}: join not commutative");
        assert_eq!(a.join(a), a, "case {case}: join not idempotent");
        // Associative.
        assert_eq!(a.join(b).join(c), a.join(b.join(c)), "case {case}");
        // Monotone in each argument: a ⊑ a⊔b ⇒ a⊔c ⊑ (a⊔b)⊔c.
        assert!(a.join(c).le(j.join(c)), "case {case}: join not monotone");
        // Least-ness against a random third upper bound.
        if a.le(c) && b.le(c) {
            assert!(j.le(c), "case {case}: {j} not least below {c}");
        }
    }
}

#[test]
fn widening_terminates_every_ascending_chain() {
    let mut rng = Prng::new(0x51de ^ 0x5eed);
    for case in 0..CASES {
        // Arbitrary (not even ascending) inputs: x := x.widen(x.join(y))
        // must reach a fixpoint within 2 steps per bound — each bound
        // either holds or jumps straight to ±∞, and ±∞ is terminal.
        let mut x = interval(&mut rng);
        let mut stable = 0;
        for step in 0..8 {
            let y = interval(&mut rng);
            let next = x.widen(x.join(y));
            assert!(
                x.le(next),
                "case {case} step {step}: widen shrank {x} to {next}"
            );
            if next == x {
                stable += 1;
            } else {
                stable = 0;
                // Any growth is either the one legal ⊥-escape or a jump
                // straight to an infinite bound — never a creeping step.
                assert!(
                    x.is_bottom()
                        || ((next.lo == x.lo || next.lo == i64::MIN)
                            && (next.hi == x.hi || next.hi == i64::MAX)),
                    "case {case} step {step}: non-jump growth {x} -> {next}"
                );
            }
            x = next;
        }
        // After at most two genuine growth steps (lo jump + hi jump) the
        // chain is frozen; 8 rounds leave at least 6 stable tail steps
        // unless inputs kept arriving below the fixpoint — which still
        // cannot grow x. Verify the terminal state is genuinely fixed.
        let probe = x.widen(x.join(interval(&mut rng)));
        assert!(x.le(probe) && (probe == x || probe.lo == i64::MIN || probe.hi == i64::MAX));
        let _ = stable;
    }
}

#[test]
fn state_widening_terminates() {
    let mut rng = Prng::new(0xabcd);
    for _ in 0..64 {
        let mut st = zeroed_state();
        let mut steps = 0;
        loop {
            let mut next = zeroed_state();
            for iv in next.iter_mut() {
                *iv = interval(&mut rng);
            }
            let mut joined = st;
            join_state(&mut joined, &next);
            if !widen_state(&mut st, &joined) {
                break;
            }
            steps += 1;
            assert!(
                steps <= 2 * 64,
                "state widening failed to terminate within 2 jumps per register"
            );
        }
    }
}

#[test]
fn interval_arithmetic_contains_wrapping_results() {
    let mut rng = Prng::new(0x50_0d);
    for case in 0..CASES {
        let a = interval(&mut rng);
        let b = interval(&mut rng);
        let (Some(x), Some(y)) = (point_in(&mut rng, a), point_in(&mut rng, b)) else {
            // ⊥ operand: the result must be ⊥ as well.
            assert!((a + b).is_bottom() || (!a.is_bottom() && !b.is_bottom()));
            continue;
        };
        assert!(a.contains(x) && b.contains(y), "case {case}: bad sample");
        // Guest ALUs wrap; the abstract ops return ⊤ whenever a corner
        // leaves i64, so containment of the wrapped result must hold
        // unconditionally.
        assert!(
            (a + b).contains(x.wrapping_add(y)),
            "case {case}: {a} + {b} ∌ {x} + {y}"
        );
        assert!(
            (a - b).contains(x.wrapping_sub(y)),
            "case {case}: {a} - {b} ∌ {x} - {y}"
        );
        assert!(
            (a * b).contains(x.wrapping_mul(y)),
            "case {case}: {a} * {b} ∌ {x} * {y}"
        );
    }
}
