//! Allocator integration tests: the paper's worked examples and targeted
//! scenarios for rotation, cycles and AMOV insertion.

use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
use smarq::validate::validate_allocation;
use smarq::{
    allocate, AliasCode, Allocator, DepGraph, MemKind, MemOpId, RegionSpec, SchedulerMode,
};

/// Paper Figure 7: six memory ops, loads hoisted, rotation brings the
/// working set down to 2 registers.
fn figure7() -> (RegionSpec, DepGraph, Vec<MemOpId>) {
    let mut r = RegionSpec::new();
    let m0 = r.push(MemKind::Store, 0);
    let m1 = r.push(MemKind::Store, 1);
    let m2 = r.push(MemKind::Store, 2);
    let m3 = r.push(MemKind::Load, 3);
    let m4 = r.push(MemKind::Load, 4);
    let m5 = r.push(MemKind::Load, 5);
    r.set_may_alias(m0, m3, true);
    r.set_may_alias(m0, m5, true);
    r.set_may_alias(m1, m3, true);
    r.set_may_alias(m2, m4, true);
    let deps = DepGraph::compute(&r);
    (r, deps, vec![m3, m5, m0, m4, m1, m2])
}

#[test]
fn figure7_constraint_order_allocation_trace() {
    let (r, deps, sched) = figure7();
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let op = |i: usize| alloc.op(MemOpId::new(i)).unwrap();

    // P bits on the hoisted loads, C bits on the checking stores.
    assert!(op(3).p_bit && !op(3).c_bit);
    assert!(op(4).p_bit && !op(4).c_bit);
    assert!(op(5).p_bit && !op(5).c_bit);
    assert!(op(0).c_bit && !op(0).p_bit);
    assert!(op(1).c_bit && !op(1).p_bit);
    assert!(op(2).c_bit && !op(2).p_bit);

    // Constraint-order allocation with delayed assignment + rotation:
    // orders: m0=0 (C), m5=0, m1=1 (C), m3=1, m2=2 (C), m4=2.
    assert_eq!(op(0).order.value(), 0);
    assert_eq!(op(5).order.value(), 0);
    assert_eq!(op(1).order.value(), 1);
    assert_eq!(op(3).order.value(), 1);
    assert_eq!(op(2).order.value(), 2);
    assert_eq!(op(4).order.value(), 2);

    // Offsets after rotation: two hardware registers suffice.
    assert_eq!(op(3).offset.value(), 1);
    assert_eq!(op(5).offset.value(), 0);
    assert_eq!(op(0).offset.value(), 0);
    assert_eq!(op(4).offset.value(), 1);
    assert_eq!(op(1).offset.value(), 0);
    assert_eq!(op(2).offset.value(), 0);
    assert_eq!(alloc.working_set(), 2);

    // order = base + offset invariant everywhere.
    for i in 0..6 {
        let a = op(i);
        assert_eq!(a.order.value(), a.base.value() + a.offset.value() as u64);
    }

    // Three rotations (one after each completed allocation batch).
    let rotations: Vec<u32> = alloc
        .code()
        .iter()
        .filter_map(|c| match c {
            AliasCode::Rotate(r) => Some(r.amount),
            _ => None,
        })
        .collect();
    assert_eq!(rotations, vec![1, 1, 1]);

    validate_allocation(&r, &deps, &sched, &alloc).unwrap();

    // The paper's claim: this runs on 2 registers, while program-order
    // allocation of the same region needs 3 (P-only) or 6 (all ops).
    assert!(allocate(&r, &deps, &sched, 2).is_ok());
    let ponly = program_order_allocate(
        &r,
        &deps,
        &sched,
        64,
        BaselineOptions {
            scope: BaselineScope::POnly,
            rotate: true,
        },
    )
    .unwrap();
    assert!(alloc.working_set() <= ponly.working_set());
}

/// Builds a constraint cycle (paper §5.2, Figure 9/12 shape).
///
/// Original order (location in brackets; distinct letters never alias
/// unless stated):
///
/// | op  | insn      | role                                                |
/// |-----|-----------|-----------------------------------------------------|
/// | c1  | st [A]    | forwards to the eliminated load z1                  |
/// | s   | st [S]    | S may-alias B: checker of the hoisted x             |
/// | s2  | st [S2]   | (optional) second checker of x, scheduled last      |
/// | x   | ld [B]    | hoisted above s; forwards to the eliminated z2      |
/// | v   | st [V]    | V may-alias B; hoisted above x                      |
/// | z2  | ld [B]    | eliminated (forwarded from x)                       |
/// | y   | st [C]    | C may-alias A and B; checker of c1 via extended dep |
/// | z1  | ld [A]    | eliminated (forwarded from c1)                      |
///
/// Schedule: c1, v, x, s, y [, s2]. The edges y →check c1 (extended),
/// c1 →anti x, and the late anti x →anti y close a cycle, which the
/// allocator must break with an AMOV clearing/moving x's range.
fn cycle_region(with_second_checker: bool) -> (RegionSpec, Vec<MemOpId>, MemOpId) {
    let mut r = RegionSpec::new();
    let c1 = r.push(MemKind::Store, 0); // st A
    let s = r.push(MemKind::Store, 1); // st S
    let s2 = if with_second_checker {
        Some(r.push(MemKind::Store, 2)) // st S2
    } else {
        None
    };
    let x = r.push(MemKind::Load, 3); // ld B
    let v = r.push(MemKind::Store, 4); // st V
    let z2 = r.push(MemKind::Load, 3); // ld B (eliminated)
    let y = r.push(MemKind::Store, 5); // st C
    let z1 = r.push(MemKind::Load, 0); // ld A (eliminated)
    r.set_may_alias(c1, x, true); // A ~ B (for the anti c1 -> x)
    r.set_may_alias(s, x, true); // S ~ B (s checks the hoisted x)
    r.set_may_alias(x, v, true); // B ~ V (x checks the hoisted v)
    r.set_may_alias(v, z2, true);
    r.set_may_alias(y, c1, true); // C ~ A (y checks c1: extended dep)
    r.set_may_alias(y, z1, true);
    r.set_may_alias(x, y, true); // B ~ C (the anti x -> y closing the cycle)
    r.set_may_alias(s, z2, false);
    r.set_may_alias(c1, z2, false);
    r.set_may_alias(y, z2, false);
    if let Some(s2) = s2 {
        r.set_may_alias(s2, x, true); // S2 ~ B (unscheduled checker of x)
        r.set_may_alias(s2, z2, false);
        for other in [c1, s, v, y] {
            r.set_may_alias(s2, other, false);
        }
    }
    r.add_load_elim(x, z2);
    r.add_load_elim(c1, z1);
    let mut sched = vec![c1, v, x, s, y];
    if let Some(s2) = s2 {
        sched.push(s2);
    }
    (r, sched, x)
}

#[test]
fn cycle_broken_by_cleanup_amov() {
    let (r, sched, x) = cycle_region(false);
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let stats = alloc.stats();
    assert_eq!(stats.amovs, 1, "cycle must insert exactly one AMOV");
    assert_eq!(stats.amov_moves, 0, "no unscheduled checker: pure clean-up");
    let amov = alloc
        .code()
        .iter()
        .find_map(|c| match c {
            AliasCode::Amov(a) => Some(*a),
            _ => None,
        })
        .unwrap();
    assert!(!amov.is_move);
    assert_eq!(amov.src_offset, amov.dst_offset);
    assert_eq!(amov.moved_op, x, "x's range is cleaned up");
    validate_allocation(&r, &deps, &sched, &alloc).unwrap();
}

#[test]
fn cycle_broken_by_moving_amov() {
    let (r, sched, x) = cycle_region(true);
    let deps = DepGraph::compute(&r);
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let stats = alloc.stats();
    assert_eq!(stats.amovs, 1);
    assert_eq!(
        stats.amov_moves, 1,
        "the unscheduled s2 still needs x's range: real move"
    );
    let amov = alloc
        .code()
        .iter()
        .find_map(|c| match c {
            AliasCode::Amov(a) => Some(*a),
            _ => None,
        })
        .unwrap();
    assert!(amov.is_move);
    assert_eq!(amov.moved_op, x);
    validate_allocation(&r, &deps, &sched, &alloc).unwrap();
}

#[test]
fn figure5_load_elimination_allocation() {
    // Paper Figures 5/8/10/11: the forwarding load keeps its register live
    // for the stores; the checker store that may truly alias the *other*
    // load must not examine it.
    let mut r = RegionSpec::new();
    let m1 = r.push(MemKind::Load, 1);
    let m2 = r.push(MemKind::Load, 2);
    let m3 = r.push(MemKind::Store, 3);
    let m4 = r.push(MemKind::Store, 4);
    let m5 = r.push(MemKind::Load, 2);
    r.set_may_alias(m3, m2, true);
    r.set_may_alias(m3, m5, true);
    r.set_may_alias(m4, m1, true);
    r.add_load_elim(m2, m5);
    let deps = DepGraph::compute(&r);
    let sched = vec![m1, m2, m3, m4];
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    // m2 sets (P), m3 checks it even though they are not reordered.
    assert!(alloc.op(m2).unwrap().p_bit);
    assert!(alloc.op(m3).unwrap().c_bit);
    validate_allocation(&r, &deps, &sched, &alloc).unwrap();
}

#[test]
fn incremental_driver_reports_mode_transitions() {
    // Many overlapping hoists against a tiny register file: the allocator
    // must raise NonSpeculation before the file overflows.
    let mut r = RegionSpec::new();
    let stores: Vec<_> = (0..6).map(|i| r.push(MemKind::Store, i)).collect();
    let loads: Vec<_> = (10..16).map(|i| r.push(MemKind::Load, i)).collect();
    for i in 0..6 {
        r.set_may_alias(stores[i], loads[i], true);
    }
    let deps = DepGraph::compute(&r);
    let mut a = Allocator::new(&r, &deps, 4);
    assert_eq!(a.mode(), SchedulerMode::Speculation);
    let mut saw_non_spec = false;
    // Hoist all six loads first — pressure must cross the threshold.
    for &l in &loads {
        a.schedule_op(l).unwrap();
        if a.mode() == SchedulerMode::NonSpeculation {
            saw_non_spec = true;
            break;
        }
    }
    assert!(
        saw_non_spec,
        "six pending P registers must exceed a 4-register file"
    );
}

#[test]
fn speculation_mode_recovers_after_rotation() {
    let mut r = RegionSpec::new();
    let s0 = r.push(MemKind::Store, 0);
    let l0 = r.push(MemKind::Load, 1);
    let s1 = r.push(MemKind::Store, 2);
    let l1 = r.push(MemKind::Load, 3);
    r.set_may_alias(s0, l0, true);
    r.set_may_alias(s1, l1, true);
    let deps = DepGraph::compute(&r);
    let mut a = Allocator::new(&r, &deps, 2);
    a.schedule_op(l0).unwrap();
    assert_eq!(a.mode(), SchedulerMode::Speculation);
    a.schedule_op(s0).unwrap(); // releases l0's register via rotation
    assert_eq!(a.mode(), SchedulerMode::Speculation);
    a.schedule_op(l1).unwrap();
    a.schedule_op(s1).unwrap();
    let alloc = a.finish().unwrap();
    assert_eq!(alloc.working_set(), 1);
    validate_allocation(&r, &deps, &[l0, s0, l1, s1], &alloc).unwrap();
}

#[test]
fn overflow_error_on_fixed_schedule() {
    // Drive a fixed (already decided) schedule into a too-small file.
    let mut r = RegionSpec::new();
    let stores: Vec<_> = (0..4).map(|i| r.push(MemKind::Store, i)).collect();
    let loads: Vec<_> = (10..14).map(|i| r.push(MemKind::Load, i)).collect();
    for i in 0..4 {
        r.set_may_alias(stores[i], loads[i], true);
    }
    let deps = DepGraph::compute(&r);
    let mut sched: Vec<_> = loads.clone();
    sched.extend(stores.iter().copied());
    let err = allocate(&r, &deps, &sched, 2).unwrap_err();
    assert!(matches!(
        err,
        smarq::AllocError::Overflow { num_regs: 2, .. }
    ));
    // With enough registers it succeeds and the working set is 4.
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    assert_eq!(alloc.working_set(), 4);
}

#[test]
fn bad_schedules_are_rejected() {
    let mut r = RegionSpec::new();
    let s = r.push(MemKind::Store, 0);
    let l = r.push(MemKind::Load, 0);
    r.add_load_elim(s, l);
    let deps = DepGraph::compute(&r);
    // Eliminated op scheduled.
    assert!(allocate(&r, &deps, &[s, l], 64).is_err());
    // Duplicate.
    assert!(allocate(&r, &deps, &[s, s], 64).is_err());
    // Missing op.
    assert!(allocate(&r, &deps, &[], 64).is_err());
    // Out of range.
    assert!(allocate(&r, &deps, &[MemOpId::new(9)], 64).is_err());
}

#[test]
fn stats_track_constraints_and_bits() {
    let (r, deps, sched) = figure7();
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    let s = alloc.stats();
    assert_eq!(s.checks, 4); // m0->m3, m0->m5, m1->m3, m2->m4
    assert_eq!(s.antis, 0);
    assert_eq!(s.p_ops, 3);
    assert_eq!(s.c_ops, 3);
    assert_eq!(s.mem_ops, 6);
    assert_eq!(s.rotations, 3);
    assert_eq!(s.amovs, 0);
    assert_eq!(alloc.final_checks().len(), 4);
}

#[test]
fn program_order_schedule_needs_no_registers() {
    // Nothing reordered, nothing eliminated: no P/C bits at all.
    let mut r = RegionSpec::new();
    let a = r.push(MemKind::Store, 0);
    let b = r.push(MemKind::Load, 0);
    let c = r.push(MemKind::Store, 0);
    let deps = DepGraph::compute(&r);
    let sched = vec![a, b, c];
    let alloc = allocate(&r, &deps, &sched, 64).unwrap();
    assert_eq!(alloc.working_set(), 0);
    assert_eq!(alloc.stats().checks, 0);
    for id in [a, b, c] {
        assert!(alloc.op(id).is_none());
    }
    validate_allocation(&r, &deps, &sched, &alloc).unwrap();
}
