//! Property-based tests: for arbitrary regions, eliminations and schedules
//! the SMARQ allocation must be *sound* (every required alias detection is
//! performed) and *precise* (no possible false positive), with all
//! structural invariants intact. The symbolic hardware replay in
//! `smarq::validate` is the oracle.
//!
//! Scenarios are drawn from the in-repo seeded [`Prng`] (the workspace
//! builds offline, without proptest); every case is reproducible from its
//! printed seed.

use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
use smarq::prng::Prng;
use smarq::validate::validate_allocation;
use smarq::{
    allocate, live_range_lower_bound, AliasCode, ConstraintGraph, DepGraph, MemKind, MemOpId,
    RegionSpec,
};

const CASES: u64 = 256;

/// A randomly generated region + schedule scenario.
#[derive(Debug, Clone)]
struct Scenario {
    region: RegionSpec,
    schedule: Vec<MemOpId>,
}

/// Builds a region of up to `max_ops` ops with random kinds and a random
/// symmetric may-alias relation, then (optionally) applies random valid
/// load/store eliminations and produces a random permutation as the
/// schedule (the allocator itself never requires the schedule to respect
/// dependences; the embedding scheduler does — so any permutation is a
/// legal stress input).
fn scenario(rng: &mut Prng, max_ops: usize, elim: bool) -> Scenario {
    let n = rng.range_usize(2, max_ops + 1);
    let mut region = RegionSpec::new();
    let ids: Vec<MemOpId> = (0..n)
        .map(|i| {
            let kind = if rng.chance(1, 2) {
                MemKind::Store
            } else {
                MemKind::Load
            };
            region.push(kind, i as u32) // distinct classes; use overrides
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            region.set_may_alias(ids[i], ids[j], rng.chance(3, 10));
        }
    }

    let mut eliminated = vec![false; n];
    if elim {
        // Try a few load eliminations: a load forwarded from an earlier op
        // of any kind.
        for _ in 0..2 {
            let zi = rng.range_usize(0, n);
            let z = ids[zi];
            if eliminated[zi] || !region.op(z).kind.is_load() || zi == 0 {
                continue;
            }
            let xi = rng.range_usize(0, zi);
            if eliminated[xi] {
                continue;
            }
            region.add_load_elim(ids[xi], z);
            eliminated[zi] = true;
        }
        // Try a store elimination: an earlier store overwritten by a later
        // store.
        for _ in 0..2 {
            let xi = rng.range_usize(0, n);
            if eliminated[xi] || !region.op(ids[xi]).kind.is_store() || xi + 1 >= n {
                continue;
            }
            let zi = rng.range_usize(xi + 1, n);
            if eliminated[zi] || !region.op(ids[zi]).kind.is_store() {
                continue;
            }
            region.add_store_elim(ids[xi], ids[zi]);
            eliminated[xi] = true;
            break;
        }
    }

    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let schedule: Vec<MemOpId> = perm
        .into_iter()
        .filter(|&i| !eliminated[i])
        .map(|i| ids[i])
        .collect();
    Scenario { region, schedule }
}

/// Runs `body` on `CASES` scenarios drawn from distinct seeds; panics carry
/// the seed so failures reproduce exactly.
fn for_scenarios(salt: u64, max_ops: usize, elim: bool, body: impl Fn(&Scenario)) {
    for case in 0..CASES {
        let seed = salt.wrapping_mul(0x1000).wrapping_add(case);
        let sc = scenario(&mut Prng::new(seed), max_ops, elim);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&sc)));
        if let Err(e) = result {
            eprintln!("scenario seed {seed} (salt {salt}, case {case}) failed: {sc:?}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Reordering-only scenarios: allocation always succeeds (given enough
/// registers) and validates.
#[test]
fn reorder_only_allocations_validate() {
    for_scenarios(1, 12, false, |sc| {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX)
            .expect("allocation with unbounded registers must succeed");
        validate_allocation(&sc.region, &deps, &sc.schedule, &alloc)
            .expect("allocation must be sound and precise");
    });
}

/// Scenarios with speculative load/store eliminations: extended
/// dependences, anti-constraints, cycles and AMOVs all validate.
#[test]
fn elimination_allocations_validate() {
    for_scenarios(2, 12, true, |sc| {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX)
            .expect("allocation with unbounded registers must succeed");
        validate_allocation(&sc.region, &deps, &sc.schedule, &alloc)
            .expect("allocation must be sound and precise");
    });
}

/// order = base + offset and offsets bounded by the working set.
#[test]
fn structural_invariants() {
    for_scenarios(3, 10, true, |sc| {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX).unwrap();
        let ws = alloc.working_set();
        for (id, _) in sc.region.iter() {
            if let Some(a) = alloc.op(id) {
                assert_eq!(a.order.value(), a.base.value() + a.offset.value() as u64);
                assert!(a.offset.value() < ws.max(1));
            }
        }
        // Rotation amounts are positive; code mentions each scheduled op once.
        let mut op_count = 0usize;
        for c in alloc.code() {
            match c {
                AliasCode::Rotate(r) => assert!(r.amount > 0),
                AliasCode::Op { .. } => op_count += 1,
                AliasCode::Amov(_) => {}
            }
        }
        assert_eq!(op_count, sc.schedule.len());
    });
}

/// The live-range lower bound never exceeds SMARQ's working set, and
/// SMARQ never exceeds the program-order baselines (on reorder-only
/// regions where the baseline is defined).
#[test]
fn working_set_sandwich() {
    for_scenarios(4, 10, false, |sc| {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX).unwrap();
        let lb = live_range_lower_bound(&sc.region, &deps, &sc.schedule);
        assert!(
            lb <= alloc.working_set(),
            "lower bound {} > SMARQ {}",
            lb,
            alloc.working_set()
        );

        let ponly = program_order_allocate(
            &sc.region,
            &deps,
            &sc.schedule,
            u32::MAX,
            BaselineOptions {
                scope: BaselineScope::POnly,
                rotate: true,
            },
        )
        .unwrap();
        let allops = program_order_allocate(
            &sc.region,
            &deps,
            &sc.schedule,
            u32::MAX,
            BaselineOptions {
                scope: BaselineScope::AllOps,
                rotate: true,
            },
        )
        .unwrap();
        assert!(lb <= ponly.working_set());
        assert!(ponly.working_set() <= allops.working_set());
        validate_allocation(&sc.region, &deps, &sc.schedule, &ponly).unwrap();
        validate_allocation(&sc.region, &deps, &sc.schedule, &allops).unwrap();
    });
}

/// The allocator reports exactly the constraints the batch rules derive
/// (the incremental and batch derivations agree).
#[test]
fn incremental_matches_batch_constraints() {
    for_scenarios(5, 10, true, |sc| {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX).unwrap();
        let batch = ConstraintGraph::derive(&sc.region, &deps, &sc.schedule);
        assert_eq!(alloc.stats().checks, batch.checks().count());
        // Anti constraints: the incremental allocator skips antis whose
        // producer register was already released — a strict subset.
        assert!(alloc.stats().antis <= batch.antis().count());
        // Every batch check appears among the final performed checks.
        let finals: std::collections::HashSet<_> = alloc.final_checks().iter().copied().collect();
        for c in batch.checks() {
            assert!(
                finals.contains(&(c.src, c.dst)),
                "missing final check {:?} -> {:?}",
                c.src,
                c.dst
            );
        }
    });
}

/// Feeding the allocator with a small register file either succeeds with a
/// working set within the file, or reports Overflow — never produces an
/// invalid allocation.
#[test]
fn small_files_overflow_or_fit() {
    for_scenarios(6, 10, true, |sc| {
        let mut rng = Prng::new(sc.schedule.len() as u64 + 17);
        let regs = rng.range_u32(1, 6);
        let deps = DepGraph::compute(&sc.region);
        match allocate(&sc.region, &deps, &sc.schedule, regs) {
            Ok(alloc) => {
                assert!(alloc.working_set() <= regs);
                validate_allocation(&sc.region, &deps, &sc.schedule, &alloc).unwrap();
            }
            Err(smarq::AllocError::Overflow { num_regs, .. }) => {
                assert_eq!(num_regs, regs);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}
