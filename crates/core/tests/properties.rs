//! Property-based tests: for arbitrary regions, eliminations and schedules
//! the SMARQ allocation must be *sound* (every required alias detection is
//! performed) and *precise* (no possible false positive), with all
//! structural invariants intact. The symbolic hardware replay in
//! `smarq::validate` is the oracle.

use proptest::prelude::*;
use smarq::baseline::{program_order_allocate, BaselineOptions, BaselineScope};
use smarq::validate::validate_allocation;
use smarq::{
    allocate, live_range_lower_bound, AliasCode, ConstraintGraph, DepGraph, MemKind, MemOpId,
    RegionSpec,
};

/// A randomly generated region + schedule scenario.
#[derive(Debug, Clone)]
struct Scenario {
    region: RegionSpec,
    schedule: Vec<MemOpId>,
}

/// Builds a region of `n` ops with random kinds and a random symmetric
/// may-alias relation, then applies random valid load/store eliminations
/// and produces a random permutation as the schedule (the allocator itself
/// never requires the schedule to respect dependences; the embedding
/// scheduler does — so any permutation is a legal stress input).
fn scenario(max_ops: usize, elim: bool) -> impl Strategy<Value = Scenario> {
    (2..=max_ops)
        .prop_flat_map(move |n| {
            let kinds = proptest::collection::vec(prop::bool::ANY, n);
            let alias_bits = proptest::collection::vec(prop::bool::weighted(0.3), n * (n - 1) / 2);
            let perm = Just(()).prop_perturb(move |_, mut rng| {
                let mut v: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    v.swap(i, j);
                }
                v
            });
            let elim_seed = prop::num::u64::ANY;
            (Just(n), kinds, alias_bits, perm, elim_seed)
        })
        .prop_map(move |(n, kinds, alias_bits, perm, elim_seed)| {
            let mut region = RegionSpec::new();
            let ids: Vec<MemOpId> = (0..n)
                .map(|i| {
                    let kind = if kinds[i] {
                        MemKind::Store
                    } else {
                        MemKind::Load
                    };
                    region.push(kind, i as u32) // distinct classes; use overrides
                })
                .collect();
            let mut bit = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    region.set_may_alias(ids[i], ids[j], alias_bits[bit]);
                    bit += 1;
                }
            }

            let mut eliminated = vec![false; n];
            if elim {
                // Deterministic pseudo-random elimination picks.
                let mut state = elim_seed | 1;
                let mut next = || {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state >> 33
                };
                // Try a few load eliminations: a load forwarded from an
                // earlier op of any kind.
                for _ in 0..2 {
                    let zi = (next() as usize) % n;
                    let z = ids[zi];
                    if eliminated[zi] || !region.op(z).kind.is_load() || zi == 0 {
                        continue;
                    }
                    let xi = (next() as usize) % zi;
                    if eliminated[xi] {
                        continue;
                    }
                    region.add_load_elim(ids[xi], z);
                    eliminated[zi] = true;
                }
                // Try a store elimination: an earlier store overwritten by a
                // later store.
                for _ in 0..2 {
                    let xi = (next() as usize) % n;
                    if eliminated[xi] || !region.op(ids[xi]).kind.is_store() || xi + 1 >= n {
                        continue;
                    }
                    let zi = xi + 1 + (next() as usize) % (n - xi - 1);
                    if eliminated[zi] || !region.op(ids[zi]).kind.is_store() {
                        continue;
                    }
                    region.add_store_elim(ids[xi], ids[zi]);
                    eliminated[xi] = true;
                    break;
                }
            }

            let schedule: Vec<MemOpId> = perm
                .into_iter()
                .filter(|&i| !eliminated[i])
                .map(|i| ids[i])
                .collect();
            Scenario { region, schedule }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reordering-only scenarios: allocation always succeeds (given enough
    /// registers) and validates.
    #[test]
    fn reorder_only_allocations_validate(sc in scenario(12, false)) {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX)
            .expect("allocation with unbounded registers must succeed");
        validate_allocation(&sc.region, &deps, &sc.schedule, &alloc)
            .expect("allocation must be sound and precise");
    }

    /// Scenarios with speculative load/store eliminations: extended
    /// dependences, anti-constraints, cycles and AMOVs all validate.
    #[test]
    fn elimination_allocations_validate(sc in scenario(12, true)) {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX)
            .expect("allocation with unbounded registers must succeed");
        validate_allocation(&sc.region, &deps, &sc.schedule, &alloc)
            .expect("allocation must be sound and precise");
    }

    /// order = base + offset and offsets bounded by the working set.
    #[test]
    fn structural_invariants(sc in scenario(10, true)) {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX).unwrap();
        let ws = alloc.working_set();
        for (id, _) in sc.region.iter() {
            if let Some(a) = alloc.op(id) {
                prop_assert_eq!(
                    a.order.value(),
                    a.base.value() + a.offset.value() as u64
                );
                prop_assert!(a.offset.value() < ws.max(1));
            }
        }
        // Rotation amounts are positive; code mentions each scheduled op once.
        let mut op_count = 0usize;
        for c in alloc.code() {
            match c {
                AliasCode::Rotate(r) => prop_assert!(r.amount > 0),
                AliasCode::Op { .. } => op_count += 1,
                AliasCode::Amov(_) => {}
            }
        }
        prop_assert_eq!(op_count, sc.schedule.len());
    }

    /// The live-range lower bound never exceeds SMARQ's working set, and
    /// SMARQ never exceeds the program-order baselines (on reorder-only
    /// regions where the baseline is defined).
    #[test]
    fn working_set_sandwich(sc in scenario(10, false)) {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX).unwrap();
        let lb = live_range_lower_bound(&sc.region, &deps, &sc.schedule);
        prop_assert!(lb <= alloc.working_set(),
            "lower bound {} > SMARQ {}", lb, alloc.working_set());

        let ponly = program_order_allocate(
            &sc.region, &deps, &sc.schedule, u32::MAX,
            BaselineOptions { scope: BaselineScope::POnly, rotate: true },
        ).unwrap();
        let allops = program_order_allocate(
            &sc.region, &deps, &sc.schedule, u32::MAX,
            BaselineOptions { scope: BaselineScope::AllOps, rotate: true },
        ).unwrap();
        prop_assert!(lb <= ponly.working_set());
        prop_assert!(ponly.working_set() <= allops.working_set());
        validate_allocation(&sc.region, &deps, &sc.schedule, &ponly).unwrap();
        validate_allocation(&sc.region, &deps, &sc.schedule, &allops).unwrap();
    }

    /// The allocator reports exactly the constraints the batch rules derive
    /// (the incremental and batch derivations agree).
    #[test]
    fn incremental_matches_batch_constraints(sc in scenario(10, true)) {
        let deps = DepGraph::compute(&sc.region);
        let alloc = allocate(&sc.region, &deps, &sc.schedule, u32::MAX).unwrap();
        let batch = ConstraintGraph::derive(&sc.region, &deps, &sc.schedule);
        prop_assert_eq!(alloc.stats().checks, batch.checks().count());
        // Anti constraints: the incremental allocator skips antis whose
        // producer register was already released — a strict subset.
        prop_assert!(alloc.stats().antis <= batch.antis().count());
        // Every batch check appears among the final performed checks.
        let finals: std::collections::HashSet<_> =
            alloc.final_checks().iter().copied().collect();
        for c in batch.checks() {
            prop_assert!(finals.contains(&(c.src, c.dst)),
                "missing final check {:?} -> {:?}", c.src, c.dst);
        }
    }

    /// Feeding the allocator with a small register file either succeeds
    /// with a working set within the file, or reports Overflow — never
    /// produces an invalid allocation.
    #[test]
    fn small_files_overflow_or_fit(sc in scenario(10, true), regs in 1u32..6) {
        let deps = DepGraph::compute(&sc.region);
        match allocate(&sc.region, &deps, &sc.schedule, regs) {
            Ok(alloc) => {
                prop_assert!(alloc.working_set() <= regs);
                validate_allocation(&sc.region, &deps, &sc.schedule, &alloc).unwrap();
            }
            Err(smarq::AllocError::Overflow { num_regs, .. }) => {
                prop_assert_eq!(num_regs, regs);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }
}
