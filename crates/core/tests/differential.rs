//! Differential tests: every fast path introduced for the hot-path
//! performance work is checked against the retained reference
//! implementation on randomized inputs.
//!
//! * [`DepGraph::compute`] (sealed-region bit-matrix, output-sensitive)
//!   vs [`DepGraph::compute_naive`] (all-pairs reference).
//! * [`SealedRegion`] probes vs [`RegionSpec`] HashMap lookups.
//! * [`AliasQueue::check_first`] (bitmask short-circuit) vs the full-scan
//!   [`AliasQueue::check`] oracle, across random operation sequences.
//! * [`Allocator::with_scratch`] buffer reuse vs fresh allocators.
//!
//! Scenarios come from the in-repo seeded [`Prng`]; each failure prints
//! its seed for exact reproduction.

use smarq::prng::Prng;
use smarq::queue::AliasQueue;
use smarq::{allocate, AllocScratch, Allocator, Dep, DepGraph, MemKind, MemOpId, RegionSpec};

const CASES: u64 = 256;

/// A random region with *shared* location classes (so the sealed region's
/// class buckets are non-trivial), random overrides in both directions,
/// and random valid eliminations.
fn random_region(rng: &mut Prng, max_ops: usize) -> (RegionSpec, Vec<MemOpId>) {
    let n = rng.range_usize(2, max_ops + 1);
    let classes = rng.range_u32(1, 6);
    let mut region = RegionSpec::new();
    let ids: Vec<MemOpId> = (0..n)
        .map(|_| {
            let kind = if rng.chance(1, 2) {
                MemKind::Store
            } else {
                MemKind::Load
            };
            region.push(kind, rng.range_u32(0, classes))
        })
        .collect();
    // Random overrides: flip some pairs away from their class default.
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(1, 4) {
                region.set_may_alias(ids[i], ids[j], rng.chance(1, 2));
            }
        }
    }
    let mut eliminated = vec![false; n];
    for _ in 0..2 {
        let zi = rng.range_usize(0, n);
        if eliminated[zi] || !region.op(ids[zi]).kind.is_load() || zi == 0 {
            continue;
        }
        let xi = rng.range_usize(0, zi);
        if eliminated[xi] {
            continue;
        }
        region.add_load_elim(ids[xi], ids[zi]);
        eliminated[zi] = true;
    }
    for _ in 0..2 {
        let xi = rng.range_usize(0, n);
        if eliminated[xi] || !region.op(ids[xi]).kind.is_store() || xi + 1 >= n {
            continue;
        }
        let zi = rng.range_usize(xi + 1, n);
        if eliminated[zi] || !region.op(ids[zi]).kind.is_store() {
            continue;
        }
        region.add_store_elim(ids[xi], ids[zi]);
        eliminated[xi] = true;
        break;
    }
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let schedule = perm
        .into_iter()
        .filter(|&i| !eliminated[i])
        .map(|i| ids[i])
        .collect();
    (region, schedule)
}

#[test]
fn deps_bit_matrix_matches_naive() {
    for case in 0..CASES {
        let seed = 0x10_000 + case;
        let (region, _) = random_region(&mut Prng::new(seed), 16);
        let fast: Vec<Dep> = DepGraph::compute(&region).iter().collect();
        let naive: Vec<Dep> = DepGraph::compute_naive(&region).iter().collect();
        assert_eq!(fast, naive, "dep graphs diverge for seed {seed}");
    }
}

#[test]
fn sealed_region_matches_spec_probes() {
    for case in 0..CASES {
        let seed = 0x20_000 + case;
        let (region, _) = random_region(&mut Prng::new(seed), 16);
        let sealed = region.sealed();
        assert_eq!(sealed.len(), region.len());
        let mut bucketed = 0usize;
        for bucket in sealed.class_buckets() {
            bucketed += bucket.len();
        }
        assert_eq!(bucketed, region.len(), "every op in exactly one bucket");
        for (a, _) in region.iter() {
            assert_eq!(
                sealed.is_eliminated(a),
                region.is_eliminated(a),
                "elim bit diverges for {a:?}, seed {seed}"
            );
            for (b, _) in region.iter() {
                assert_eq!(
                    sealed.may_alias(a, b),
                    region.may_alias(a, b),
                    "may_alias({a:?}, {b:?}) diverges for seed {seed}"
                );
            }
        }
    }
}

/// Replays a random sequence of queue operations; after every step the
/// short-circuit check must agree with the first hit of the full scan,
/// for every possible scan start and both checker kinds.
#[test]
fn queue_check_first_matches_full_scan() {
    for case in 0..CASES {
        let seed = 0x30_000 + case;
        let mut rng = Prng::new(seed);
        let regs = *rng.pick(&[3u32, 8, 64, 70, 130]);
        let mut q: AliasQueue<u32> = AliasQueue::new(regs);
        for step in 0..120 {
            match rng.range_u32(0, 10) {
                0..=4 => {
                    let off = rng.range_u32(0, regs);
                    let payload = rng.range_u32(0, 8);
                    q.set(off, payload, rng.chance(1, 2)).unwrap();
                }
                5..=6 => {
                    let amount = rng.range_u32(0, regs + 1);
                    q.rotate(amount).unwrap();
                }
                7 => {
                    let src = rng.range_u32(0, regs);
                    let dst = rng.range_u32(0, regs);
                    q.amov(src, dst).unwrap();
                }
                _ => {}
            }
            let from = rng.range_u32(0, regs);
            let needle = rng.range_u32(0, 8);
            for is_load in [false, true] {
                let full = q
                    .check(from, is_load, |&p| p == needle)
                    .unwrap()
                    .first()
                    .copied();
                let first = q.check_first(from, is_load, |&p| p == needle).unwrap();
                assert_eq!(
                    first, full,
                    "check_first diverges at seed {seed}, step {step}, \
                     from {from}, is_load {is_load}"
                );
            }
        }
    }
}

/// Allocations produced with a recycled scratch are identical to fresh
/// ones — field by field, across a chain of differently-shaped regions.
#[test]
fn scratch_reuse_is_deterministic() {
    let mut scratch = AllocScratch::new();
    for case in 0..CASES {
        let seed = 0x40_000 + case;
        let (region, schedule) = random_region(&mut Prng::new(seed), 12);
        let deps = DepGraph::compute(&region);
        let fresh = allocate(&region, &deps, &schedule, u32::MAX).unwrap();

        let mut a = Allocator::with_scratch(&region, &deps, u32::MAX, scratch);
        for &op in &schedule {
            a.schedule_op(op).unwrap();
        }
        let (reused, s) = a.finish_reclaim().unwrap();
        scratch = s;

        assert_eq!(fresh.code(), reused.code(), "code diverges for seed {seed}");
        assert_eq!(fresh.working_set(), reused.working_set());
        assert_eq!(fresh.stats(), reused.stats());
        assert_eq!(fresh.final_checks(), reused.final_checks());
        for (id, _) in region.iter() {
            assert_eq!(fresh.op(id), reused.op(id), "op {id:?}, seed {seed}");
        }
    }
}
