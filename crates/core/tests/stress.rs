//! Scale stress: large regions must allocate quickly, validate, and keep
//! every invariant — the allocator is meant to run inside a *dynamic*
//! optimizer (paper Figure 18), so region-size scaling matters.

use smarq::validate::validate_allocation;
use smarq::{allocate, Allocator, DepGraph, MemKind, MemOpId, RegionSpec, SchedulerMode};
use std::time::Instant;

/// Deterministic pseudo-random generator (no external deps needed here).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A large region: `n` memops in groups of store-batches followed by
/// load-batches (the paper's superblock shape), with pseudo-random extra
/// aliasing and a shuffled hoisting schedule.
fn big_region(n: usize, seed: u64) -> (RegionSpec, Vec<MemOpId>) {
    let mut rng = Lcg(seed | 1);
    let mut region = RegionSpec::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let kind = if (i / 8) % 2 == 0 {
            MemKind::Store
        } else {
            MemKind::Load
        };
        ids.push(region.push(kind, i as u32));
    }
    // Sparse random may-alias pairs (~4 per op).
    for i in 0..n {
        for _ in 0..4 {
            let j = (rng.next() as usize) % n;
            if i != j {
                region.set_may_alias(ids[i], ids[j], true);
            }
        }
    }
    // Schedule: each load batch hoists above its preceding store batch.
    let mut schedule = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        let store_end = (i + 8).min(n);
        let load_end = (store_end + 8).min(n);
        schedule.extend_from_slice(&ids[store_end..load_end]);
        schedule.extend_from_slice(&ids[i..store_end]);
        i = load_end;
    }
    (region, schedule)
}

#[test]
fn four_hundred_memop_region_allocates_and_validates() {
    let (region, schedule) = big_region(400, 7);
    let deps = DepGraph::compute(&region);
    let start = Instant::now();
    let alloc = allocate(&region, &deps, &schedule, u32::MAX).unwrap();
    let elapsed = start.elapsed();
    validate_allocation(&region, &deps, &schedule, &alloc).unwrap();
    assert!(alloc.stats().mem_ops == 400);
    // The paper's point (Fig. 18): allocation must be cheap. Even in debug
    // builds a 400-op region should take well under a second.
    assert!(
        elapsed.as_secs() < 5,
        "allocation took {elapsed:?} — far too slow for a dynamic optimizer"
    );
}

#[test]
fn several_seeds_validate() {
    for seed in [1u64, 99, 12345] {
        let (region, schedule) = big_region(120, seed);
        let deps = DepGraph::compute(&region);
        let alloc = allocate(&region, &deps, &schedule, u32::MAX).unwrap();
        validate_allocation(&region, &deps, &schedule, &alloc).unwrap();
    }
}

#[test]
fn incremental_driver_mode_oscillates_under_pressure() {
    // A mode-aware driver (mimicking the embedding list scheduler): two
    // windows of 16 stores + 16 loads; the driver hoists loads while the
    // allocator reports Speculation and falls back to program order when
    // it trips. With a 10-register file the 16-load window must trip the
    // mode mid-window, and rotation must recover it for the next window.
    let mut region = RegionSpec::new();
    let mut stores = Vec::new();
    let mut loads = Vec::new();
    for w in 0..2 {
        let s: Vec<_> = (0..16)
            .map(|i| region.push(MemKind::Store, w * 100 + i))
            .collect();
        let l: Vec<_> = (0..16)
            .map(|i| region.push(MemKind::Load, w * 100 + 50 + i))
            .collect();
        for &st in &s {
            for &ld in &l {
                region.set_may_alias(st, ld, true);
            }
        }
        stores.push(s);
        loads.push(l);
    }
    let deps = DepGraph::compute(&region);
    let mut a = Allocator::new(&region, &deps, 10);
    let mut schedule = Vec::new();
    let mut saw_non_spec = false;
    let mut returned_to_spec = false;
    for w in 0..2 {
        let mut hoisted = 0;
        for &ld in &loads[w] {
            if a.mode() == SchedulerMode::NonSpeculation {
                saw_non_spec = true;
                break;
            }
            a.schedule_op(ld).unwrap();
            schedule.push(ld);
            hoisted += 1;
        }
        for &st in &stores[w] {
            a.schedule_op(st).unwrap();
            schedule.push(st);
        }
        for &ld in &loads[w][hoisted..] {
            a.schedule_op(ld).unwrap();
            schedule.push(ld);
        }
        if saw_non_spec && a.mode() == SchedulerMode::Speculation {
            returned_to_spec = true;
        }
    }
    let alloc = a.finish().unwrap();
    assert!(
        saw_non_spec,
        "a 16-load window must trip a 10-register file"
    );
    assert!(returned_to_spec, "rotation must recover the mode");
    assert!(alloc.working_set() <= 10);
    validate_allocation(&region, &deps, &schedule, &alloc).unwrap();
}

#[test]
fn working_set_scales_with_hoist_window_not_region_size() {
    // Two regions with the same 8-op hoist windows but 10x the length:
    // the working set must stay flat (rotation releases each window).
    let ws = |n: usize| {
        let (region, schedule) = big_region_flat(n);
        let deps = DepGraph::compute(&region);
        allocate(&region, &deps, &schedule, u32::MAX)
            .unwrap()
            .working_set()
    };
    let small = ws(64);
    let large = ws(640);
    assert!(
        large <= small.saturating_mul(2),
        "working set grew with region length: {small} -> {large}"
    );
}

/// Like `big_region` but with aliasing only inside each window, so live
/// ranges never span windows.
fn big_region_flat(n: usize) -> (RegionSpec, Vec<MemOpId>) {
    let mut region = RegionSpec::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let kind = if (i / 8) % 2 == 0 {
            MemKind::Store
        } else {
            MemKind::Load
        };
        ids.push(region.push(kind, i as u32));
    }
    for w in (0..n).step_by(16) {
        for a in w..(w + 8).min(n) {
            for b in (w + 8)..(w + 16).min(n) {
                region.set_may_alias(ids[a], ids[b], true);
            }
        }
    }
    let mut schedule = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        let store_end = (i + 8).min(n);
        let load_end = (store_end + 8).min(n);
        schedule.extend_from_slice(&ids[store_end..load_end]);
        schedule.extend_from_slice(&ids[i..store_end]);
        i = load_end;
    }
    (region, schedule)
}
