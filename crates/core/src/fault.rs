//! Deliberate fault injection for testing the testers.
//!
//! The fuzzer in `crates/fuzz` layers differential oracles over the
//! optimizer; a green run only means something if the oracles *would*
//! catch a real constraint-analysis bug. This module provides the
//! mutation used for that sanity check: a process-wide switch that makes
//! [`crate::DepGraph::compute`]'s sealed fast path silently drop a
//! deterministic subset of plain `DEPENDENCE` edges — exactly the class
//! of bug (a missed may-alias pair) SMARQ's constraint discipline exists
//! to prevent. The naive all-pairs oracle
//! [`crate::DepGraph::compute_naive`] is *not* affected, so the layered
//! oracles must flag the divergence.
//!
//! The switch is off by default and is only ever enabled by tests and by
//! `smarq fuzz --inject-fault`. It can be set programmatically
//! ([`set_drop_plain_deps`]) or, for whole-process injection across a
//! binary we do not otherwise control, via the `SMARQ_FAULT_DROP_DEPS`
//! environment variable (any non-empty value, read once).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static FORCED: AtomicBool = AtomicBool::new(false);
static FROM_ENV: OnceLock<bool> = OnceLock::new();

/// Enables (or disables) dropping of plain dependence edges in the sealed
/// fast path of [`crate::DepGraph::compute`]. Takes effect process-wide;
/// tests using it should run in their own integration-test binary so they
/// cannot race with unrelated tests.
pub fn set_drop_plain_deps(on: bool) {
    FORCED.store(on, Ordering::SeqCst);
}

/// `true` when the plain-dependence-dropping fault is active, either via
/// [`set_drop_plain_deps`] or the `SMARQ_FAULT_DROP_DEPS` environment
/// variable (checked once, non-empty value enables).
pub fn drop_plain_deps_enabled() -> bool {
    FORCED.load(Ordering::SeqCst)
        || *FROM_ENV.get_or_init(|| {
            std::env::var_os("SMARQ_FAULT_DROP_DEPS").is_some_and(|v| !v.is_empty())
        })
}

/// The deterministic subset of pairs the fault suppresses: drop the plain
/// edge for roughly a third of candidate pairs. Public so the fuzzer's
/// mutation-sanity test can reason about which regions are affected.
pub fn drops_pair(i: u32, j: u32) -> bool {
    (i + j).is_multiple_of(3)
}

static ANTI_FORCED: AtomicBool = AtomicBool::new(false);
static ANTI_FROM_ENV: OnceLock<bool> = OnceLock::new();

/// Enables (or disables) the anti-constraint-dropping fault: the
/// allocator's `schedule_op` skips the whole §4.2 anti-constraint handling
/// (no `ANTI-CONSTRAINT` edges, no order demotion, no clean-up or
/// relocation `AMOV`s), as if the implementation had forgotten the rule.
/// The resulting allocations can give a producer an order at or above its
/// prohibited checker, so a genuine runtime alias would roll the region
/// back for nothing. Crucially the bug is *invisible to end-to-end state
/// oracles* — a false-positive alias exception is functionally safe, just
/// slow — which is exactly why the static validator layer must catch it.
/// Process-wide; tests belong in their own integration-test binary.
pub fn set_drop_anti(on: bool) {
    ANTI_FORCED.store(on, Ordering::SeqCst);
}

/// `true` when the anti-constraint-dropping fault is active, either via
/// [`set_drop_anti`] or the `SMARQ_FAULT_DROP_ANTI` environment variable
/// (checked once, non-empty value enables).
pub fn drop_anti_enabled() -> bool {
    ANTI_FORCED.load(Ordering::SeqCst)
        || *ANTI_FROM_ENV.get_or_init(|| {
            std::env::var_os("SMARQ_FAULT_DROP_ANTI").is_some_and(|v| !v.is_empty())
        })
}

static BOUNDARY_FORCED: AtomicBool = AtomicBool::new(false);
static BOUNDARY_FROM_ENV: OnceLock<bool> = OnceLock::new();

/// Enables (or disables) the chain-boundary fault: the derivation of a
/// region's resident-state write mask (`RegionWriteMask::of`) silently
/// drops one written integer register, as if the implementation had
/// forgotten to account for an op kind. Chained successors then rely on a
/// mask that under-covers the predecessor's writes — a broken
/// chain-boundary obligation. The bug is *invisible to execution oracles*
/// on rollback-free runs (the mask only scopes checkpoints and scoreboard
/// clearing), which is exactly why the static chain analyzer must catch
/// it. Process-wide; tests belong in their own integration-test binary.
pub fn set_drop_boundary(on: bool) {
    BOUNDARY_FORCED.store(on, Ordering::SeqCst);
}

/// `true` when the chain-boundary fault is active, either via
/// [`set_drop_boundary`] or the `SMARQ_FAULT_DROP_BOUNDARY` environment
/// variable (checked once, non-empty value enables).
pub fn drop_boundary_enabled() -> bool {
    BOUNDARY_FORCED.load(Ordering::SeqCst)
        || *BOUNDARY_FROM_ENV.get_or_init(|| {
            std::env::var_os("SMARQ_FAULT_DROP_BOUNDARY").is_some_and(|v| !v.is_empty())
        })
}

static WIDEN_FORCED: AtomicBool = AtomicBool::new(false);
static WIDEN_FROM_ENV: OnceLock<bool> = OnceLock::new();

/// Enables (or disables) the broken-widening fault: the dataflow
/// analyzer's fixpoint loop (`smarq_verify::dataflow`) skips widening at
/// loop heads and pretends the state converged, leaving derived value
/// ranges unsoundly narrow. Decisions made from those ranges — most
/// importantly the *unspeculatable address range* taint — then miss
/// addresses that later loop iterations actually reach, so the optimizer
/// speculates across a range it was told never to. Speculating on plain
/// memory is functionally correct, so execution oracles cannot see the
/// bug; only the chain analyzer's reference (never-faulted) range
/// computation flags it. Process-wide; tests belong in their own
/// integration-test binary.
pub fn set_widen_range(on: bool) {
    WIDEN_FORCED.store(on, Ordering::SeqCst);
}

/// `true` when the broken-widening fault is active, either via
/// [`set_widen_range`] or the `SMARQ_FAULT_WIDEN_RANGE` environment
/// variable (checked once, non-empty value enables).
pub fn widen_range_enabled() -> bool {
    WIDEN_FORCED.load(Ordering::SeqCst)
        || *WIDEN_FROM_ENV.get_or_init(|| {
            std::env::var_os("SMARQ_FAULT_WIDEN_RANGE").is_some_and(|v| !v.is_empty())
        })
}
