//! Error types and the shared structured-diagnostic format.

use crate::ids::MemOpId;
use std::error::Error;
use std::fmt;

/// How serious a [`Diagnostic`] is.
///
/// `Error` means the region is wrong (unsound or able to raise a false
/// alias exception); `Warning` means it is correct but wasteful; `Info` is
/// advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note.
    Info,
    /// Correct but suboptimal (e.g. a check that can never fire).
    Warning,
    /// The region violates a correctness property.
    Error,
}

impl Severity {
    /// Stable lowercase label (used in JSON and display output).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured, JSON-serializable finding about one optimized region.
///
/// This is the shared reporting currency for the allocation validator, the
/// static translation validator in `crates/verify` and its lint passes: one
/// record pinpointing *where* (region, op, span in the alias-code stream)
/// and *why* (a constraint witness plus a human-readable message).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Region index (formation order) the finding applies to.
    pub region: usize,
    /// Stable machine-readable code, e.g. `"missing-check"`.
    pub code: &'static str,
    /// The primary operation involved, if any.
    pub op: Option<MemOpId>,
    /// Span `[start, end)` of alias-code positions the finding covers.
    pub span: Option<(usize, usize)>,
    /// The constraint or dependence that witnesses the finding, rendered
    /// in the paper's notation (e.g. `"M0 ->check M3"`).
    pub witness: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// New diagnostic with the given severity; location fields start empty.
    pub fn new(
        severity: Severity,
        region: usize,
        code: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            region,
            code,
            op: None,
            span: None,
            witness: None,
            message: message.into(),
        }
    }

    /// Attaches the primary operation.
    pub fn with_op(mut self, op: MemOpId) -> Self {
        self.op = Some(op);
        self
    }

    /// Attaches a `[start, end)` span of alias-code positions.
    pub fn with_span(mut self, start: usize, end: usize) -> Self {
        self.span = Some((start, end));
        self
    }

    /// Attaches a constraint witness.
    pub fn with_witness(mut self, witness: impl Into<String>) -> Self {
        self.witness = Some(witness.into());
        self
    }

    /// Serializes the diagnostic as a single JSON object (hand-rolled; the
    /// workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"severity\": \"{}\", \"region\": {}, \"code\": \"{}\"",
            self.severity.label(),
            self.region,
            json_escape(self.code)
        );
        if let Some(op) = self.op {
            out.push_str(&format!(", \"op\": {}", op.index()));
        }
        if let Some((start, end)) = self.span {
            out.push_str(&format!(", \"span\": [{start}, {end}]"));
        }
        if let Some(w) = &self.witness {
            out.push_str(&format!(", \"witness\": \"{}\"", json_escape(w)));
        }
        out.push_str(&format!(
            ", \"message\": \"{}\"}}",
            json_escape(&self.message)
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] region {}", self.severity, self.code, self.region)?;
        if let Some(op) = self.op {
            write!(f, " {op}")?;
        }
        if let Some((start, end)) = self.span {
            write!(f, " code[{start}..{end})")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(w) = &self.witness {
            write!(f, " (witness: {w})")?;
        }
        Ok(())
    }
}

/// Renders a slice of diagnostics as a JSON array (one object per line).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("\n  ");
        out.push_str(&d.to_json());
        if i + 1 < diags.len() {
            out.push(',');
        }
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Errors reported by the alias register allocator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// An operation appears in the schedule but was eliminated, or appears
    /// twice, or is out of range for the region.
    BadSchedule {
        /// The offending operation.
        op: MemOpId,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The allocation requires more alias registers than the hardware has,
    /// and the caller drove the allocator in a fixed schedule that left no
    /// room to back off (the integrated scheduler avoids this by switching
    /// to non-speculation mode).
    Overflow {
        /// Offset that exceeded the register file.
        offset: u32,
        /// Hardware register count.
        num_regs: u32,
    },
    /// Internal invariant violation: the constraint graph still has
    /// unallocated operations after the whole region was scheduled. This
    /// indicates an unbroken constraint cycle and is a bug if it ever fires.
    UnresolvedConstraints {
        /// One of the stuck operations.
        op: MemOpId,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::BadSchedule { op, reason } => {
                write!(f, "bad schedule at {op}: {reason}")
            }
            AllocError::Overflow { offset, num_regs } => write!(
                f,
                "alias register overflow: offset {offset} with {num_regs} registers"
            ),
            AllocError::UnresolvedConstraints { op } => write!(
                f,
                "unresolved alias register constraints at region end (stuck at {op})"
            ),
        }
    }
}

impl Error for AllocError {}

impl AllocError {
    /// Renders the error as a structured [`Diagnostic`] for `region`.
    pub fn diagnostic(&self, region: usize) -> Diagnostic {
        let d = Diagnostic::new(Severity::Error, region, self.code(), self.to_string());
        match *self {
            AllocError::BadSchedule { op, .. } | AllocError::UnresolvedConstraints { op } => {
                d.with_op(op)
            }
            AllocError::Overflow { offset, num_regs } => {
                d.with_witness(format!("offset {offset} >= {num_regs} registers"))
            }
        }
    }

    /// Stable machine-readable code for the error variant.
    pub fn code(&self) -> &'static str {
        match self {
            AllocError::BadSchedule { .. } => "bad-schedule",
            AllocError::Overflow { .. } => "alloc-overflow",
            AllocError::UnresolvedConstraints { .. } => "unresolved-constraints",
        }
    }
}

/// Errors reported by the allocation validator
/// ([`validate_allocation`](crate::validate::validate_allocation)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A required alias detection (check-constraint) was not performed by
    /// the hardware semantics.
    MissingCheck {
        /// The checking operation.
        checker: MemOpId,
        /// The operation whose alias register had to be checked.
        checkee: MemOpId,
    },
    /// A prohibited alias detection (anti-constraint) would be performed —
    /// a potential false positive.
    FalsePositive {
        /// The operation whose range is wrongly examined.
        producer: MemOpId,
        /// The operation that examines it.
        checker: MemOpId,
    },
    /// An instruction references an alias register offset `>= num_regs`.
    OffsetOutOfRange {
        /// The operation (or AMOV source op) with the bad offset.
        op: MemOpId,
        /// The offending offset.
        offset: u32,
        /// Hardware register count.
        num_regs: u32,
    },
    /// `order(X) = base(X) + offset(X)` does not hold.
    OrderInvariantBroken {
        /// The offending operation.
        op: MemOpId,
    },
    /// A register was rotated out (released) while a later instruction still
    /// had to check or move it.
    PrematureRelease {
        /// The operation whose register was released too early.
        op: MemOpId,
    },
    /// The final orders violate REGISTER-ALLOCATION-RULE for a constraint.
    OrderRuleViolated {
        /// Constraint source.
        src: MemOpId,
        /// Constraint destination.
        dst: MemOpId,
        /// `true` for an anti-constraint (strict `<` required).
        anti: bool,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingCheck { checker, checkee } => {
                write!(
                    f,
                    "required alias check {checker} -> {checkee} not performed"
                )
            }
            ValidationError::FalsePositive { producer, checker } => write!(
                f,
                "prohibited alias check: {checker} examines {producer} (potential false positive)"
            ),
            ValidationError::OffsetOutOfRange {
                op,
                offset,
                num_regs,
            } => write!(
                f,
                "{op} references alias register offset {offset} but hardware has {num_regs}"
            ),
            ValidationError::OrderInvariantBroken { op } => {
                write!(f, "order = base + offset broken at {op}")
            }
            ValidationError::PrematureRelease { op } => {
                write!(f, "alias register of {op} released while still needed")
            }
            ValidationError::OrderRuleViolated { src, dst, anti } => {
                let rel = if *anti { "<" } else { "<=" };
                write!(
                    f,
                    "REGISTER-ALLOCATION-RULE violated: order({src}) {rel} order({dst}) required"
                )
            }
        }
    }
}

impl Error for ValidationError {}

impl ValidationError {
    /// Renders the error as a structured [`Diagnostic`] for `region` —
    /// the allocation validator's reporting format for the oracle layers
    /// and the `smarq lint` driver.
    pub fn diagnostic(&self, region: usize) -> Diagnostic {
        let d = Diagnostic::new(Severity::Error, region, self.code(), self.to_string());
        match *self {
            ValidationError::MissingCheck { checker, checkee } => d
                .with_op(checker)
                .with_witness(format!("{checker} ->check {checkee}")),
            ValidationError::FalsePositive { producer, checker } => d
                .with_op(checker)
                .with_witness(format!("{checker} examines {producer}")),
            ValidationError::OffsetOutOfRange { op, .. } => d.with_op(op),
            ValidationError::OrderInvariantBroken { op }
            | ValidationError::PrematureRelease { op } => d.with_op(op),
            ValidationError::OrderRuleViolated { src, dst, anti } => {
                let kind = if anti { "anti" } else { "check" };
                d.with_op(src).with_witness(format!("{src} ->{kind} {dst}"))
            }
        }
    }

    /// Stable machine-readable code for the error variant.
    pub fn code(&self) -> &'static str {
        match self {
            ValidationError::MissingCheck { .. } => "missing-check",
            ValidationError::FalsePositive { .. } => "false-positive",
            ValidationError::OffsetOutOfRange { .. } => "offset-out-of-range",
            ValidationError::OrderInvariantBroken { .. } => "order-invariant",
            ValidationError::PrematureRelease { .. } => "premature-release",
            ValidationError::OrderRuleViolated { .. } => "order-rule",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = AllocError::Overflow {
            offset: 64,
            num_regs: 64,
        };
        let s = e.to_string();
        assert!(s.contains("overflow"));
        assert!(s.contains("64"));

        let v = ValidationError::MissingCheck {
            checker: MemOpId::new(1),
            checkee: MemOpId::new(2),
        };
        assert_eq!(v.to_string(), "required alias check M1 -> M2 not performed");
    }

    #[test]
    fn diagnostic_json_has_all_fields() {
        let d = ValidationError::MissingCheck {
            checker: MemOpId::new(2),
            checkee: MemOpId::new(3),
        }
        .diagnostic(7)
        .with_span(1, 4);
        let j = d.to_json();
        assert!(j.contains("\"severity\": \"error\""), "{j}");
        assert!(j.contains("\"region\": 7"), "{j}");
        assert!(j.contains("\"code\": \"missing-check\""), "{j}");
        assert!(j.contains("\"op\": 2"), "{j}");
        assert!(j.contains("\"span\": [1, 4]"), "{j}");
        assert!(j.contains("\"witness\": \"M2 ->check M3\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
    }

    #[test]
    fn diagnostic_json_escapes_quotes_and_newlines() {
        let d = Diagnostic::new(Severity::Warning, 0, "test", "say \"hi\"\nline2");
        let j = d.to_json();
        assert!(j.contains("say \\\"hi\\\"\\nline2"), "{j}");
    }

    #[test]
    fn diagnostics_array_renders_empty_and_nonempty() {
        assert_eq!(diagnostics_to_json(&[]), "[]");
        let d = Diagnostic::new(Severity::Info, 1, "x", "m");
        let arr = diagnostics_to_json(&[d.clone(), d]);
        assert!(arr.starts_with("[\n") && arr.ends_with("\n]"), "{arr}");
        assert_eq!(arr.matches("\"code\": \"x\"").count(), 2);
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(AllocError::UnresolvedConstraints {
            op: MemOpId::new(0),
        });
        takes_err(ValidationError::OrderInvariantBroken {
            op: MemOpId::new(0),
        });
    }
}
