//! Error types.

use crate::ids::MemOpId;
use std::error::Error;
use std::fmt;

/// Errors reported by the alias register allocator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// An operation appears in the schedule but was eliminated, or appears
    /// twice, or is out of range for the region.
    BadSchedule {
        /// The offending operation.
        op: MemOpId,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The allocation requires more alias registers than the hardware has,
    /// and the caller drove the allocator in a fixed schedule that left no
    /// room to back off (the integrated scheduler avoids this by switching
    /// to non-speculation mode).
    Overflow {
        /// Offset that exceeded the register file.
        offset: u32,
        /// Hardware register count.
        num_regs: u32,
    },
    /// Internal invariant violation: the constraint graph still has
    /// unallocated operations after the whole region was scheduled. This
    /// indicates an unbroken constraint cycle and is a bug if it ever fires.
    UnresolvedConstraints {
        /// One of the stuck operations.
        op: MemOpId,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::BadSchedule { op, reason } => {
                write!(f, "bad schedule at {op}: {reason}")
            }
            AllocError::Overflow { offset, num_regs } => write!(
                f,
                "alias register overflow: offset {offset} with {num_regs} registers"
            ),
            AllocError::UnresolvedConstraints { op } => write!(
                f,
                "unresolved alias register constraints at region end (stuck at {op})"
            ),
        }
    }
}

impl Error for AllocError {}

/// Errors reported by the allocation validator
/// ([`validate_allocation`](crate::validate::validate_allocation)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A required alias detection (check-constraint) was not performed by
    /// the hardware semantics.
    MissingCheck {
        /// The checking operation.
        checker: MemOpId,
        /// The operation whose alias register had to be checked.
        checkee: MemOpId,
    },
    /// A prohibited alias detection (anti-constraint) would be performed —
    /// a potential false positive.
    FalsePositive {
        /// The operation whose range is wrongly examined.
        producer: MemOpId,
        /// The operation that examines it.
        checker: MemOpId,
    },
    /// An instruction references an alias register offset `>= num_regs`.
    OffsetOutOfRange {
        /// The operation (or AMOV source op) with the bad offset.
        op: MemOpId,
        /// The offending offset.
        offset: u32,
        /// Hardware register count.
        num_regs: u32,
    },
    /// `order(X) = base(X) + offset(X)` does not hold.
    OrderInvariantBroken {
        /// The offending operation.
        op: MemOpId,
    },
    /// A register was rotated out (released) while a later instruction still
    /// had to check or move it.
    PrematureRelease {
        /// The operation whose register was released too early.
        op: MemOpId,
    },
    /// The final orders violate REGISTER-ALLOCATION-RULE for a constraint.
    OrderRuleViolated {
        /// Constraint source.
        src: MemOpId,
        /// Constraint destination.
        dst: MemOpId,
        /// `true` for an anti-constraint (strict `<` required).
        anti: bool,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingCheck { checker, checkee } => {
                write!(
                    f,
                    "required alias check {checker} -> {checkee} not performed"
                )
            }
            ValidationError::FalsePositive { producer, checker } => write!(
                f,
                "prohibited alias check: {checker} examines {producer} (potential false positive)"
            ),
            ValidationError::OffsetOutOfRange {
                op,
                offset,
                num_regs,
            } => write!(
                f,
                "{op} references alias register offset {offset} but hardware has {num_regs}"
            ),
            ValidationError::OrderInvariantBroken { op } => {
                write!(f, "order = base + offset broken at {op}")
            }
            ValidationError::PrematureRelease { op } => {
                write!(f, "alias register of {op} released while still needed")
            }
            ValidationError::OrderRuleViolated { src, dst, anti } => {
                let rel = if *anti { "<" } else { "<=" };
                write!(
                    f,
                    "REGISTER-ALLOCATION-RULE violated: order({src}) {rel} order({dst}) required"
                )
            }
        }
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = AllocError::Overflow {
            offset: 64,
            num_regs: 64,
        };
        let s = e.to_string();
        assert!(s.contains("overflow"));
        assert!(s.contains("64"));

        let v = ValidationError::MissingCheck {
            checker: MemOpId::new(1),
            checkee: MemOpId::new(2),
        };
        assert_eq!(v.to_string(), "required alias check M1 -> M2 not performed");
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(AllocError::UnresolvedConstraints {
            op: MemOpId::new(0),
        });
        takes_err(ValidationError::OrderInvariantBroken {
            op: MemOpId::new(0),
        });
    }
}
