//! Baseline alias register allocators (paper §2.4 and §6.2).
//!
//! The straightforward order-based allocation assigns alias registers to
//! memory operations **in original program order**. It is correct for pure
//! speculative *reordering* (every dependence, and hence every constraint,
//! follows original order, so the constraint graph is trivially satisfied)
//! but cannot handle speculative load/store elimination, whose extended
//! dependences run backward. The paper uses it as the working-set baseline
//! of Figure 17:
//!
//! * **all-ops** variant: every scheduled memory operation receives a
//!   register — the figure's normalization baseline (working set =
//!   number of memory operations);
//! * **P-only** variant: only operations that must set a register (P bit)
//!   receive one — the figure's first bar;
//! * both variants optionally apply the `MAX-BASE` rotation rule
//!   (paper §5.1) to release registers as early as possible; disabling
//!   rotation is the ablation the paper argues against in §3.2.

use crate::alloc::{AliasCode, AllocStats, Allocation, AmovInsn, OpAlias, RotateInsn};
use crate::constraints::ConstraintGraph;
use crate::deps::DepGraph;
use crate::error::AllocError;
use crate::ids::{MemOpId, Offset, Order};
use crate::region::RegionSpec;

/// Which operations receive alias registers in the program-order baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineScope {
    /// Every scheduled memory operation (the paper's normalization
    /// baseline for Figure 17).
    AllOps,
    /// Only operations that carry a P bit (Figure 17, first bar).
    POnly,
}

/// Options for [`program_order_allocate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BaselineOptions {
    /// Register assignment scope.
    pub scope: BaselineScope,
    /// Apply `MAX-BASE` rotation to release registers early. Without it the
    /// working set equals the total number of registers assigned.
    pub rotate: bool,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            scope: BaselineScope::AllOps,
            rotate: true,
        }
    }
}

/// Allocates alias registers in **original program order** (the
/// straightforward order-based scheme the paper compares against).
///
/// # Errors
///
/// * [`AllocError::BadSchedule`] if the region contains speculative
///   load/store eliminations: their backward extended dependences cannot be
///   satisfied by program-order allocation (this is precisely the paper's
///   motivation for SMARQ), or if the schedule is malformed.
/// * [`AllocError::Overflow`] when the working set exceeds `num_regs`.
///
/// ```
/// use smarq::{RegionSpec, MemKind, DepGraph};
/// use smarq::baseline::{program_order_allocate, BaselineOptions};
/// let mut r = RegionSpec::new();
/// let st = r.push(MemKind::Store, 0);
/// let ld = r.push(MemKind::Load, 0);
/// let deps = DepGraph::compute(&r);
/// let alloc = program_order_allocate(&r, &deps, &[ld, st], 64,
///                                    BaselineOptions::default())?;
/// assert_eq!(alloc.working_set(), 2); // one register per op, in order
/// # Ok::<(), smarq::AllocError>(())
/// ```
pub fn program_order_allocate(
    region: &RegionSpec,
    deps: &DepGraph,
    schedule: &[MemOpId],
    num_regs: u32,
    options: BaselineOptions,
) -> Result<Allocation, AllocError> {
    if let Some(e) = region.load_elims().first() {
        return Err(AllocError::BadSchedule {
            op: e.eliminated,
            reason: "program-order allocation cannot handle load elimination",
        });
    }
    if let Some(e) = region.store_elims().first() {
        return Err(AllocError::BadSchedule {
            op: e.eliminated,
            reason: "program-order allocation cannot handle store elimination",
        });
    }
    let n = region.len();
    let mut pos = vec![usize::MAX; n];
    for (i, &op) in schedule.iter().enumerate() {
        if op.index() >= n {
            return Err(AllocError::BadSchedule {
                op,
                reason: "op out of range for region",
            });
        }
        if pos[op.index()] != usize::MAX {
            return Err(AllocError::BadSchedule {
                op,
                reason: "op scheduled twice",
            });
        }
        pos[op.index()] = i;
    }

    let graph = ConstraintGraph::derive(region, deps, schedule);

    // Assign orders in ORIGINAL program order. In the AllOps (raw
    // order-based) scheme every operation sets its own register and
    // checkers scan from their own order (paper §2.4, Figure 4); in the
    // POnly scheme only P-bit ops set registers and checkers scan from
    // their earliest checkee.
    let mut order = vec![None::<u64>; n];
    let mut next = 0u64;
    let mut sets_reg = vec![false; n];
    for (id, _) in region.iter() {
        let i = id.index();
        if pos[i] == usize::MAX {
            continue;
        }
        let scoped = match options.scope {
            BaselineScope::AllOps => true,
            BaselineScope::POnly => graph.p_bit(id),
        };
        if scoped {
            order[i] = Some(next);
            next += 1;
            sets_reg[i] = true;
        }
    }
    // Earliest checkee order per checker, computed in ONE pass over the
    // check set (check dsts always set a register, so their orders are
    // final after the loop above). The previous form rescanned every check
    // per op — O(ops × checks).
    let mut min_checkee = vec![None::<u64>; n];
    for c in graph.checks() {
        if let Some(o) = order[c.dst.index()] {
            let e = &mut min_checkee[c.src.index()];
            *e = Some(e.map_or(o, |m: u64| m.min(o)));
        }
    }

    // Scan start for C-bit ops that do not set a register themselves
    // (POnly scope only): the earliest checkee's order. In program order
    // the checker precedes its checkees, so ops that do set a register
    // scan safely from their own order.
    for (id, _) in region.iter() {
        let i = id.index();
        if pos[i] == usize::MAX || sets_reg[i] || !graph.c_bit(id) {
            continue;
        }
        order[i] = min_checkee[i];
    }

    // need(X): the earliest register order instruction X still requires at
    // its execution point (own register when it sets one, earliest checkee
    // when it checks).
    let need = |id: MemOpId| -> Option<u64> {
        let i = id.index();
        let own = if sets_reg[i] { order[i] } else { None };
        let scan = if graph.c_bit(id) {
            min_checkee[i]
        } else {
            None
        };
        match (own, scan) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    };

    // MAX-BASE: base at position i = min need over instructions at >= i.
    let mut base_at = vec![next; schedule.len() + 1];
    for i in (0..schedule.len()).rev() {
        let own = need(schedule[i]).unwrap_or(u64::MAX);
        base_at[i] = base_at[i + 1].min(own);
    }
    if !options.rotate {
        base_at.fill(0);
    }

    let mut per_op = vec![None; n];
    let mut stats = AllocStats {
        mem_ops: schedule.len(),
        checks: graph.checks().count(),
        antis: graph.antis().count(),
        ..AllocStats::default()
    };
    let mut working_set = 0u32;
    let mut code = Vec::new();
    for (i, &op) in schedule.iter().enumerate() {
        let idx = op.index();
        let p = sets_reg[idx];
        let c = graph.c_bit(op);
        let base = base_at[i];
        let alias = if p || c {
            let ord = if p {
                order[idx].expect("P op in scope has an order")
            } else {
                // C-only (or out-of-scope) op scans from its earliest
                // checkee; if it has none it needs no register at all.
                match order[idx] {
                    Some(o) => o,
                    None => {
                        code.push(AliasCode::Op {
                            id: op,
                            p_bit: false,
                            c_bit: false,
                            offset: None,
                        });
                        continue;
                    }
                }
            };
            if ord < base {
                // The register this op must reach was already released:
                // impossible under MAX-BASE (base is the min over the
                // suffix, which includes this op).
                unreachable!("MAX-BASE released a live register");
            }
            let off = ord - base;
            if off >= num_regs as u64 {
                return Err(AllocError::Overflow {
                    offset: off as u32,
                    num_regs,
                });
            }
            working_set = working_set.max(off as u32 + 1);
            if p {
                stats.p_ops += 1;
            }
            if c {
                stats.c_ops += 1;
            }
            Some(OpAlias {
                p_bit: p,
                c_bit: c,
                order: Order(ord),
                base: Order(base),
                offset: Offset(off as u32),
            })
        } else {
            None
        };
        per_op[idx] = alias;
        code.push(AliasCode::Op {
            id: op,
            p_bit: p,
            c_bit: c,
            offset: alias.map(|a| a.offset),
        });
        let next_base = base_at[i + 1];
        if next_base > base {
            code.push(AliasCode::Rotate(RotateInsn {
                amount: (next_base - base) as u32,
            }));
            stats.rotations += 1;
        }
    }

    let final_checks = graph.checks().map(|c| (c.src, c.dst)).collect();
    let _: Option<AmovInsn> = None; // baselines never emit AMOVs
    Ok(Allocation::from_parts(
        per_op,
        code,
        working_set,
        stats,
        final_checks,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::MemKind;
    use crate::validate::validate_allocation;

    /// Figure 7 region: M0..M5 loads/stores with deps
    /// M0->M3, M0->M5, M1->M3, M2->M4 (paper Fig. 7(c)).
    /// Schedule (Fig. 7 a/b): M3, M5, M0, M4, M1, M2... the paper schedule
    /// is M3 M5 M0 M4 M2 M1? We use the published optimized order:
    /// M3, M5, M0, M4, M1, M2 simplified to the constraint structure.
    fn figure7() -> (RegionSpec, DepGraph, Vec<MemOpId>) {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Store, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Load, 3);
        let m4 = r.push(MemKind::Load, 4);
        let m5 = r.push(MemKind::Load, 5);
        r.set_may_alias(m0, m3, true);
        r.set_may_alias(m0, m5, true);
        r.set_may_alias(m1, m3, true);
        r.set_may_alias(m2, m4, true);
        let deps = DepGraph::compute(&r);
        (r, deps, vec![m3, m5, m0, m4, m1, m2])
    }

    #[test]
    fn all_ops_baseline_uses_one_register_per_op() {
        let (r, deps, sched) = figure7();
        let alloc = program_order_allocate(
            &r,
            &deps,
            &sched,
            64,
            BaselineOptions {
                scope: BaselineScope::AllOps,
                rotate: false,
            },
        )
        .unwrap();
        assert_eq!(alloc.working_set(), 6);
        validate_allocation(&r, &deps, &sched, &alloc).unwrap();
    }

    #[test]
    fn rotation_shrinks_the_p_only_working_set() {
        // Three serialized hoist pairs: with P/C bits and rotation a single
        // alias register suffices (paper §3.2: rotation reduces usage and
        // overflow risk); without rotation three registers are pinned.
        let mut r = RegionSpec::new();
        let mut pairs = Vec::new();
        for i in 0..3 {
            let s = r.push(MemKind::Store, 2 * i);
            let l = r.push(MemKind::Load, 2 * i + 1);
            r.set_may_alias(s, l, true);
            pairs.push((s, l));
        }
        let deps = DepGraph::compute(&r);
        let sched: Vec<_> = pairs.iter().flat_map(|&(s, l)| [l, s]).collect();
        let mk = |rotate| BaselineOptions {
            scope: BaselineScope::POnly,
            rotate,
        };
        let without = program_order_allocate(&r, &deps, &sched, 64, mk(false)).unwrap();
        let with = program_order_allocate(&r, &deps, &sched, 64, mk(true)).unwrap();
        assert_eq!(without.working_set(), 3);
        assert_eq!(with.working_set(), 1);
        validate_allocation(&r, &deps, &sched, &with).unwrap();
        validate_allocation(&r, &deps, &sched, &without).unwrap();
    }

    #[test]
    fn all_ops_rotation_is_never_worse() {
        let (r, deps, sched) = figure7();
        let mk = |rotate| BaselineOptions {
            scope: BaselineScope::AllOps,
            rotate,
        };
        let without = program_order_allocate(&r, &deps, &sched, 64, mk(false)).unwrap();
        let with = program_order_allocate(&r, &deps, &sched, 64, mk(true)).unwrap();
        assert!(with.working_set() <= without.working_set());
        validate_allocation(&r, &deps, &sched, &with).unwrap();
    }

    #[test]
    fn p_only_baseline_is_smaller_than_all_ops() {
        let (r, deps, sched) = figure7();
        let all = program_order_allocate(
            &r,
            &deps,
            &sched,
            64,
            BaselineOptions {
                scope: BaselineScope::AllOps,
                rotate: true,
            },
        )
        .unwrap();
        let ponly = program_order_allocate(
            &r,
            &deps,
            &sched,
            64,
            BaselineOptions {
                scope: BaselineScope::POnly,
                rotate: true,
            },
        )
        .unwrap();
        assert!(ponly.working_set() <= all.working_set());
        validate_allocation(&r, &deps, &sched, &ponly).unwrap();
    }

    #[test]
    fn eliminations_are_rejected() {
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let l = r.push(MemKind::Load, 0);
        r.add_load_elim(s, l);
        let deps = DepGraph::compute(&r);
        let err =
            program_order_allocate(&r, &deps, &[s], 64, BaselineOptions::default()).unwrap_err();
        assert!(matches!(err, AllocError::BadSchedule { .. }));
    }

    #[test]
    fn overflow_reported_against_small_files() {
        let (r, deps, sched) = figure7();
        let err = program_order_allocate(
            &r,
            &deps,
            &sched,
            2,
            BaselineOptions {
                scope: BaselineScope::AllOps,
                rotate: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, AllocError::Overflow { num_regs: 2, .. }));
    }
}
