//! Memory dependence computation — the paper's `DEPENDENCE` and
//! `EXTENDED-DEPENDENCE 1/2` rules (§4.1).
//!
//! A dependence `X →dep Y` is the raw material from which check- and
//! anti-constraints are derived once the schedule is known:
//!
//! * **`DEPENDENCE`**: `X →dep Y` when `X` precedes `Y` in original order,
//!   they may access the same memory, and at least one is a store.
//! * **`EXTENDED-DEPENDENCE 1`** (load elimination): when load `Z` is
//!   eliminated by forwarding from an earlier op `X`, every *store* `Y`
//!   between `X` and `Z` that may alias `X` gets a *backward* dependence
//!   `Y →dep X` — so the alias between `Y` and the (now invisible) load is
//!   detected through `X`'s alias register even if nothing is reordered.
//!   (The paper's text prints "loads Y" here, but its own example —
//!   Figures 5/8/10, where the stores check the forwarding load — shows the
//!   intent is intervening *stores*; an intervening aliasing load cannot
//!   break the forwarding. See DESIGN.md "OCR resolutions".)
//! * **`EXTENDED-DEPENDENCE 2`** (store elimination): when store `X` is
//!   eliminated because the later store `Z` overwrites it, every *load* `Y`
//!   between `X` and `Z` that may alias `Z` gets a backward dependence
//!   `Z →dep Y`. Aliasing *stores* between `X` and `Z` are deliberately
//!   exempt — they do not affect the elimination's correctness.

use crate::ids::MemOpId;
use crate::region::{RegionSpec, SealedRegion};

/// Which rule produced a dependence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// The plain `DEPENDENCE` rule (forward, program order).
    Plain,
    /// `EXTENDED-DEPENDENCE 1` — load elimination (backward).
    ExtendedLoadElim,
    /// `EXTENDED-DEPENDENCE 2` — store elimination (backward).
    ExtendedStoreElim,
}

/// A dependence edge `src →dep dst`.
///
/// `src` is the operation written on the left of the paper's `X →dep Y`
/// notation. For plain dependences `src` precedes `dst` in original order;
/// for extended dependences the direction is backward.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dep {
    /// Dependence source (`X` in `X →dep Y`).
    pub src: MemOpId,
    /// Dependence target (`Y` in `X →dep Y`).
    pub dst: MemOpId,
    /// Producing rule.
    pub kind: DepKind,
}

/// All dependences of a region, indexed for the allocator's access pattern:
/// "when scheduling `Y`, walk every `X →dep Y`".
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    deps: Vec<Dep>,
    /// `into[y]` = indices into `deps` with `dst == y`.
    into: Vec<Vec<u32>>,
    /// `from[x]` = indices into `deps` with `src == x`.
    from: Vec<Vec<u32>>,
}

impl DepGraph {
    /// Computes all plain and extended dependences for `region`.
    ///
    /// Eliminated operations take no part in dependences themselves — they
    /// are absent from the optimized code — but their eliminations induce
    /// the extended dependences described in the module docs.
    ///
    /// Seals the region (see [`SealedRegion`]) and runs the
    /// output-sensitive enumeration: instead of testing all n² pairs
    /// against the `HashMap`-backed relation, candidate pairs are drawn
    /// from the `loc_class` buckets plus the explicit override list — the
    /// only places aliasing pairs can come from. [`DepGraph::compute_naive`]
    /// is the retained all-pairs reference; the two produce identical
    /// graphs (enforced by differential tests).
    pub fn compute(region: &RegionSpec) -> Self {
        Self::compute_sealed(&region.sealed())
    }

    /// [`DepGraph::compute`] on an already-sealed region view (callers that
    /// keep the sealed view around avoid re-sealing).
    pub fn compute_sealed(sealed: &SealedRegion<'_>) -> Self {
        let region = sealed.spec();
        let n = region.len();
        let mut deps = Vec::new();
        let live = |id: MemOpId| !sealed.is_eliminated(id);

        // DEPENDENCE: forward, program order, may-alias, at least one
        // store. Candidate pairs: same-`loc_class` pairs (aliasing by
        // default; the bit-matrix probe rejects overridden-false ones) plus
        // cross-class pairs forced aliasing by an override.
        let inject_drop = crate::fault::drop_plain_deps_enabled();
        let mut plain = |i: u32, j: u32| {
            debug_assert!(i < j);
            if inject_drop && crate::fault::drops_pair(i, j) {
                return;
            }
            let (x, y) = (MemOpId::new(i as usize), MemOpId::new(j as usize));
            if !live(x) || !live(y) {
                return;
            }
            let (kx, ky) = (region.op(x).kind, region.op(y).kind);
            if (kx.is_store() || ky.is_store()) && sealed.may_alias(x, y) {
                deps.push(Dep {
                    src: x,
                    dst: y,
                    kind: DepKind::Plain,
                });
            }
        };
        for bucket in sealed.class_buckets() {
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    plain(i, j);
                }
            }
        }
        for &(lo, hi, may) in sealed.overrides() {
            let cross_class = region.op(MemOpId::new(lo as usize)).loc_class
                != region.op(MemOpId::new(hi as usize)).loc_class;
            if may && cross_class {
                plain(lo, hi);
            }
        }

        // NOSPEC-DEPENDENCE: an unspeculatable op keeps program order
        // against every other live memory op (at least one of the pair a
        // store), even when the pair is provably disjoint — speculation
        // across the configured address ranges is never scheduled. These
        // candidate pairs are enumerated separately because disjoint
        // cross-class pairs never appear in the bucket/override scans;
        // duplicates of plain edges are folded by `index`. The edges are
        // deliberately exempt from the drop-deps fault injection.
        for &i in sealed.nospec_ops() {
            let x = MemOpId::new(i as usize);
            if !live(x) {
                continue;
            }
            for j in 0..n as u32 {
                if j == i {
                    continue;
                }
                let y = MemOpId::new(j as usize);
                if !live(y) {
                    continue;
                }
                let (kx, ky) = (region.op(x).kind, region.op(y).kind);
                if !(kx.is_store() || ky.is_store()) {
                    continue;
                }
                let (src, dst) = if i < j { (x, y) } else { (y, x) };
                deps.push(Dep {
                    src,
                    dst,
                    kind: DepKind::Plain,
                });
            }
        }

        // EXTENDED-DEPENDENCE 1: load Z eliminated, forwarded from X.
        // For every *store* Y strictly between X and Z (original order) that
        // may alias X: add Y ->dep X.
        for le in region.load_elims() {
            let (x, z) = (le.source, le.eliminated);
            for j in (x.index() + 1)..z.index() {
                let y = MemOpId::new(j);
                if !live(y) {
                    continue;
                }
                if region.op(y).kind.is_store() && sealed.may_alias(y, x) {
                    deps.push(Dep {
                        src: y,
                        dst: x,
                        kind: DepKind::ExtendedLoadElim,
                    });
                }
            }
        }

        // EXTENDED-DEPENDENCE 2: store X eliminated, overwritten by Z.
        // For every *load* Y strictly between X and Z that may alias Z:
        // add Z ->dep Y.
        for se in region.store_elims() {
            let (x, z) = (se.eliminated, se.overwriter);
            for j in (x.index() + 1)..z.index() {
                let y = MemOpId::new(j);
                if !live(y) {
                    continue;
                }
                if region.op(y).kind.is_load() && sealed.may_alias(z, y) {
                    deps.push(Dep {
                        src: z,
                        dst: y,
                        kind: DepKind::ExtendedStoreElim,
                    });
                }
            }
        }

        Self::index(n, deps)
    }

    /// The retained all-pairs reference implementation of
    /// [`DepGraph::compute`]: O(n²) pair enumeration against the spec's
    /// `HashMap`-backed relation and linear-scan elimination checks. Kept
    /// as the oracle for differential tests and the benchmark baseline;
    /// produces a graph identical to the fast path.
    pub fn compute_naive(region: &RegionSpec) -> Self {
        let n = region.len();
        let mut deps = Vec::new();
        let live = |id: MemOpId| !region.is_eliminated(id);

        // DEPENDENCE: forward, program order, may-alias (or either op
        // unspeculatable — NOSPEC-DEPENDENCE), at least one store.
        for i in 0..n {
            let x = MemOpId::new(i);
            if !live(x) {
                continue;
            }
            for j in (i + 1)..n {
                let y = MemOpId::new(j);
                if !live(y) {
                    continue;
                }
                let (kx, ky) = (region.op(x).kind, region.op(y).kind);
                let ordered = region.may_alias(x, y) || region.is_nospec(x) || region.is_nospec(y);
                if (kx.is_store() || ky.is_store()) && ordered {
                    deps.push(Dep {
                        src: x,
                        dst: y,
                        kind: DepKind::Plain,
                    });
                }
            }
        }

        // EXTENDED-DEPENDENCE 1: load Z eliminated, forwarded from X.
        // For every *store* Y strictly between X and Z (original order) that
        // may alias X: add Y ->dep X.
        for le in region.load_elims() {
            let (x, z) = (le.source, le.eliminated);
            for j in (x.index() + 1)..z.index() {
                let y = MemOpId::new(j);
                if !live(y) {
                    continue;
                }
                if region.op(y).kind.is_store() && region.may_alias(y, x) {
                    deps.push(Dep {
                        src: y,
                        dst: x,
                        kind: DepKind::ExtendedLoadElim,
                    });
                }
            }
        }

        // EXTENDED-DEPENDENCE 2: store X eliminated, overwritten by Z.
        // For every *load* Y strictly between X and Z that may alias Z:
        // add Z ->dep Y.
        for se in region.store_elims() {
            let (x, z) = (se.eliminated, se.overwriter);
            for j in (x.index() + 1)..z.index() {
                let y = MemOpId::new(j);
                if !live(y) {
                    continue;
                }
                if region.op(y).kind.is_load() && region.may_alias(z, y) {
                    deps.push(Dep {
                        src: z,
                        dst: y,
                        kind: DepKind::ExtendedStoreElim,
                    });
                }
            }
        }

        Self::index(n, deps)
    }

    /// Shared tail of both computations: canonical sort, deduplication (a
    /// pair may be produced by several elimination records; `Plain` wins
    /// over extended kinds because it sorts first), and per-op indexing.
    fn index(n: usize, mut deps: Vec<Dep>) -> Self {
        deps.sort_by_key(|d| (d.src, d.dst, d.kind as u8));
        deps.dedup_by_key(|d| (d.src, d.dst));

        let mut into = vec![Vec::new(); n];
        let mut from = vec![Vec::new(); n];
        for (i, d) in deps.iter().enumerate() {
            into[d.dst.index()].push(i as u32);
            from[d.src.index()].push(i as u32);
        }
        DepGraph { deps, into, from }
    }

    /// All dependences.
    pub fn iter(&self) -> impl Iterator<Item = Dep> + '_ {
        self.deps.iter().copied()
    }

    /// Number of dependences.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// `true` when there are no dependences.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Dependences `X →dep y` ending at `y` (the allocator walks these when
    /// the list scheduler schedules `y`).
    pub fn deps_into(&self, y: MemOpId) -> impl Iterator<Item = Dep> + '_ {
        self.into[y.index()]
            .iter()
            .map(move |&i| self.deps[i as usize])
    }

    /// Dependences `x →dep Y` starting at `x`.
    pub fn deps_from(&self, x: MemOpId) -> impl Iterator<Item = Dep> + '_ {
        self.from[x.index()]
            .iter()
            .map(move |&i| self.deps[i as usize])
    }

    /// `true` if `src →dep dst` exists.
    pub fn has_dep(&self, src: MemOpId, dst: MemOpId) -> bool {
        self.into[dst.index()]
            .iter()
            .any(|&i| self.deps[i as usize].src == src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::MemKind;

    /// Paper Figure 2 / Figure 4: M0 st, M1 ld, M2 st, M3 ld.
    /// Aliasing: M1↔M2 may alias, M3↔{M0, M2} may alias;
    /// the compiler disambiguates M0↔M2 (same base, disjoint offsets).
    fn figure2_region() -> (RegionSpec, [MemOpId; 4]) {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Load, 3);
        r.set_may_alias(m1, m2, true);
        r.set_may_alias(m3, m0, true);
        r.set_may_alias(m3, m2, true);
        (r, [m0, m1, m2, m3])
    }

    #[test]
    fn plain_dependences_follow_program_order() {
        let (r, [m0, m1, m2, m3]) = figure2_region();
        let deps = DepGraph::compute(&r);
        assert!(deps.has_dep(m1, m2));
        assert!(deps.has_dep(m0, m3));
        assert!(deps.has_dep(m2, m3));
        // No store-store dep: compiler disambiguated M0/M2.
        assert!(!deps.has_dep(m0, m2));
        // Never backward for plain deps.
        assert!(!deps.has_dep(m2, m1));
        assert_eq!(deps.len(), 3);
    }

    #[test]
    fn load_load_pairs_never_depend() {
        let mut r = RegionSpec::new();
        let a = r.push(MemKind::Load, 0);
        let b = r.push(MemKind::Load, 0); // same loc class => may alias
        let deps = DepGraph::compute(&r);
        assert!(!deps.has_dep(a, b));
        assert!(deps.is_empty());
    }

    #[test]
    fn nospec_ops_depend_despite_disjoint_aliasing() {
        // st A, ld B with A/B provably disjoint: normally no dependence,
        // but marking either op unspeculatable forces one. Both compute
        // paths must agree (the sealed path enumerates nospec pairs
        // separately from the bucket/override scans).
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let l = r.push(MemKind::Load, 1);
        assert!(DepGraph::compute(&r).is_empty());
        r.set_nospec(l);
        let fast = DepGraph::compute(&r);
        let naive = DepGraph::compute_naive(&r);
        assert!(fast.has_dep(s, l));
        assert!(naive.has_dep(s, l));
        assert_eq!(fast.len(), 1);
        assert_eq!(naive.len(), 1);
        // Load-load pairs still never depend, nospec or not.
        let mut r2 = RegionSpec::new();
        let a = r2.push(MemKind::Load, 0);
        let b = r2.push(MemKind::Load, 1);
        r2.set_nospec(a);
        r2.set_nospec(b);
        assert!(DepGraph::compute(&r2).is_empty());
        assert!(DepGraph::compute_naive(&r2).is_empty());
        // Eliminated nospec ops take no part.
        let mut r3 = RegionSpec::new();
        let src = r3.push(MemKind::Store, 0);
        let z = r3.push(MemKind::Load, 0);
        let other = r3.push(MemKind::Load, 1);
        r3.set_nospec(z);
        r3.add_load_elim(src, z);
        let d3 = DepGraph::compute(&r3);
        assert!(!d3.has_dep(src, z) && !d3.has_dep(z, other));
        assert_eq!(
            DepGraph::compute_naive(&r3)
                .iter()
                .collect::<Vec<_>>()
                .len(),
            d3.len()
        );
    }

    /// Paper Figure 5: M1 ld [r1], M2 ld [r0+4], M3 st [r0], M4 st [r1],
    /// M5 ld [r0+4] eliminated by forwarding from M2.
    /// M3 may alias M2/M5 ([r0] vs [r0+4] conservatively may-alias in the
    /// paper's example); M4 may alias M1.
    fn figure5_region() -> (RegionSpec, [MemOpId; 5]) {
        let mut r = RegionSpec::new();
        let m1 = r.push(MemKind::Load, 1); // [r1]
        let m2 = r.push(MemKind::Load, 2); // [r0+4]
        let m3 = r.push(MemKind::Store, 3); // [r0]
        let m4 = r.push(MemKind::Store, 4); // [r1]
        let m5 = r.push(MemKind::Load, 2); // [r0+4] == m2's location
        r.set_may_alias(m3, m2, true);
        r.set_may_alias(m3, m5, true);
        r.set_may_alias(m4, m1, true);
        r.add_load_elim(m2, m5);
        (r, [m1, m2, m3, m4, m5])
    }

    #[test]
    fn extended_dep_1_adds_backward_store_edges() {
        let (r, [m1, m2, m3, m4, _m5]) = figure5_region();
        let deps = DepGraph::compute(&r);
        // Plain: m3 ->dep m5 would exist but m5 is eliminated; m4 ->dep m1? m1
        // precedes m4 so dep is m1 ->dep m4.
        assert!(deps.has_dep(m1, m4));
        assert!(deps.has_dep(m2, m3)); // plain ld-then-st may-alias
                                       // Extended: store m3 (between m2 and m5, may-alias m2) gets m3 ->dep m2.
        let ext: Vec<_> = deps
            .iter()
            .filter(|d| d.kind == DepKind::ExtendedLoadElim)
            .collect();
        assert_eq!(ext.len(), 1);
        assert_eq!((ext[0].src, ext[0].dst), (m3, m2));
        // m4 does not alias m2, so no extended edge from m4.
        assert!(!deps.has_dep(m4, m2));
    }

    #[test]
    fn extended_dep_1_skips_intervening_loads() {
        // st A; ld A; ld A(eliminated, forwarded from the store)
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let mid = r.push(MemKind::Load, 0);
        let z = r.push(MemKind::Load, 0);
        r.add_load_elim(s, z);
        let deps = DepGraph::compute(&r);
        // The intervening *load* `mid` creates no extended dep onto `s`
        // (only its plain dep s ->dep mid exists).
        assert!(deps.has_dep(s, mid));
        assert!(!deps
            .iter()
            .any(|d| d.kind == DepKind::ExtendedLoadElim && d.src == mid));
    }

    /// Paper Figure 9: store elimination. M0 st [r0+4] eliminated because
    /// M4 st [r0+4]... we model: M0 st A (eliminated), M1 ld B, M2 st C,
    /// M3 st A (overwriter), with B may-alias A.
    #[test]
    fn extended_dep_2_adds_backward_load_edges_only() {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Store, 0);
        r.set_may_alias(m1, m0, true);
        r.set_may_alias(m1, m3, true);
        r.set_may_alias(m2, m0, true);
        r.set_may_alias(m2, m3, true);
        r.add_store_elim(m0, m3);
        let deps = DepGraph::compute(&r);
        let ext: Vec<_> = deps
            .iter()
            .filter(|d| d.kind == DepKind::ExtendedStoreElim)
            .collect();
        // Only the load m1 gets Z ->dep Y; the store m2 is exempt.
        assert_eq!(ext.len(), 1);
        assert_eq!((ext[0].src, ext[0].dst), (m3, m1));
        assert!(!deps.has_dep(m3, m2));
    }

    #[test]
    fn eliminated_ops_take_no_part_in_plain_deps() {
        let (r, [_m1, _m2, m3, _m4, m5]) = figure5_region();
        let deps = DepGraph::compute(&r);
        // m3 ->dep m5 (st then aliasing ld) must NOT exist: m5 is gone.
        assert!(!deps.has_dep(m3, m5));
        assert!(deps.deps_into(m5).next().is_none());
        assert!(deps.deps_from(m5).next().is_none());
    }

    #[test]
    fn duplicate_pairs_are_deduplicated() {
        // Two load elims with the same source produce the same extended edge.
        let mut r = RegionSpec::new();
        let x = r.push(MemKind::Load, 0);
        let y = r.push(MemKind::Store, 0);
        let z1 = r.push(MemKind::Load, 0);
        let z2 = r.push(MemKind::Load, 0);
        r.add_load_elim(x, z1);
        r.add_load_elim(x, z2);
        let deps = DepGraph::compute(&r);
        let count = deps.iter().filter(|d| d.src == y && d.dst == x).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn both_directions_can_coexist_via_extension() {
        // Paper §4.1: "there are both dependence M1 ->dep M3 and extended
        // dependence M3 ->dep M1" — a pair connected in both directions.
        let (r, [_m1, m2, m3, _m4, _m5]) = figure5_region();
        let deps = DepGraph::compute(&r);
        assert!(deps.has_dep(m2, m3));
        assert!(deps.has_dep(m3, m2));
    }
}
