//! Check- and anti-constraint derivation — the paper's `CHECK-CONSTRAINT`
//! and `ANTI-CONSTRAINT` rules (§4.1–§4.2).
//!
//! Given the dependences and a schedule:
//!
//! * **`CHECK-CONSTRAINT`** `X →check Y`: derived from `X →dep Y` when `Y`
//!   precedes `X` after scheduling. `X` must check `Y`'s alias register —
//!   so `C(X)`, `P(Y)`, and `order(X) ≤ order(Y)`.
//! * **`ANTI-CONSTRAINT`** `X →anti Y`: derived from `X →dep Y` when `X`
//!   precedes `Y` after scheduling, there is no `Y →check X`, `P(X)` and
//!   `C(Y)`. `Y` must *not* check `X` — so `order(X) < order(Y)` — because
//!   the pair may truly alias at runtime and a check would raise a false
//!   positive alias exception (and an expensive region rollback) even
//!   though the aliasing does not affect optimization correctness.
//!
//! This module implements the *batch* derivation used for analysis,
//! statistics (the paper's Figure 19) and validation. The allocator in
//! [`crate::alloc`] re-derives the same constraints *incrementally* as the
//! list scheduler runs, exactly like the paper's Figure 13 algorithm.

use crate::deps::DepGraph;
use crate::ids::MemOpId;
use crate::region::RegionSpec;

/// The two constraint kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintKind {
    /// `X →check Y`: X must check Y's alias register (`order(X) ≤ order(Y)`).
    Check,
    /// `X →anti Y`: Y must not check X (`order(X) < order(Y)`).
    Anti,
}

/// A derived constraint `src → dst` of the given kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Constraint {
    /// Left-hand operation (`X`).
    pub src: MemOpId,
    /// Right-hand operation (`Y`).
    pub dst: MemOpId,
    /// Check or anti.
    pub kind: ConstraintKind,
}

/// Aggregate constraint statistics (the paper's Figure 19 reports these
/// normalized to the number of memory operations).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ConstraintStats {
    /// Number of check-constraints.
    pub checks: usize,
    /// Number of anti-constraints.
    pub antis: usize,
    /// Number of scheduled memory operations considered.
    pub mem_ops: usize,
}

impl ConstraintStats {
    /// Check-constraints per memory operation.
    pub fn checks_per_op(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            self.checks as f64 / self.mem_ops as f64
        }
    }

    /// Anti-constraints per memory operation.
    pub fn antis_per_op(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            self.antis as f64 / self.mem_ops as f64
        }
    }
}

/// The batch-derived constraint graph for a fixed schedule.
#[derive(Clone, Debug, Default)]
pub struct ConstraintGraph {
    constraints: Vec<Constraint>,
    p_bit: Vec<bool>,
    c_bit: Vec<bool>,
}

impl ConstraintGraph {
    /// Derives all check- and anti-constraints for `schedule`.
    ///
    /// `schedule` lists the surviving (non-eliminated) memory operations in
    /// optimized execution order.
    ///
    /// # Panics
    /// Panics if the schedule mentions an eliminated or out-of-range op.
    pub fn derive(region: &RegionSpec, deps: &DepGraph, schedule: &[MemOpId]) -> Self {
        let n = region.len();
        // One pass over the elimination records instead of a linear scan
        // per scheduled op.
        let mut eliminated = vec![false; n];
        for e in region.load_elims() {
            eliminated[e.eliminated.index()] = true;
        }
        for e in region.store_elims() {
            eliminated[e.eliminated.index()] = true;
        }
        let mut pos = vec![usize::MAX; n];
        for (i, &op) in schedule.iter().enumerate() {
            assert!(!eliminated[op.index()], "eliminated op {op} in schedule");
            assert!(pos[op.index()] == usize::MAX, "op {op} scheduled twice");
            pos[op.index()] = i;
        }

        let mut constraints = Vec::new();
        let mut p_bit = vec![false; n];
        let mut c_bit = vec![false; n];

        // CHECK-CONSTRAINT pass: X ->dep Y with Y before X in the schedule.
        for d in deps.iter() {
            let (px, py) = (pos[d.src.index()], pos[d.dst.index()]);
            if px == usize::MAX || py == usize::MAX {
                continue;
            }
            if py < px {
                constraints.push(Constraint {
                    src: d.src,
                    dst: d.dst,
                    kind: ConstraintKind::Check,
                });
                c_bit[d.src.index()] = true;
                p_bit[d.dst.index()] = true;
            }
        }

        // ANTI-CONSTRAINT pass (needs final P/C bits and the check set).
        // The check pairs are hashed so the reverse-check lookup is O(1)
        // per dependence instead of a scan over all checks.
        let check_pairs: std::collections::HashSet<(MemOpId, MemOpId)> =
            constraints.iter().map(|c| (c.src, c.dst)).collect();
        let mut antis = Vec::new();
        for d in deps.iter() {
            let (px, py) = (pos[d.src.index()], pos[d.dst.index()]);
            if px == usize::MAX || py == usize::MAX {
                continue;
            }
            if px < py
                && !check_pairs.contains(&(d.dst, d.src))
                && p_bit[d.src.index()]
                && c_bit[d.dst.index()]
            {
                antis.push(Constraint {
                    src: d.src,
                    dst: d.dst,
                    kind: ConstraintKind::Anti,
                });
            }
        }
        constraints.extend(antis);

        ConstraintGraph {
            constraints,
            p_bit,
            c_bit,
        }
    }

    /// All constraints.
    pub fn iter(&self) -> impl Iterator<Item = Constraint> + '_ {
        self.constraints.iter().copied()
    }

    /// All check-constraints.
    pub fn checks(&self) -> impl Iterator<Item = Constraint> + '_ {
        self.constraints
            .iter()
            .copied()
            .filter(|c| c.kind == ConstraintKind::Check)
    }

    /// All anti-constraints.
    pub fn antis(&self) -> impl Iterator<Item = Constraint> + '_ {
        self.constraints
            .iter()
            .copied()
            .filter(|c| c.kind == ConstraintKind::Anti)
    }

    /// `true` when `x` sets an alias register (some op must check it).
    pub fn p_bit(&self, x: MemOpId) -> bool {
        self.p_bit[x.index()]
    }

    /// `true` when `x` checks alias registers.
    pub fn c_bit(&self, x: MemOpId) -> bool {
        self.c_bit[x.index()]
    }

    /// Whether a specific check-constraint exists.
    pub fn has_check(&self, src: MemOpId, dst: MemOpId) -> bool {
        self.constraints
            .iter()
            .any(|c| c.kind == ConstraintKind::Check && c.src == src && c.dst == dst)
    }

    /// Whether a specific anti-constraint exists.
    pub fn has_anti(&self, src: MemOpId, dst: MemOpId) -> bool {
        self.constraints
            .iter()
            .any(|c| c.kind == ConstraintKind::Anti && c.src == src && c.dst == dst)
    }

    /// Aggregate statistics over `mem_ops` scheduled operations.
    pub fn stats(&self, mem_ops: usize) -> ConstraintStats {
        ConstraintStats {
            checks: self.checks().count(),
            antis: self.antis().count(),
            mem_ops,
        }
    }

    /// `true` if the constraint graph (check + anti edges, in allocation
    /// precedence direction `src` before `dst`) contains a cycle — the case
    /// the allocator must break with an `AMOV` (paper §5.2).
    pub fn has_cycle(&self, region_len: usize) -> bool {
        // Kahn's algorithm over the op-indexed graph.
        let mut indeg = vec![0usize; region_len];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); region_len];
        for c in &self.constraints {
            adj[c.src.index()].push(c.dst.index());
            indeg[c.dst.index()] += 1;
        }
        let mut stack: Vec<usize> = (0..region_len).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        seen != region_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::MemKind;

    /// Figure 2/4 region: M0 st, M1 ld, M2 st, M3 ld with
    /// M1↔M2, M3↔M0, M3↔M2 may-alias. Schedule: M3 M1 M2 M0.
    fn figure2() -> (RegionSpec, DepGraph, Vec<MemOpId>) {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Load, 3);
        r.set_may_alias(m1, m2, true);
        r.set_may_alias(m3, m0, true);
        r.set_may_alias(m3, m2, true);
        let deps = DepGraph::compute(&r);
        (r, deps, vec![m3, m1, m2, m0])
    }

    #[test]
    fn figure2_checks_match_paper() {
        let (r, deps, sched) = figure2();
        let g = ConstraintGraph::derive(&r, &deps, &sched);
        let (m0, m1, m2, m3) = (
            MemOpId::new(0),
            MemOpId::new(1),
            MemOpId::new(2),
            MemOpId::new(3),
        );
        // M2 st checks the hoisted M3 ld; M2 also checks... no: M1 was not
        // reordered w.r.t. M2 (ld before st in both), dep m1->m2 with m1
        // still earlier => no check. M0 hoisted *below*: M0 checks M3 (dep
        // m0->m3 with m3 now before m0) and M0 checks... m2: no dep.
        assert!(g.has_check(m2, m3));
        assert!(g.has_check(m0, m3));
        assert!(!g.has_check(m2, m1));
        assert_eq!(g.checks().count(), 2);
        // P on the hoisted load M3 only; C on the stores M2, M0.
        assert!(g.p_bit(m3));
        assert!(!g.p_bit(m1));
        assert!(g.c_bit(m2));
        assert!(g.c_bit(m0));
        // Anti: m1 ->dep m2, m1 before m2 in schedule, but P(m1) is not set
        // => no anti needed.
        assert_eq!(g.antis().count(), 0);
        assert!(!g.has_cycle(r.len()));
    }

    /// Figure 5/8: load elim creates a check between non-reordered ops and
    /// an anti-constraint.
    fn figure5() -> (RegionSpec, DepGraph, Vec<MemOpId>) {
        let mut r = RegionSpec::new();
        let m1 = r.push(MemKind::Load, 1); // ld [r1]
        let m2 = r.push(MemKind::Load, 2); // ld [r0+4]
        let m3 = r.push(MemKind::Store, 3); // st [r0]
        let m4 = r.push(MemKind::Store, 4); // st [r1]
        let m5 = r.push(MemKind::Load, 2); // ld [r0+4], eliminated
        r.set_may_alias(m3, m2, true);
        r.set_may_alias(m3, m5, true);
        r.set_may_alias(m4, m1, true);
        r.add_load_elim(m2, m5);
        let deps = DepGraph::compute(&r);
        // Not reordered: schedule is original order minus m5.
        (r, deps, vec![m1, m2, m3, m4])
    }

    #[test]
    fn figure8_extended_check_between_non_reordered_ops() {
        let (r, deps, sched) = figure5();
        let g = ConstraintGraph::derive(&r, &deps, &sched);
        let (m1, m2, m3, m4) = (
            MemOpId::new(0),
            MemOpId::new(1),
            MemOpId::new(2),
            MemOpId::new(3),
        );
        // Extended dep m3 ->dep m2 with m2 scheduled before m3 gives the
        // check m3 -> m2 even though they are not reordered.
        assert!(g.has_check(m3, m2));
        assert_eq!(g.checks().count(), 1);
        // Anti-constraint m2 ->anti m3? m2 ->dep m3 (plain), m2 before m3,
        // no m3->check... m3 DOES check m2 — the rule requires no
        // *m2->check m3*... notation: anti X->anti Y needs no Y->check X.
        // Here X=m2, Y=m3; m3->check m2 exists, so NO anti m2->m3.
        assert!(!g.has_anti(m2, m3));
        // Anti m1 ->anti m4? dep m1->m4, m1 before m4, no m4->check m1,
        // but P(m1) is false => no anti. Matches paper: "There is also no
        // anti-constraint M1 ->anti M4 because M1 does not have P bit."
        assert!(!g.has_anti(m1, m4));
        assert!(g.p_bit(m2));
        assert!(g.c_bit(m3));
    }

    #[test]
    fn anti_constraint_appears_when_checker_follows_producer() {
        // Figure 10 scenario: two loads hoisted region where a later store
        // with C bit follows a P-bit load it must not check.
        // Build: M0 ld A, M1 ld B, M2 st B', M3 st A' with
        //   M2 may-alias M1 (check after reorder), M3 may-alias M0,
        //   and M2 may-alias M0 (must not be checked!).
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Load, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Store, 3);
        r.set_may_alias(m2, m1, true);
        r.set_may_alias(m3, m0, true);
        r.set_may_alias(m2, m0, true); // benign true aliasing
        let deps = DepGraph::compute(&r);
        // Schedule hoists nothing between m0/m2 but swaps m1 below m2?
        // Keep order m1, m0, m2, m3 — m0/m1 swapped, so:
        //   dep m0->dep m2 (m0 before m2 in schedule) + P(m0)? P(m0) comes
        //   from m3 checking m0? m3 is after m0 in schedule, dep m0->m3...
        // Simpler: hoist m0 and m1 above nothing; instead schedule
        // m1, m0, m2, m3 and eliminate nothing. Then checks arise only from
        // swapped pairs: (m0, m1) have no dep (two loads). No checks at all.
        // To make P(m0) true we hoist m0 above a store it may alias... build
        // a cleaner case below instead.
        let _ = deps;

        let mut r = RegionSpec::new();
        let s0 = r.push(MemKind::Store, 9); // st X
        let l = r.push(MemKind::Load, 1); //  ld A   (will hoist above s0)
        let s1 = r.push(MemKind::Store, 2); // st B  (C bit via another check)
        let l2 = r.push(MemKind::Load, 3); // ld C   (hoisted above s1)
        r.set_may_alias(s0, l, true); // hoisting l above s0 => s0 checks l => P(l)
        r.set_may_alias(s1, l2, true); // hoisting l2 above s1 => s1 checks l2 => C(s1)
        r.set_may_alias(l, s1, true); // dep l->s1, not reordered => anti l->s1
        let deps = DepGraph::compute(&r);
        let sched = vec![l, l2, s0, s1]; // hoist both loads to the top
        let g = ConstraintGraph::derive(&r, &deps, &sched);
        assert!(g.has_check(s0, l));
        assert!(g.has_check(s1, l2));
        assert!(g.has_anti(l, s1));
        assert_eq!(g.antis().count(), 1);
        let st = g.stats(sched.len());
        assert_eq!(st.checks, 2);
        assert_eq!(st.antis, 1);
        assert!((st.checks_per_op() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_detection_on_figure12_shape() {
        // Paper Figure 9/12: store elimination produces a constraint cycle.
        // M1 ld [r1]; M2 st [r4]; M3 st [r2]; M4 st [r4]; M5 ld [r0+4];
        // M0 (first op) st [r0+4] eliminated, overwritten by M4? We model
        // the published constraint shape directly:
        //   checks: M5 -> M4 (reorder), M4 -> M1 (extended), anti M1 -> ...
        // Build concretely:
        //   A: st P (eliminated, overwritten by D)
        //   B: ld Q (may alias D)   — between A and D
        //   C: st Q' hoist target
        //   D: st P (overwriter), scheduled before... we need a cycle:
        // check X->Y and path Y->...->X via anti.
        let mut r = RegionSpec::new();
        let a = r.push(MemKind::Store, 0); // eliminated store
        let b = r.push(MemKind::Load, 1); // load between, may-alias overwriter
        let d = r.push(MemKind::Store, 2); // overwriter
        let e = r.push(MemKind::Load, 3); // load after, hoisted above d
        r.set_may_alias(d, b, true); // extended dep d->b
        r.set_may_alias(d, e, true); // dep d->e; hoist e above d => e? no:
                                     // dep d->dep e, e before d after sched
                                     // => check d ... X=d? X->dep Y = d->e;
                                     // Y=e precedes X=d => d ->check e. C(d),P(e).
        r.set_may_alias(b, e, false);
        r.add_store_elim(a, d);
        let deps = DepGraph::compute(&r);
        assert!(deps.has_dep(d, b)); // extended
                                     // Schedule: b, e, d  (e hoisted above d; b stays first).
        let sched = vec![b, e, d];
        let g = ConstraintGraph::derive(&r, &deps, &sched);
        // d checks e (reordered) and d checks b (extended, non-reordered).
        assert!(g.has_check(d, e));
        assert!(g.has_check(d, b));
        // anti: b ->anti ...? P(b) set (d checks b). C(b)? no. Look for
        // anti e->d? dep? none. The cycle in the paper needs one more op —
        // covered in alloc.rs tests; here just ensure no bogus cycle.
        assert!(!g.has_cycle(r.len()));
    }
}

impl ConstraintGraph {
    /// Renders the constraint graph in Graphviz `dot` format: solid edges
    /// for check-constraints, dashed for anti-constraints, P/C bits in the
    /// node labels. Handy for visualizing the paper's Figures 7(d), 8(b)
    /// and 12.
    ///
    /// ```
    /// use smarq::{RegionSpec, MemKind, DepGraph, ConstraintGraph};
    /// let mut r = RegionSpec::new();
    /// let st = r.push(MemKind::Store, 0);
    /// let ld = r.push(MemKind::Load, 0);
    /// let deps = DepGraph::compute(&r);
    /// let g = ConstraintGraph::derive(&r, &deps, &[ld, st]);
    /// let dot = g.to_dot(&r);
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("M0 -> M1"));
    /// ```
    pub fn to_dot(&self, region: &crate::region::RegionSpec) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph constraints {\n");
        out.push_str("  rankdir=LR;\n");
        for (id, op) in region.iter() {
            if region.is_eliminated(id) {
                continue;
            }
            let bits = match (self.p_bit(id), self.c_bit(id)) {
                (true, true) => " [P,C]",
                (true, false) => " [P]",
                (false, true) => " [C]",
                (false, false) => "",
            };
            let _ = writeln!(out, "  {id} [label=\"{id}: {}{bits}\"];", op.kind);
        }
        for c in self.iter() {
            let style = match c.kind {
                ConstraintKind::Check => "solid",
                ConstraintKind::Anti => "dashed",
            };
            let _ = writeln!(out, "  {} -> {} [style={style}];", c.src, c.dst);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::region::{MemKind, RegionSpec};

    #[test]
    fn dot_marks_bits_and_edge_styles() {
        let mut r = RegionSpec::new();
        let s0 = r.push(MemKind::Store, 9);
        let l = r.push(MemKind::Load, 1);
        let s1 = r.push(MemKind::Store, 2);
        let l2 = r.push(MemKind::Load, 3);
        r.set_may_alias(s0, l, true);
        r.set_may_alias(s1, l2, true);
        r.set_may_alias(l, s1, true);
        let deps = crate::deps::DepGraph::compute(&r);
        let g = ConstraintGraph::derive(&r, &deps, &[l, l2, s0, s1]);
        let dot = g.to_dot(&r);
        assert!(dot.contains("M1: ld [P]"));
        assert!(dot.contains("M2: st [C]"));
        assert!(dot.contains("[style=solid]"));
        assert!(dot.contains("[style=dashed]"), "anti edge rendered: {dot}");
    }

    #[test]
    fn dot_skips_eliminated_ops() {
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let z = r.push(MemKind::Load, 0);
        r.add_load_elim(s, z);
        let deps = crate::deps::DepGraph::compute(&r);
        let g = ConstraintGraph::derive(&r, &deps, &[s]);
        let dot = g.to_dot(&r);
        assert!(dot.contains("M0"));
        assert!(!dot.contains("M1 ["));
    }
}
