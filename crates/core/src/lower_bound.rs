//! Live-range lower bound on the alias register working set (paper §6.2).
//!
//! Given a check-constraint `X →check Y`, the alias register set by `Y`
//! must stay alive from `Y`'s execution until `X`'s execution. As in
//! traditional register allocation, the maximum number of live ranges
//! crossing any program point lower-bounds the working set of *every*
//! possible alias register allocation. The paper's Figure 17 uses this
//! bound to show that SMARQ's constraint-order allocation is near optimal.

use crate::constraints::ConstraintGraph;
use crate::deps::DepGraph;
use crate::ids::MemOpId;
use crate::region::RegionSpec;

/// Computes the live-range lower bound on the alias register working set
/// for `schedule`.
///
/// Each operation with a P bit is live from its schedule position to the
/// position of its last checker; the result is the maximum number of
/// simultaneously live registers across all program points.
///
/// ```
/// use smarq::{RegionSpec, MemKind, DepGraph, live_range_lower_bound};
/// let mut r = RegionSpec::new();
/// let st = r.push(MemKind::Store, 0);
/// let ld = r.push(MemKind::Load, 0);
/// let deps = DepGraph::compute(&r);
/// // Hoist the load above the store: one register live between them.
/// assert_eq!(live_range_lower_bound(&r, &deps, &[ld, st]), 1);
/// ```
pub fn live_range_lower_bound(region: &RegionSpec, deps: &DepGraph, schedule: &[MemOpId]) -> u32 {
    let graph = ConstraintGraph::derive(region, deps, schedule);
    let mut pos = vec![usize::MAX; region.len()];
    for (i, &op) in schedule.iter().enumerate() {
        pos[op.index()] = i;
    }
    // Last checker position per checkee, in one pass over the check set
    // (instead of rescanning every check per P op).
    let mut last_checker = vec![None::<usize>; region.len()];
    for c in graph.checks() {
        let p = pos[c.src.index()];
        let e = &mut last_checker[c.dst.index()];
        *e = Some(e.map_or(p, |m| m.max(p)));
    }
    // Live range of each P op: [its position, last checker's position].
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for (id, _) in region.iter() {
        if !graph.p_bit(id) || pos[id.index()] == usize::MAX {
            continue;
        }
        if let Some(end) = last_checker[id.index()] {
            ranges.push((pos[id.index()], end));
        }
    }
    // Maximum overlap: sweep.
    let mut events: Vec<(usize, i32)> = Vec::new();
    for &(s, e) in &ranges {
        events.push((s, 1));
        events.push((e + 1, -1));
    }
    events.sort();
    let mut cur = 0i32;
    let mut max = 0i32;
    for (_, d) in events {
        cur += d;
        max = max.max(cur);
    }
    max as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::MemKind;

    #[test]
    fn empty_region_has_zero_bound() {
        let r = RegionSpec::new();
        let deps = DepGraph::compute(&r);
        assert_eq!(live_range_lower_bound(&r, &deps, &[]), 0);
    }

    #[test]
    fn no_speculation_means_zero_bound() {
        let mut r = RegionSpec::new();
        let a = r.push(MemKind::Store, 0);
        let b = r.push(MemKind::Load, 0);
        let deps = DepGraph::compute(&r);
        // Program order: nothing reordered, no registers needed.
        assert_eq!(live_range_lower_bound(&r, &deps, &[a, b]), 0);
    }

    #[test]
    fn overlapping_hoists_stack_up() {
        // Three loads hoisted above three stores they may alias, all ranges
        // overlapping at the middle => bound 3.
        let mut r = RegionSpec::new();
        let s: Vec<_> = (0..3).map(|i| r.push(MemKind::Store, i)).collect();
        let l: Vec<_> = (10..13).map(|i| r.push(MemKind::Load, i)).collect();
        for i in 0..3 {
            r.set_may_alias(s[i], l[i], true);
        }
        let deps = DepGraph::compute(&r);
        let sched = vec![l[0], l[1], l[2], s[0], s[1], s[2]];
        assert_eq!(live_range_lower_bound(&r, &deps, &sched), 3);
    }

    #[test]
    fn disjoint_hoists_do_not_stack() {
        // Two independent hoist pairs, serialized: bound 1.
        let mut r = RegionSpec::new();
        let s0 = r.push(MemKind::Store, 0);
        let l0 = r.push(MemKind::Load, 1);
        let s1 = r.push(MemKind::Store, 2);
        let l1 = r.push(MemKind::Load, 3);
        r.set_may_alias(s0, l0, true);
        r.set_may_alias(s1, l1, true);
        let deps = DepGraph::compute(&r);
        let sched = vec![l0, s0, l1, s1];
        assert_eq!(live_range_lower_bound(&r, &deps, &sched), 1);
    }

    #[test]
    fn bound_never_exceeds_smarq_working_set() {
        // Sanity on a mixed example: lower bound <= SMARQ's working set.
        let mut r = RegionSpec::new();
        let s: Vec<_> = (0..4).map(|i| r.push(MemKind::Store, i)).collect();
        let l: Vec<_> = (10..14).map(|i| r.push(MemKind::Load, i)).collect();
        for i in 0..4 {
            r.set_may_alias(s[i], l[i], true);
        }
        let deps = DepGraph::compute(&r);
        let sched = vec![l[0], l[1], s[0], l[2], s[1], l[3], s[2], s[3]];
        let lb = live_range_lower_bound(&r, &deps, &sched);
        let alloc = crate::allocate(&r, &deps, &sched, 64).unwrap();
        assert!(lb <= alloc.working_set());
    }
}
