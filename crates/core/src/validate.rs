//! Allocation validator: replays the hardware semantics over allocated code
//! and proves soundness (every required alias detection is performed) and
//! precision (no prohibited detection — i.e. no possible false positive).
//!
//! The validator tracks *which operation's access range* occupies each alias
//! register (contents follow `AMOV`s) and, for every executed `C`-bit
//! instruction, records the set of register contents the hardware scan
//! examines. It then asserts:
//!
//! 1. **Soundness** — for every check-constraint `X →check Y` derived by
//!    the batch rules of [`crate::constraints`], `Y`'s range is among the
//!    contents examined by `X` (possibly relocated by an `AMOV`), and the
//!    load/load filter does not suppress it.
//! 2. **Precision** — an examined content can raise an exception only when
//!    it *should*: if `X` examines `Z`'s range, `X` and `Z` may alias, and
//!    they are not both loads, then `X →check Z` must be a required check.
//!    Otherwise a genuine runtime alias would roll back the region for
//!    nothing — exactly the false positive SMARQ's anti-constraints and
//!    `AMOV`s exist to prevent.
//! 3. **Mechanics** — all offsets are within the register file, `order =
//!    base + offset` holds at every instruction, and an `AMOV` always finds
//!    its source range still live.

use crate::alloc::{AliasCode, Allocation};
use crate::constraints::ConstraintGraph;
use crate::deps::DepGraph;
use crate::error::ValidationError;
use crate::ids::MemOpId;
use crate::queue::AliasQueue;
use crate::region::RegionSpec;
use std::collections::HashSet;

/// Validates `alloc` against the region, its dependences and the schedule.
///
/// # Errors
/// The first violated property, as a [`ValidationError`]. See the
/// [module docs](self) for the properties verified.
pub fn validate_allocation(
    region: &RegionSpec,
    deps: &DepGraph,
    schedule: &[MemOpId],
    alloc: &Allocation,
) -> Result<(), ValidationError> {
    // Seal once: the replay below probes may_alias for every (checker,
    // examined entry) pair — a bit-matrix lookup instead of a HashMap probe.
    let sealed = region.sealed();
    let graph = ConstraintGraph::derive(region, deps, schedule);
    let required: HashSet<(MemOpId, MemOpId)> = graph.checks().map(|c| (c.src, c.dst)).collect();
    let mut performed: HashSet<(MemOpId, MemOpId)> = HashSet::new();

    // Determine the register count to model: the max offset referenced + 1
    // (callers that care about a specific file size compare working_set
    // themselves; symbolic replay only needs enough slots).
    let num_regs = alloc.working_set().max(1);

    let mut queue: AliasQueue<MemOpId> = AliasQueue::new(num_regs);
    let mut base = 0u64;

    let oob = |op: MemOpId, offset: u32| ValidationError::OffsetOutOfRange {
        op,
        offset,
        num_regs,
    };

    for code in alloc.code() {
        match *code {
            AliasCode::Op {
                id,
                p_bit,
                c_bit,
                offset,
            } => {
                if !(p_bit || c_bit) {
                    continue;
                }
                let offset = offset.ok_or(ValidationError::OrderInvariantBroken { op: id })?;
                let a = alloc
                    .op(id)
                    .ok_or(ValidationError::OrderInvariantBroken { op: id })?;
                if a.base.value() != base
                    || a.order.value() != base + offset.value() as u64
                    || a.offset != offset
                {
                    return Err(ValidationError::OrderInvariantBroken { op: id });
                }
                let is_load = region.op(id).kind.is_load();
                if c_bit {
                    // The hardware examines every valid entry at >= offset.
                    let hits = queue
                        .check(offset.value(), is_load, |_| true)
                        .map_err(|e| oob(id, e.offset))?;
                    for h in hits {
                        let z = queue
                            .get(h)
                            .expect("hit offset in range")
                            .expect("hit slot valid")
                            .payload;
                        performed.insert((id, z));
                        // Precision: a genuine alias here must be required.
                        if sealed.may_alias(id, z)
                            && !(is_load && region.op(z).kind.is_load())
                            && !required.contains(&(id, z))
                        {
                            return Err(ValidationError::FalsePositive {
                                producer: z,
                                checker: id,
                            });
                        }
                    }
                }
                if p_bit {
                    queue
                        .set(offset.value(), id, is_load)
                        .map_err(|e| oob(id, e.offset))?;
                }
            }
            AliasCode::Amov(amov) => {
                // The source register must still hold the moved range.
                let src = amov.src_offset.value();
                let entry = queue
                    .get(src)
                    .map_err(|e| oob(amov.moved_op, e.offset))?
                    .copied();
                match entry {
                    Some(e) if e.payload == amov.moved_op => {}
                    _ => return Err(ValidationError::PrematureRelease { op: amov.moved_op }),
                }
                queue
                    .amov(src, amov.dst_offset.value())
                    .map_err(|e| oob(amov.moved_op, e.offset))?;
            }
            AliasCode::Rotate(r) => {
                queue
                    .rotate(r.amount)
                    .map_err(|e| oob(MemOpId::new(0), e.offset))?;
                base += r.amount as u64;
            }
        }
    }

    // Soundness: every required check was performed on the live contents.
    for &(checker, checkee) in &required {
        if !performed.contains(&(checker, checkee)) {
            return Err(ValidationError::MissingCheck { checker, checkee });
        }
    }

    // REGISTER-ALLOCATION-RULE on the final orders, for the constraints
    // whose endpoints were not relocated by AMOVs (relocated ones are
    // covered by the replay above).
    let moved: HashSet<MemOpId> = alloc
        .code()
        .iter()
        .filter_map(|c| match c {
            AliasCode::Amov(a) => Some(a.moved_op),
            _ => None,
        })
        .collect();
    for c in graph.iter() {
        if moved.contains(&c.src) || moved.contains(&c.dst) {
            continue;
        }
        let (sa, da) = match (alloc.op(c.src), alloc.op(c.dst)) {
            (Some(s), Some(d)) => (s, d),
            _ => continue,
        };
        let ok = match c.kind {
            crate::constraints::ConstraintKind::Check => sa.order <= da.order,
            crate::constraints::ConstraintKind::Anti => sa.order < da.order,
        };
        if !ok {
            return Err(ValidationError::OrderRuleViolated {
                src: c.src,
                dst: c.dst,
                anti: c.kind == crate::constraints::ConstraintKind::Anti,
            });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate;
    use crate::region::MemKind;

    #[test]
    fn figure2_allocation_validates() {
        let mut r = RegionSpec::new();
        let m0 = r.push(MemKind::Store, 0);
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Store, 2);
        let m3 = r.push(MemKind::Load, 3);
        r.set_may_alias(m1, m2, true);
        r.set_may_alias(m3, m0, true);
        r.set_may_alias(m3, m2, true);
        let deps = DepGraph::compute(&r);
        let sched = vec![m3, m1, m2, m0];
        let alloc = allocate(&r, &deps, &sched, 64).unwrap();
        validate_allocation(&r, &deps, &sched, &alloc).unwrap();
    }

    #[test]
    fn missing_check_detected_on_tampered_code() {
        // Allocate correctly, then strip the C bit from a checker: the
        // validator must flag the missing required check.
        let mut r = RegionSpec::new();
        let st = r.push(MemKind::Store, 0);
        let ld = r.push(MemKind::Load, 0);
        let deps = DepGraph::compute(&r);
        let sched = vec![ld, st];
        let alloc = allocate(&r, &deps, &sched, 64).unwrap();

        // Tamper: rebuild an Allocation whose code drops the check.
        let code: Vec<AliasCode> = alloc
            .code()
            .iter()
            .map(|c| match *c {
                AliasCode::Op {
                    id, p_bit, offset, ..
                } if id == st => AliasCode::Op {
                    id,
                    p_bit,
                    c_bit: false,
                    offset,
                },
                other => other,
            })
            .collect();
        let per_op: Vec<_> = (0..r.len())
            .map(|i| alloc.op(MemOpId::new(i)).copied())
            .collect();
        let tampered = Allocation::from_parts(
            per_op,
            code,
            alloc.working_set(),
            alloc.stats(),
            alloc.final_checks().to_vec(),
        );
        let err = validate_allocation(&r, &deps, &sched, &tampered).unwrap_err();
        assert!(matches!(err, ValidationError::MissingCheck { .. }));
    }

    #[test]
    fn false_positive_detected_on_bad_order() {
        // Hand-build a bad allocation for the anti-constraint scenario:
        // l hoisted above s0 (required check), s1 must NOT examine l.
        let mut r = RegionSpec::new();
        let s0 = r.push(MemKind::Store, 9);
        let l = r.push(MemKind::Load, 1);
        let s1 = r.push(MemKind::Store, 2);
        let l2 = r.push(MemKind::Load, 3);
        r.set_may_alias(s0, l, true);
        r.set_may_alias(s1, l2, true);
        r.set_may_alias(l, s1, true);
        let deps = DepGraph::compute(&r);
        let sched = vec![l, l2, s0, s1];

        // Correct allocation first: validates.
        let good = allocate(&r, &deps, &sched, 64).unwrap();
        validate_allocation(&r, &deps, &sched, &good).unwrap();

        // Bad allocation: give l the *later* order so s1's scan reaches it.
        use crate::alloc::{AllocStats, OpAlias};
        use crate::ids::{Offset, Order};
        let mk = |p, c, ord: u64, off: u32| {
            Some(OpAlias {
                p_bit: p,
                c_bit: c,
                order: Order(ord),
                base: Order(0),
                offset: Offset(off),
            })
        };
        let per_op = vec![
            mk(false, true, 0, 0), // s0 checks from 0
            mk(true, false, 1, 1), // l sets order 1  (too late!)
            mk(false, true, 0, 0), // s1 checks from 0 -> examines l. BAD.
            mk(true, false, 0, 0), // l2 sets order 0
        ];
        let code = vec![
            AliasCode::Op {
                id: l,
                p_bit: true,
                c_bit: false,
                offset: Some(Offset(1)),
            },
            AliasCode::Op {
                id: l2,
                p_bit: true,
                c_bit: false,
                offset: Some(Offset(0)),
            },
            AliasCode::Op {
                id: s0,
                p_bit: false,
                c_bit: true,
                offset: Some(Offset(0)),
            },
            AliasCode::Op {
                id: s1,
                p_bit: false,
                c_bit: true,
                offset: Some(Offset(0)),
            },
        ];
        let bad = Allocation::from_parts(per_op, code, 2, AllocStats::default(), vec![]);
        let err = validate_allocation(&r, &deps, &sched, &bad).unwrap_err();
        assert!(
            matches!(err, ValidationError::FalsePositive { producer, checker }
                if producer == l && checker == s1),
            "expected false positive for (l, s1), got {err:?}"
        );
    }

    #[test]
    fn benign_examination_is_allowed() {
        // Two loads hoisted; the later store examines both but only may-
        // alias one: examining the other is benign (compiler proved
        // no-alias, hardware comparison can never fire).
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let la = r.push(MemKind::Load, 1);
        let lb = r.push(MemKind::Load, 2);
        r.set_may_alias(s, la, true);
        // s and lb never alias: no dep, no check — but the scan will pass
        // over lb's register. Must validate fine.
        let deps = DepGraph::compute(&r);
        let sched = vec![la, lb, s];
        let alloc = allocate(&r, &deps, &sched, 64).unwrap();
        validate_allocation(&r, &deps, &sched, &alloc).unwrap();
    }
}
