//! The SMARQ alias register allocation algorithm (paper §5, Figure 13).
//!
//! The allocator is driven *incrementally* by the list scheduler: every time
//! the scheduler commits a memory operation to the schedule it calls
//! [`Allocator::schedule_op`]. The allocator then
//!
//! 1. walks every dependence `X →dep Y` ending at the newly scheduled `Y`
//!    and turns it into a **check-constraint** (if `X` is still unscheduled
//!    — `Y` was hoisted above `X`) or an **anti-constraint** candidate (if
//!    `X` is already scheduled);
//! 2. maintains the partial order `T(·)` whose invariant — `T(src) <
//!    T(dst)` for every constraint edge — keeps the constraint graph
//!    acyclic. Check edges are repaired by lowering `T` of the (still
//!    unscheduled, hence unconstrained) checker; anti edges may require a
//!    reachability scan and, on a true cycle, the insertion of an **AMOV**
//!    instruction that relocates the producer's access range into a fresh,
//!    earlier-ordered register (paper §5.2);
//! 3. performs the delayed FIFO allocation of register *orders*: an
//!    operation's register is assigned only once every operation that must
//!    receive a no-later register has been assigned one, i.e. when the
//!    operation loses its last incoming constraint edge. Registers are
//!    released eagerly by emitting **rotate** instructions after the
//!    instruction whose scheduling completed the allocations;
//! 4. estimates the worst-case future register *offset* so the scheduler
//!    can switch into non-speculation mode before the file overflows
//!    (paper §5.3).
//!
//! The result is an [`Allocation`]: per-op P/C bits and offsets, AMOV and
//! rotate pseudo-instructions, working-set statistics, and the final
//! (post-AMOV) check pairs.

use crate::deps::DepGraph;
use crate::error::AllocError;
use crate::ids::{MemOpId, Offset, Order};
use crate::region::RegionSpec;
use std::collections::VecDeque;

/// Scheduling mode reported to the embedding list scheduler (paper §5.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerMode {
    /// Enough registers: the scheduler may speculatively reorder memory
    /// operations (creating new constraints).
    Speculation,
    /// Register pressure is close to the hardware limit: the scheduler must
    /// stop speculating (no new reordering) so rotation can drain the file.
    NonSpeculation,
}

/// Per-operation allocation result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpAlias {
    /// The operation sets an alias register (`P` bit).
    pub p_bit: bool,
    /// The operation checks alias registers (`C` bit).
    pub c_bit: bool,
    /// Register order (`base + offset`), counted from region entry.
    pub order: Order,
    /// `BASE` value at the operation's execution point.
    pub base: Order,
    /// Register offset encoded in the instruction.
    pub offset: Offset,
}

/// An `AMOV` pseudo-instruction to be emitted into the optimized code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AmovInsn {
    /// The operation whose access range is being relocated (or cleaned).
    pub moved_op: MemOpId,
    /// Source register offset (relative to `BASE` at the AMOV's position).
    pub src_offset: Offset,
    /// Destination register offset. Equal to `src_offset` for the pure
    /// clean-up form.
    pub dst_offset: Offset,
    /// `true` when the AMOV actually relocates the range to a new register
    /// (unscheduled checkers still need it); `false` for pure clean-up.
    pub is_move: bool,
}

/// A `rotate` pseudo-instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RotateInsn {
    /// How far `BASE` advances.
    pub amount: u32,
}

/// One element of the emitted alias-annotation stream, in execution order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasCode {
    /// A scheduled memory operation with its annotations. `offset` is
    /// `None` when the op needs no alias register (neither P nor C).
    Op {
        /// The memory operation.
        id: MemOpId,
        /// Set an alias register after executing.
        p_bit: bool,
        /// Check alias registers before executing (and before setting).
        c_bit: bool,
        /// Encoded register offset (present iff `p_bit || c_bit`).
        offset: Option<Offset>,
    },
    /// An alias-move instruction.
    Amov(AmovInsn),
    /// A rotation of the register queue.
    Rotate(RotateInsn),
}

/// Aggregate statistics of one allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AllocStats {
    /// Check-constraints inserted (paper Figure 19, first series).
    pub checks: usize,
    /// Anti-constraints inserted (paper Figure 19, second series).
    pub antis: usize,
    /// AMOV instructions inserted.
    pub amovs: usize,
    /// AMOVs that truly move to a new register (the rest are clean-ups).
    pub amov_moves: usize,
    /// Rotate instructions emitted.
    pub rotations: usize,
    /// Scheduled memory operations.
    pub mem_ops: usize,
    /// Operations carrying a P bit.
    pub p_ops: usize,
    /// Operations carrying a C bit.
    pub c_ops: usize,
}

/// A finished allocation. Produced by [`Allocator::finish`] or [`allocate`].
#[derive(Clone, Debug)]
pub struct Allocation {
    per_op: Vec<Option<OpAlias>>,
    code: Vec<AliasCode>,
    working_set: u32,
    stats: AllocStats,
    /// Final (post-AMOV-replacement) check pairs `(checker, checkee)` where
    /// the checkee may be represented by an AMOV proxy of `moved_op`.
    final_checks: Vec<(MemOpId, MemOpId)>,
}

impl Allocation {
    /// Assembles an allocation from raw parts. Used by the baseline
    /// allocators and, externally, by validator tests that need to build
    /// deliberately tampered allocations the real allocator would never
    /// emit.
    pub fn from_parts(
        per_op: Vec<Option<OpAlias>>,
        code: Vec<AliasCode>,
        working_set: u32,
        stats: AllocStats,
        final_checks: Vec<(MemOpId, MemOpId)>,
    ) -> Self {
        Allocation {
            per_op,
            code,
            working_set,
            stats,
            final_checks,
        }
    }

    /// Alias annotations for operation `id`, or `None` if the op needed no
    /// alias register (or was eliminated).
    pub fn op(&self, id: MemOpId) -> Option<&OpAlias> {
        self.per_op.get(id.index()).and_then(|o| o.as_ref())
    }

    /// The emitted alias-annotation stream, in execution order.
    pub fn code(&self) -> &[AliasCode] {
        &self.code
    }

    /// Size of the alias register working set: `max offset + 1` over every
    /// register reference in the code (paper §6.2). This is the minimum
    /// hardware register count that runs the region without overflow.
    pub fn working_set(&self) -> u32 {
        self.working_set
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Final check pairs `(checker, checkee)` the hardware will perform,
    /// after AMOV rewriting (the checkee's range may physically live in an
    /// AMOV destination register).
    pub fn final_checks(&self) -> &[(MemOpId, MemOpId)] {
        &self.final_checks
    }
}

/// Internal node: a real memory op or an AMOV proxy.
#[derive(Clone, Copy, Debug)]
enum NodeKind {
    Op(MemOpId),
    /// AMOV proxy holding the range of `moved`.
    Amov {
        moved: MemOpId,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EdgeKind {
    Check,
    Anti,
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    dst: usize,
    kind: EdgeKind,
}

/// Scheduled event stream (before rotation interleaving).
#[derive(Clone, Copy, Debug)]
enum Event {
    Op(MemOpId),
    Amov(usize),
}

#[derive(Clone, Debug)]
struct AmovRec {
    moved: MemOpId,
    /// Node whose register is the AMOV source (the previous holder).
    src_node: usize,
    /// Node of the AMOV itself (destination register), if it is a move.
    self_node: usize,
    is_move: bool,
    /// `BASE` at the AMOV's execution point.
    base: u64,
}

/// Reusable scratch buffers for the [`Allocator`].
///
/// A dynamic optimizer translates thousands of regions back to back; the
/// allocator's working vectors (per-node flag arrays, the constraint edge
/// lists, the event stream) can be recycled between regions instead of
/// being reallocated each time. Create one scratch per translation thread,
/// pass it to [`Allocator::with_scratch`], and get it back from
/// [`Allocator::finish_reclaim`]:
///
/// ```
/// use smarq::{AllocScratch, Allocator, DepGraph, MemKind, RegionSpec};
/// let mut scratch = AllocScratch::new();
/// for _ in 0..3 {
///     let mut r = RegionSpec::new();
///     let st = r.push(MemKind::Store, 0);
///     let ld = r.push(MemKind::Load, 0);
///     let deps = DepGraph::compute(&r);
///     let mut a = Allocator::with_scratch(&r, &deps, 64, scratch);
///     a.schedule_op(ld)?;
///     a.schedule_op(st)?;
///     let (alloc, s) = a.finish_reclaim()?;
///     scratch = s;
///     assert_eq!(alloc.working_set(), 1);
/// }
/// # Ok::<(), smarq::AllocError>(())
/// ```
///
/// The buffers are an implementation detail: a scratch carries no state
/// between runs other than capacity, so allocations produced with a reused
/// scratch are bit-identical to fresh ones.
#[derive(Clone, Debug, Default)]
pub struct AllocScratch {
    t: Vec<i64>,
    scheduled: Vec<bool>,
    p: Vec<bool>,
    c: Vec<bool>,
    base: Vec<Option<u64>>,
    order: Vec<Option<u64>>,
    offset: Vec<Option<u32>>,
    out_edges: Vec<Vec<Edge>>,
    in_deg: Vec<u32>,
    pending: Vec<bool>,
    ready: VecDeque<usize>,
    holder: Vec<usize>,
    nodes: Vec<NodeKind>,
    events: Vec<Event>,
    rotations: Vec<(usize, u32)>,
    amovs: Vec<AmovRec>,
    checks_log: Vec<(usize, usize)>,
    ext_p_candidate: Vec<bool>,
}

fn reset_fill<T: Clone>(v: &mut Vec<T>, n: usize, val: T) {
    v.clear();
    v.resize(n, val);
}

impl AllocScratch {
    /// Creates an empty scratch (no capacity reserved yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every buffer and sizes the per-node arrays for an `n`-op
    /// region, retaining capacity from previous runs.
    fn reset(&mut self, n: usize) {
        self.t.clear();
        self.t.extend(0..n as i64);
        reset_fill(&mut self.scheduled, n, false);
        reset_fill(&mut self.p, n, false);
        reset_fill(&mut self.c, n, false);
        reset_fill(&mut self.base, n, None);
        reset_fill(&mut self.order, n, None);
        reset_fill(&mut self.offset, n, None);
        for v in &mut self.out_edges {
            v.clear();
        }
        self.out_edges.resize_with(n, Vec::new);
        reset_fill(&mut self.in_deg, n, 0);
        reset_fill(&mut self.pending, n, false);
        self.ready.clear();
        self.holder.clear();
        self.holder.extend(0..n);
        self.nodes.clear();
        self.nodes
            .extend((0..n).map(|i| NodeKind::Op(MemOpId::new(i))));
        self.events.clear();
        self.rotations.clear();
        self.amovs.clear();
        self.checks_log.clear();
        reset_fill(&mut self.ext_p_candidate, n, false);
    }
}

/// The incremental SMARQ allocator. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Allocator<'a> {
    region: &'a RegionSpec,
    deps: &'a DepGraph,
    num_regs: u32,

    nodes: Vec<NodeKind>,
    t: Vec<i64>,
    scheduled: Vec<bool>,
    p: Vec<bool>,
    c: Vec<bool>,
    base: Vec<Option<u64>>,
    order: Vec<Option<u64>>,
    offset: Vec<Option<u32>>,
    out_edges: Vec<Vec<Edge>>,
    in_deg: Vec<u32>,
    /// Node needs a register and has not been assigned one yet.
    pending: Vec<bool>,
    ready: VecDeque<usize>,

    /// Current register holding each op's access range (op node itself, or
    /// the latest AMOV proxy).
    holder: Vec<usize>,

    next_order: u64,
    events: Vec<Event>,
    /// `(event index, amount)` — rotation emitted after that event.
    rotations: Vec<(usize, u32)>,
    amovs: Vec<AmovRec>,
    /// Final check pairs as (checker node, checkee node).
    checks_log: Vec<(usize, usize)>,

    stats: AllocStats,
    /// Ops that will need a P bit even without reordering (extended deps),
    /// used by the overflow estimate.
    ext_p_candidate: Vec<bool>,
    unscheduled_ext_p: usize,
    scheduled_count: usize,
}

impl<'a> Allocator<'a> {
    /// Creates an allocator for a region with `num_regs` hardware alias
    /// registers.
    pub fn new(region: &'a RegionSpec, deps: &'a DepGraph, num_regs: u32) -> Self {
        Self::with_scratch(region, deps, num_regs, AllocScratch::new())
    }

    /// Like [`Allocator::new`], but recycles the buffers of `scratch`
    /// (reclaim them afterwards with [`Allocator::finish_reclaim`]).
    pub fn with_scratch(
        region: &'a RegionSpec,
        deps: &'a DepGraph,
        num_regs: u32,
        mut scratch: AllocScratch,
    ) -> Self {
        let n = region.len();
        scratch.reset(n);
        // EXTENDED deps run backward (src originally after dst); their dst
        // will carry a P bit even in a program-order schedule.
        for d in deps.iter() {
            if d.src > d.dst {
                scratch.ext_p_candidate[d.dst.index()] = true;
            }
        }
        let unscheduled_ext_p = scratch
            .ext_p_candidate
            .iter()
            .enumerate()
            .filter(|&(i, &f)| f && !region.is_eliminated(MemOpId::new(i)))
            .count();
        Allocator {
            region,
            deps,
            num_regs,
            t: scratch.t,
            scheduled: scratch.scheduled,
            p: scratch.p,
            c: scratch.c,
            base: scratch.base,
            order: scratch.order,
            offset: scratch.offset,
            out_edges: scratch.out_edges,
            in_deg: scratch.in_deg,
            pending: scratch.pending,
            ready: scratch.ready,
            holder: scratch.holder,
            nodes: scratch.nodes,
            next_order: 0,
            events: scratch.events,
            rotations: scratch.rotations,
            amovs: scratch.amovs,
            checks_log: scratch.checks_log,
            stats: AllocStats::default(),
            ext_p_candidate: scratch.ext_p_candidate,
            unscheduled_ext_p,
            scheduled_count: 0,
        }
    }

    /// The hardware alias register count this allocator targets.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    fn add_node(&mut self, kind: NodeKind) -> usize {
        let id = self.nodes.len();
        self.nodes.push(kind);
        self.t.push(0);
        self.scheduled.push(true);
        self.p.push(false);
        self.c.push(false);
        self.base.push(None);
        self.order.push(None);
        self.offset.push(None);
        self.out_edges.push(Vec::new());
        self.in_deg.push(0);
        self.pending.push(false);
        self.holder.push(id);
        id
    }

    fn add_edge(&mut self, src: usize, dst: usize, kind: EdgeKind) {
        self.out_edges[src].push(Edge { dst, kind });
        self.in_deg[dst] += 1;
        if kind == EdgeKind::Check {
            self.checks_log.push((src, dst));
        }
    }

    fn has_edge(&self, src: usize, dst: usize, kind: EdgeKind) -> bool {
        self.out_edges[src]
            .iter()
            .any(|e| e.dst == dst && e.kind == kind)
    }

    /// Nodes forward-reachable from `start` (including `start`).
    fn reachable(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for e in &self.out_edges[u] {
                if !seen[e.dst] {
                    seen[e.dst] = true;
                    stack.push(e.dst);
                }
            }
        }
        seen
    }

    /// Feeds the next scheduled memory operation (paper Fig. 13 main loop).
    ///
    /// Call this in final schedule order for every surviving memory op.
    ///
    /// # Errors
    /// * [`AllocError::BadSchedule`] for eliminated/duplicate ops.
    /// * [`AllocError::Overflow`] when an offset exceeds the register file
    ///   (only possible when the driver ignores [`Allocator::mode`]).
    pub fn schedule_op(&mut self, y: MemOpId) -> Result<(), AllocError> {
        let yn = y.index();
        if yn >= self.region.len() {
            return Err(AllocError::BadSchedule {
                op: y,
                reason: "op out of range for region",
            });
        }
        if self.region.is_eliminated(y) {
            return Err(AllocError::BadSchedule {
                op: y,
                reason: "eliminated op cannot be scheduled",
            });
        }
        if self.scheduled[yn] {
            return Err(AllocError::BadSchedule {
                op: y,
                reason: "op scheduled twice",
            });
        }
        self.scheduled[yn] = true;
        self.scheduled_count += 1;
        if self.ext_p_candidate[yn] {
            self.unscheduled_ext_p -= 1;
        }

        // Walk dependences X ->dep Y.
        let incoming: Vec<_> = self.deps.deps_into(y).collect();
        for d in incoming {
            let x = d.src;
            let xn = x.index();
            if self.region.is_eliminated(x) {
                continue;
            }
            if !self.scheduled[xn] {
                // CHECK-CONSTRAINT: Y was scheduled above X; X will check Y.
                self.c[xn] = true;
                self.p[yn] = true;
                self.add_edge(xn, yn, EdgeKind::Check);
                self.stats.checks += 1;
                if self.t[xn] >= self.t[yn] {
                    // X is unscheduled: it has no incoming edges, so
                    // lowering T(X) cannot break the invariant elsewhere.
                    self.t[xn] = self.t[yn] - 1;
                }
            } else {
                // ANTI-CONSTRAINT candidate: X executes before Y; if Y's
                // hardware scan could reach the register holding X's range,
                // a genuine alias would raise a *false positive* exception.
                if crate::fault::drop_anti_enabled() {
                    // Injected fault: behave as if §4.2 were never
                    // implemented. See `fault::set_drop_anti`.
                    continue;
                }
                let h = self.holder[xn];
                if self.offset[h].is_some() {
                    // X's register is already released before Y executes.
                    continue;
                }
                if !self.p[h] || !self.c[yn] {
                    continue;
                }
                if self.has_edge(yn, h, EdgeKind::Check) {
                    // Y is *required* to check X; cannot prohibit it.
                    continue;
                }
                if self.has_edge(h, yn, EdgeKind::Anti) {
                    continue; // already constrained
                }
                self.stats.antis += 1;
                if self.t[h] < self.t[yn] {
                    self.add_edge(h, yn, EdgeKind::Anti);
                } else {
                    self.resolve_anti_violation(x, h, yn);
                }
            }
        }

        self.events.push(Event::Op(y));
        self.stats.mem_ops += 1;
        if self.p[yn] || self.c[yn] {
            self.allocate_reg(yn)?;
        }
        Ok(())
    }

    /// Handles an anti-constraint `holder(x) -> y` that violates the `T`
    /// invariant: either shift `y`'s component up (no cycle) or break the
    /// cycle with an AMOV (paper §5.2, Fig. 13 `detect_cycle`).
    fn resolve_anti_violation(&mut self, x: MemOpId, h: usize, yn: usize) {
        let delta = self.t[h] - (self.t[yn] - 1);
        let reach = self.reachable(yn);
        if !reach[h] {
            // No cycle: raise T over Y's forward component so T(h) < T(y).
            for (z, &in_set) in reach.iter().enumerate() {
                if in_set {
                    self.t[z] += delta;
                }
            }
            self.add_edge(h, yn, EdgeKind::Anti);
            return;
        }

        // Cycle: insert AMOV X' just before Y. The AMOV clears (and, if
        // still-unscheduled checkers need X's range, relocates) the
        // register holding X's range, so Y can no longer falsely check it.
        let amov_idx = self.amovs.len();
        let xp = self.add_node(NodeKind::Amov { moved: x });

        // Move every check edge whose (unscheduled) checker still needs X's
        // range: Z ->check h becomes Z ->check X'.
        let mut moved_any = false;
        let checkers: Vec<usize> = (0..xp)
            .filter(|&z| !self.scheduled[z] && self.has_edge(z, h, EdgeKind::Check))
            .collect();
        for z in checkers {
            for e in &mut self.out_edges[z] {
                if e.dst == h && e.kind == EdgeKind::Check {
                    e.dst = xp;
                }
            }
            for cl in &mut self.checks_log {
                if cl.0 == z && cl.1 == h {
                    cl.1 = xp;
                }
            }
            self.in_deg[h] -= 1;
            self.in_deg[xp] += 1;
            moved_any = true;
            // Keep the invariant for the re-targeted edge.
            if self.t[z] >= self.t[yn] - 1 {
                self.t[z] = self.t[yn] - 2;
            }
        }

        if moved_any {
            self.p[xp] = true;
            self.t[xp] = self.t[yn] - 1;
            self.add_edge(xp, yn, EdgeKind::Anti);
            self.base[xp] = Some(self.next_order);
            self.pending[xp] = true;
            // If relocation emptied h's incoming edges, it becomes ready.
            if self.in_deg[h] == 0 && self.pending[h] {
                self.ready.push_back(h);
            }
        }
        // Otherwise: pure clean-up AMOV, no register, no node bookkeeping.

        self.amovs.push(AmovRec {
            moved: x,
            src_node: h,
            self_node: xp,
            is_move: moved_any,
            base: self.next_order,
        });
        self.events.push(Event::Amov(amov_idx));
        self.stats.amovs += 1;
        if moved_any {
            self.stats.amov_moves += 1;
        }
        // The range now lives in X' (or nowhere); future anti logic must
        // look at the new holder.
        self.holder[x.index()] = xp;
    }

    /// Delayed FIFO register allocation (paper Fig. 13 `allocate_reg`).
    fn allocate_reg(&mut self, yn: usize) -> Result<(), AllocError> {
        self.base[yn] = Some(self.next_order);
        self.pending[yn] = true;
        if self.in_deg[yn] == 0 {
            self.ready.push_back(yn);
        }
        let before = self.next_order;
        while let Some(xn) = self.ready.pop_front() {
            debug_assert!(self.pending[xn] && self.in_deg[xn] == 0);
            let ord = self.next_order;
            self.order[xn] = Some(ord);
            let off = ord - self.base[xn].expect("pending node has base");
            if off >= self.num_regs as u64 {
                return Err(AllocError::Overflow {
                    offset: off as u32,
                    num_regs: self.num_regs,
                });
            }
            self.offset[xn] = Some(off as u32);
            if self.p[xn] {
                self.next_order += 1;
            }
            self.pending[xn] = false;
            // Index loop (edges are Copy) instead of mem::take so the edge
            // list keeps its capacity for scratch reuse.
            for k in 0..self.out_edges[xn].len() {
                let e = self.out_edges[xn][k];
                self.in_deg[e.dst] -= 1;
                if self.in_deg[e.dst] == 0 && self.pending[e.dst] {
                    self.ready.push_back(e.dst);
                }
            }
            self.out_edges[xn].clear();
        }
        if self.next_order > before {
            let amount = (self.next_order - before) as u32;
            self.rotations.push((self.events.len() - 1, amount));
            self.stats.rotations += 1;
        }
        Ok(())
    }

    /// Overflow estimate and resulting scheduler mode (paper §5.3).
    ///
    /// Returns [`SchedulerMode::NonSpeculation`] when the conservatively
    /// estimated maximum future offset would reach the hardware register
    /// count.
    pub fn mode(&self) -> SchedulerMode {
        let mut min_base = self.next_order;
        let mut pending_p = 0u64;
        for i in 0..self.nodes.len() {
            if self.pending[i] {
                if let Some(b) = self.base[i] {
                    min_base = min_base.min(b);
                }
                if self.p[i] {
                    pending_p += 1;
                }
            }
        }
        let max_order = self.next_order + pending_p + self.unscheduled_ext_p as u64;
        let max_offset = max_order.saturating_sub(min_base);
        if max_offset >= self.num_regs as u64 {
            SchedulerMode::NonSpeculation
        } else {
            SchedulerMode::Speculation
        }
    }

    /// Finalizes the allocation after every surviving memory operation has
    /// been fed through [`Allocator::schedule_op`].
    ///
    /// # Errors
    /// * [`AllocError::BadSchedule`] if surviving ops are missing.
    /// * [`AllocError::UnresolvedConstraints`] on an unbroken constraint
    ///   cycle (a bug if it ever fires — AMOVs break all cycles).
    /// * [`AllocError::Overflow`] if a final offset exceeds the file.
    pub fn finish(self) -> Result<Allocation, AllocError> {
        self.finish_reclaim().map(|(alloc, _)| alloc)
    }

    /// Like [`Allocator::finish`], but also hands back the scratch buffers
    /// so the next region's allocator can recycle their capacity.
    ///
    /// # Errors
    /// Same as [`Allocator::finish`] (the scratch is dropped on error).
    pub fn finish_reclaim(mut self) -> Result<(Allocation, AllocScratch), AllocError> {
        for (id, _) in self.region.iter() {
            if !self.region.is_eliminated(id) && !self.scheduled[id.index()] {
                return Err(AllocError::BadSchedule {
                    op: id,
                    reason: "surviving op never scheduled",
                });
            }
        }
        // Final drain: allocate anything still pending (its last checker
        // was the final instruction, or the region ended).
        for i in 0..self.nodes.len() {
            if self.pending[i] && self.in_deg[i] == 0 && !self.ready.contains(&i) {
                self.ready.push_back(i);
            }
        }
        while let Some(xn) = self.ready.pop_front() {
            if !self.pending[xn] {
                continue;
            }
            let ord = self.next_order;
            self.order[xn] = Some(ord);
            let off = ord - self.base[xn].expect("pending node has base");
            if off >= self.num_regs as u64 {
                return Err(AllocError::Overflow {
                    offset: off as u32,
                    num_regs: self.num_regs,
                });
            }
            self.offset[xn] = Some(off as u32);
            if self.p[xn] {
                self.next_order += 1;
            }
            self.pending[xn] = false;
            for k in 0..self.out_edges[xn].len() {
                let e = self.out_edges[xn][k];
                self.in_deg[e.dst] -= 1;
                if self.in_deg[e.dst] == 0 && self.pending[e.dst] {
                    self.ready.push_back(e.dst);
                }
            }
            self.out_edges[xn].clear();
        }
        if let Some(stuck) = (0..self.nodes.len()).find(|&i| self.pending[i]) {
            let op = match self.nodes[stuck] {
                NodeKind::Op(id) => id,
                NodeKind::Amov { moved, .. } => moved,
            };
            return Err(AllocError::UnresolvedConstraints { op });
        }

        self.build_allocation()
    }

    fn build_allocation(self) -> Result<(Allocation, AllocScratch), AllocError> {
        let mut per_op = vec![None; self.region.len()];
        let mut working_set = 0u32;
        let mut stats = self.stats;
        for (i, slot) in per_op.iter_mut().enumerate() {
            if let (Some(order), Some(base), Some(offset)) =
                (self.order[i], self.base[i], self.offset[i])
            {
                debug_assert_eq!(order, base + offset as u64, "order = base + offset");
                *slot = Some(OpAlias {
                    p_bit: self.p[i],
                    c_bit: self.c[i],
                    order: Order(order),
                    base: Order(base),
                    offset: Offset(offset),
                });
                working_set = working_set.max(offset + 1);
                if self.p[i] {
                    stats.p_ops += 1;
                }
                if self.c[i] {
                    stats.c_ops += 1;
                }
            }
        }

        // Materialize AMOV operand offsets now that all orders are known.
        let mut amov_insns = Vec::with_capacity(self.amovs.len());
        for rec in &self.amovs {
            let src_order = self.order[rec.src_node]
                .ok_or(AllocError::UnresolvedConstraints { op: rec.moved })?;
            let src_off = src_order - rec.base;
            let dst_off = if rec.is_move {
                let dst_order = self.order[rec.self_node]
                    .ok_or(AllocError::UnresolvedConstraints { op: rec.moved })?;
                dst_order - rec.base
            } else {
                src_off
            };
            for &off in &[src_off, dst_off] {
                if off >= self.num_regs as u64 {
                    return Err(AllocError::Overflow {
                        offset: off as u32,
                        num_regs: self.num_regs,
                    });
                }
                working_set = working_set.max(off as u32 + 1);
            }
            amov_insns.push(AmovInsn {
                moved_op: rec.moved,
                src_offset: Offset(src_off as u32),
                dst_offset: Offset(dst_off as u32),
                is_move: rec.is_move,
            });
        }

        // Interleave the event stream with rotations.
        let mut code = Vec::new();
        let mut rot_iter = self.rotations.iter().peekable();
        for (idx, ev) in self.events.iter().enumerate() {
            match *ev {
                Event::Op(id) => {
                    let oa = per_op[id.index()];
                    code.push(AliasCode::Op {
                        id,
                        p_bit: oa.is_some_and(|a| a.p_bit),
                        c_bit: oa.is_some_and(|a| a.c_bit),
                        offset: oa.map(|a| a.offset),
                    });
                }
                Event::Amov(i) => code.push(AliasCode::Amov(amov_insns[i])),
            }
            while let Some(&&(at, amount)) = rot_iter.peek() {
                if at == idx {
                    code.push(AliasCode::Rotate(RotateInsn { amount }));
                    rot_iter.next();
                } else {
                    break;
                }
            }
        }

        // Final check pairs: map checkee nodes back to the op whose range
        // they hold.
        let final_checks = self
            .checks_log
            .iter()
            .map(|&(src, dst)| {
                let checker = match self.nodes[src] {
                    NodeKind::Op(id) => id,
                    NodeKind::Amov { moved, .. } => moved,
                };
                let checkee = match self.nodes[dst] {
                    NodeKind::Op(id) => id,
                    NodeKind::Amov { moved, .. } => moved,
                };
                (checker, checkee)
            })
            .collect();

        let allocation = Allocation {
            per_op,
            code,
            working_set,
            stats,
            final_checks,
        };
        // Hand the working vectors back for reuse; reset() clears them on
        // the next run, so only capacity carries over.
        let scratch = AllocScratch {
            t: self.t,
            scheduled: self.scheduled,
            p: self.p,
            c: self.c,
            base: self.base,
            order: self.order,
            offset: self.offset,
            out_edges: self.out_edges,
            in_deg: self.in_deg,
            pending: self.pending,
            ready: self.ready,
            holder: self.holder,
            nodes: self.nodes,
            events: self.events,
            rotations: self.rotations,
            amovs: self.amovs,
            checks_log: self.checks_log,
            ext_p_candidate: self.ext_p_candidate,
        };
        Ok((allocation, scratch))
    }
}

/// Convenience wrapper: runs the incremental allocator over a fixed
/// schedule.
///
/// `schedule` lists the surviving memory operations in optimized execution
/// order. Use `u32::MAX` registers to measure working sets without any
/// hardware bound.
///
/// # Errors
/// See [`Allocator::schedule_op`] and [`Allocator::finish`].
///
/// ```
/// use smarq::{RegionSpec, MemKind, DepGraph, allocate};
/// let mut r = RegionSpec::new();
/// let st = r.push(MemKind::Store, 0);
/// let ld = r.push(MemKind::Load, 0); // may-alias, hoisted above the store
/// let deps = DepGraph::compute(&r);
/// let alloc = allocate(&r, &deps, &[ld, st], 64)?;
/// assert_eq!(alloc.working_set(), 1); // one alias register suffices
/// # Ok::<(), smarq::AllocError>(())
/// ```
pub fn allocate(
    region: &RegionSpec,
    deps: &DepGraph,
    schedule: &[MemOpId],
    num_regs: u32,
) -> Result<Allocation, AllocError> {
    let mut a = Allocator::new(region, deps, num_regs);
    for &op in schedule {
        a.schedule_op(op)?;
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    //! Whitebox tests for the allocator internals. The integration tests in
    //! `tests/allocator.rs` pin the observable output (AMOV/rotate streams,
    //! P/C bits, offsets); these tests pin the *mechanics* that produce it:
    //! holder redirection, edge retargeting, the `T` invariant around an
    //! inserted AMOV, and the overflow estimate behind [`Allocator::mode`].

    use super::*;
    use crate::region::MemKind;
    use crate::validate::validate_allocation;

    /// The §5.2 constraint-cycle shape from `tests/allocator.rs`, scheduled
    /// `c1, v, x, s, y[, s2]`. Returns `(region, schedule, x, y)`.
    fn cycle_region(with_second_checker: bool) -> (RegionSpec, Vec<MemOpId>, MemOpId, MemOpId) {
        let mut r = RegionSpec::new();
        let c1 = r.push(MemKind::Store, 0);
        let s = r.push(MemKind::Store, 1);
        let s2 = with_second_checker.then(|| r.push(MemKind::Store, 2));
        let x = r.push(MemKind::Load, 3);
        let v = r.push(MemKind::Store, 4);
        let z2 = r.push(MemKind::Load, 3);
        let y = r.push(MemKind::Store, 5);
        let z1 = r.push(MemKind::Load, 0);
        r.set_may_alias(c1, x, true);
        r.set_may_alias(s, x, true);
        r.set_may_alias(x, v, true);
        r.set_may_alias(v, z2, true);
        r.set_may_alias(y, c1, true);
        r.set_may_alias(y, z1, true);
        r.set_may_alias(x, y, true);
        r.set_may_alias(s, z2, false);
        r.set_may_alias(c1, z2, false);
        r.set_may_alias(y, z2, false);
        if let Some(s2) = s2 {
            r.set_may_alias(s2, x, true);
            r.set_may_alias(s2, z2, false);
            for other in [c1, s, v, y] {
                r.set_may_alias(s2, other, false);
            }
        }
        r.add_load_elim(x, z2);
        r.add_load_elim(c1, z1);
        let mut sched = vec![c1, v, x, s, y];
        if let Some(s2) = s2 {
            sched.push(s2);
        }
        (r, sched, x, y)
    }

    /// A moving AMOV must redirect the internal holder of `x` to the fresh
    /// proxy node, retarget the unscheduled checker's check edge to it, and
    /// re-establish the `T` invariant around the anti edge that closed the
    /// cycle.
    #[test]
    fn moving_amov_redirects_holder_and_retargets_checkers() {
        let (r, sched, x, y) = cycle_region(true);
        let deps = DepGraph::compute(&r);
        let mut a = Allocator::new(&r, &deps, 64);
        // Schedule everything up to and including y, which closes the cycle.
        for &op in &sched[..sched.len() - 1] {
            a.schedule_op(op).unwrap();
        }

        assert_eq!(a.amovs.len(), 1, "the cycle inserts exactly one AMOV");
        let rec = a.amovs[0].clone();
        assert!(rec.is_move, "s2 is still unscheduled: must be a real move");
        assert_eq!(rec.moved, x);
        assert_eq!(rec.src_node, x.index(), "x held its own range before");
        assert!(
            rec.self_node >= r.len(),
            "the proxy is a fresh node, not a memory op"
        );
        assert!(
            matches!(a.nodes[rec.self_node], NodeKind::Amov { moved } if moved == x),
            "proxy node records which range it carries"
        );

        // Future anti logic must consult the proxy, which sets a register.
        assert_eq!(a.holder[x.index()], rec.self_node);
        assert!(a.p[rec.self_node]);
        assert!(a.pending[rec.self_node]);

        // T invariant restored: the anti edge proxy -> y is satisfied, and
        // the retargeted checker sits strictly below the proxy.
        assert!(a.t[rec.self_node] < a.t[y.index()]);
        let s2 = *sched.last().unwrap();
        let retargeted = a.out_edges[s2.index()]
            .iter()
            .any(|e| e.dst == rec.self_node && e.kind == EdgeKind::Check);
        assert!(retargeted, "s2's check edge now points at the proxy");
        assert!(
            a.out_edges[s2.index()]
                .iter()
                .all(|e| e.dst != rec.src_node),
            "no edge into the vacated register remains"
        );
        assert!(a.t[s2.index()] < a.t[rec.self_node]);

        // The region still finishes into a valid allocation.
        a.schedule_op(s2).unwrap();
        let alloc = a.finish().unwrap();
        validate_allocation(&r, &deps, &sched, &alloc).unwrap();
    }

    /// Without a surviving checker the AMOV degenerates to a clean-up: no
    /// proxy register, no P bit, no pending allocation — but the holder is
    /// still redirected so later antis see the range as gone.
    #[test]
    fn cleanup_amov_allocates_no_proxy_register() {
        let (r, sched, x, _y) = cycle_region(false);
        let deps = DepGraph::compute(&r);
        let mut a = Allocator::new(&r, &deps, 64);
        for &op in &sched {
            a.schedule_op(op).unwrap();
        }

        assert_eq!(a.amovs.len(), 1);
        let rec = a.amovs[0].clone();
        assert!(!rec.is_move);
        assert_eq!(a.holder[x.index()], rec.self_node);
        assert!(!a.p[rec.self_node], "clean-up sets no register");
        assert!(!a.pending[rec.self_node]);
        assert!(
            a.base[rec.self_node].is_none(),
            "no delayed allocation queued for the proxy"
        );

        let alloc = a.finish().unwrap();
        assert_eq!(alloc.stats().amov_moves, 0);
        validate_allocation(&r, &deps, &sched, &alloc).unwrap();
    }

    /// Six independent store/load pairs; hoisting every load front-loads
    /// six P registers.
    fn pairs_region() -> (RegionSpec, Vec<MemOpId>, Vec<MemOpId>) {
        let mut r = RegionSpec::new();
        let mut stores = Vec::new();
        let mut loads = Vec::new();
        for i in 0..6 {
            let st = r.push(MemKind::Store, i);
            let ld = r.push(MemKind::Load, i);
            r.set_may_alias(st, ld, true);
            stores.push(st);
            loads.push(ld);
        }
        (r, stores, loads)
    }

    /// The overflow estimate is sound: a scheduler that keeps speculating
    /// past the `NonSpeculation` report does overflow, but the report
    /// always arrives strictly before the overflowing `schedule_op` call.
    #[test]
    fn overflow_estimate_warns_before_the_file_overflows() {
        let (r, stores, loads) = pairs_region();
        let deps = DepGraph::compute(&r);
        let mut a = Allocator::new(&r, &deps, 4);

        let mut warned_at = None;
        for (k, &ld) in loads.iter().enumerate() {
            if warned_at.is_none() && a.mode() == SchedulerMode::NonSpeculation {
                warned_at = Some(k);
            }
            a.schedule_op(ld).unwrap();
        }
        // Each pending hoisted load will occupy one P register: the
        // estimate flips exactly when they would fill the file.
        assert_eq!(warned_at, Some(4));

        // Ignore the warning and keep the schedule: the checking stores
        // force the delayed allocations past the file size.
        let mut overflowed = false;
        for &st in &stores {
            if a.mode() == SchedulerMode::NonSpeculation {
                assert!(!overflowed);
            }
            match a.schedule_op(st) {
                Ok(()) => {}
                Err(AllocError::Overflow { num_regs, .. }) => {
                    assert_eq!(num_regs, 4);
                    overflowed = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        assert!(overflowed, "speculating past the estimate must overflow");
    }

    /// The intended driver contract (paper §5.3): hoist while the allocator
    /// reports `Speculation`, fall back to program order once it reports
    /// `NonSpeculation` — and the region then completes without overflow on
    /// the same register file that overflowed above.
    #[test]
    fn mode_respecting_driver_falls_back_and_completes() {
        let (r, stores, loads) = pairs_region();
        let deps = DepGraph::compute(&r);
        let mut a = Allocator::new(&r, &deps, 4);

        let mut sched = Vec::new();
        let mut hoisted = 0;
        while hoisted < loads.len() && a.mode() == SchedulerMode::Speculation {
            a.schedule_op(loads[hoisted]).unwrap();
            sched.push(loads[hoisted]);
            hoisted += 1;
        }
        assert!(
            (1..loads.len()).contains(&hoisted),
            "estimate must allow some hoisting and stop some ({hoisted})"
        );

        // Non-speculation: the remaining ops in plain program order.
        for i in 0..stores.len() {
            a.schedule_op(stores[i]).unwrap();
            sched.push(stores[i]);
            if i >= hoisted {
                a.schedule_op(loads[i]).unwrap();
                sched.push(loads[i]);
            }
        }
        let alloc = a.finish().unwrap();
        assert!(alloc.working_set() <= 4);
        validate_allocation(&r, &deps, &sched, &alloc).unwrap();
    }

    /// Extended (backward) dependences put a P bit on their target even in
    /// a program-order schedule; the estimate must count them before any op
    /// is scheduled, and stop counting them once the target is scheduled.
    #[test]
    fn overflow_estimate_counts_extended_p_targets() {
        // Figure 5 shape: the store m3 checks the forwarding load m2
        // through the eliminated m5 — an extended dep running backward.
        let mut r = RegionSpec::new();
        let m1 = r.push(MemKind::Load, 1);
        let m2 = r.push(MemKind::Load, 2);
        let m3 = r.push(MemKind::Store, 3);
        let m4 = r.push(MemKind::Store, 4);
        let m5 = r.push(MemKind::Load, 2);
        r.set_may_alias(m3, m2, true);
        r.set_may_alias(m3, m5, true);
        r.set_may_alias(m4, m1, true);
        r.add_load_elim(m2, m5);
        let deps = DepGraph::compute(&r);

        let a = Allocator::new(&r, &deps, 1);
        assert_eq!(a.unscheduled_ext_p, 1, "m2 needs a P register regardless");
        assert_eq!(a.mode(), SchedulerMode::NonSpeculation);

        // Two registers absorb it; the counter drains as m2 is scheduled.
        let mut a = Allocator::new(&r, &deps, 2);
        assert_eq!(a.mode(), SchedulerMode::Speculation);
        a.schedule_op(m1).unwrap();
        a.schedule_op(m2).unwrap();
        assert_eq!(a.unscheduled_ext_p, 0);
        for op in [m3, m4] {
            a.schedule_op(op).unwrap();
        }
        let alloc = a.finish().unwrap();
        validate_allocation(&r, &deps, &[m1, m2, m3, m4], &alloc).unwrap();
    }
}
