//! # SMARQ — Software-Managed Alias Register Queue
//!
//! This crate implements the primary contribution of *"SMARQ: Software-Managed
//! Alias Register Queue for Dynamic Optimizations"* (Wang, Wu, Rong, Park —
//! MICRO 2012): compiler management of an **order-based alias register queue**
//! used by a dynamic binary optimizer to detect memory aliases between
//! speculatively optimized memory operations at runtime.
//!
//! The crate is deliberately independent of any particular intermediate
//! representation. It operates on a small *region view* — a list of memory
//! operations in original program order, a may-alias relation, the set of
//! speculative load/store eliminations that were applied, and the final
//! schedule — and produces an [`Allocation`]: per-operation P/C bits and
//! alias-register offsets, plus the `AMOV` and `ROTATE` pseudo-instructions
//! that must be woven into the emitted code.
//!
//! ## Pipeline
//!
//! 1. Describe the region: [`RegionSpec`] (operations + aliasing +
//!    eliminations).
//! 2. Compute dependences: [`DepGraph::compute`] — the paper's
//!    `DEPENDENCE` and `EXTENDED-DEPENDENCE 1/2` rules.
//! 3. Drive the incremental allocator: [`Allocator`] — feed it the schedule
//!    one memory operation at a time (this is how the paper integrates
//!    allocation with list scheduling), or use the convenience wrapper
//!    [`allocate`] when the schedule is already fixed.
//! 4. Inspect the result: [`Allocation`] (offsets, rotations, AMOVs,
//!    working-set size, constraint statistics).
//! 5. Optionally verify: [`validate::validate_allocation`] replays the
//!    hardware semantics ([`queue::AliasQueue`]) over the allocated code and
//!    proves that every required alias detection is performed and no
//!    prohibited detection (false positive) can occur.
//!
//! ## Example
//!
//! Reordering loads above may-aliasing stores (the paper's Figure 2):
//!
//! ```
//! use smarq::{RegionSpec, MemKind, DepGraph, allocate, validate};
//!
//! // Original order: M0 st, M1 ld, M2 st, M3 ld.
//! let mut region = RegionSpec::new();
//! let m0 = region.push(MemKind::Store, 0);
//! let m1 = region.push(MemKind::Load, 1);
//! let m2 = region.push(MemKind::Store, 2);
//! let m3 = region.push(MemKind::Load, 3);
//! region.set_may_alias(m1, m2, true);
//! region.set_may_alias(m3, m0, true);
//! region.set_may_alias(m3, m2, true);
//!
//! let deps = DepGraph::compute(&region);
//! // Optimized order (loads hoisted): M3, M1, M2, M0.
//! let schedule = vec![m3, m1, m2, m0];
//! let alloc = allocate(&region, &deps, &schedule, 64)?;
//!
//! // The two hoisted loads set alias registers; the stores check them.
//! assert!(alloc.op(m3).unwrap().p_bit);
//! assert!(alloc.op(m2).unwrap().c_bit);
//! validate::validate_allocation(&region, &deps, &schedule, &alloc)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod baseline;
pub mod constraints;
pub mod deps;
pub mod error;
pub mod fault;
pub mod ids;
pub mod lower_bound;
pub mod prng;
pub mod queue;
pub mod range;
pub mod region;
pub mod validate;

pub use alloc::{
    allocate, AliasCode, AllocScratch, Allocation, Allocator, AmovInsn, OpAlias, RotateInsn,
    SchedulerMode,
};
pub use constraints::{ConstraintGraph, ConstraintKind, ConstraintStats};
pub use deps::{Dep, DepGraph, DepKind};
pub use error::{diagnostics_to_json, AllocError, Diagnostic, Severity, ValidationError};
pub use ids::{MemOpId, Offset, Order};
pub use lower_bound::live_range_lower_bound;
pub use range::{Interval, NospecRanges, RegState};
pub use region::{LoadElim, MemKind, MemOp, RegionSpec, SealedRegion, StoreElim};
