//! Strongly typed identifiers used throughout the crate.

use std::fmt;

/// Identifier of a memory operation within a [`RegionSpec`].
///
/// Ids are dense indices assigned by [`RegionSpec::push`] in original program
/// order, so `MemOpId(i)` is also the operation's original position.
///
/// [`RegionSpec`]: crate::RegionSpec
/// [`RegionSpec::push`]: crate::RegionSpec::push
///
/// ```
/// use smarq::{RegionSpec, MemKind};
/// let mut r = RegionSpec::new();
/// let m0 = r.push(MemKind::Load, 0);
/// assert_eq!(m0.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemOpId(pub(crate) u32);

impl MemOpId {
    /// Creates an id from a raw dense index.
    pub fn new(index: usize) -> Self {
        MemOpId(index as u32)
    }

    /// The dense index (== original program position within the region).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MemOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl fmt::Display for MemOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// An alias register *order*: the register's position in the conceptual
/// unbounded circular queue, counted from `BASE = 0` at region entry.
///
/// Orders are independent of the hardware register count and satisfy the
/// paper's invariant `order(X) = base(X) + offset(X)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Order(pub u64);

impl Order {
    /// The numeric order value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Order {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ord{}", self.0)
    }
}

impl fmt::Display for Order {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An alias register *offset*: the register number relative to the `BASE`
/// pointer at the instruction's execution point. This is what is encoded in
/// the instruction; it must be smaller than the hardware alias register
/// count.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Offset(pub u32);

impl Offset {
    /// The numeric offset value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "off{}", self.0)
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memop_id_roundtrip() {
        let id = MemOpId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "M7");
        assert_eq!(format!("{id:?}"), "M7");
    }

    #[test]
    fn order_and_offset_display() {
        assert_eq!(format!("{}", Order(3)), "3");
        assert_eq!(format!("{:?}", Order(3)), "ord3");
        assert_eq!(format!("{}", Offset(2)), "2");
        assert_eq!(format!("{:?}", Offset(2)), "off2");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Order(1) < Order(2));
        assert!(Offset(0) < Offset(9));
        assert!(MemOpId::new(0) < MemOpId::new(1));
    }
}
