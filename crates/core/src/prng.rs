//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace builds in fully offline environments, so the usual
//! `rand`/`proptest` crates are not available. Everything that needs
//! randomness — workload generators, differential property tests, benchmark
//! input synthesis — uses this SplitMix64-based generator instead. It is
//! *not* cryptographic; it only needs to be fast, well distributed and
//! bit-reproducible across platforms so seeded tests stay deterministic.
//!
//! ```
//! use smarq::prng::Prng;
//! let mut a = Prng::new(7);
//! let mut b = Prng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.range_u32(10, 20);
//! assert!((10..20).contains(&x));
//! ```

/// A SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// One 64-bit word of state, advanced by a Weyl sequence and finalized with
/// a variance-of-MurmurHash3 mixer. Passes BigCrush when used as a stream;
/// every seed (including 0) produces a full-period sequence.
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next value reduced to `[0, bound)`. `bound` must be
    /// non-zero. Uses the widening-multiply reduction (Lemire); the modulo
    /// bias is below 2⁻³² for every bound used in this workspace.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the half-open range `[lo, hi)` (`hi > lo`).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range");
        lo + self.bounded(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo, "empty range");
        lo.wrapping_add(self.bounded(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Bernoulli draw: `true` with probability `num / denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.bounded(denom) < num
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut p = Prng::new(9);
        for _ in 0..10_000 {
            let v = p.range_u32(5, 17);
            assert!((5..17).contains(&v));
            let w = p.range_i64(-8, 3);
            assert!((-8..3).contains(&w));
            let f = p.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn singleton_ranges_are_constant() {
        let mut p = Prng::new(3);
        for _ in 0..100 {
            assert_eq!(p.range_u32(7, 8), 7);
        }
    }

    #[test]
    fn bounded_covers_all_residues() {
        let mut p = Prng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[p.bounded(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues of 8 reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut p = Prng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        p.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
