//! Functional model of the order-based alias register queue hardware
//! (paper §2.4 and §3).
//!
//! The queue is a circular file of `N` alias registers with a rotating
//! `BASE` pointer. Instructions reference registers by *offset* relative to
//! the current `BASE`; the absolute position `BASE + offset` is the
//! register's *order*. The hardware operations are:
//!
//! * **set** (`P` bit): write the memory access range into the register at
//!   a given offset, marking whether the producer was a load;
//! * **check** (`C` bit): scan every *valid* register at offsets `>=` the
//!   instruction's own offset; report any entry whose range overlaps the
//!   access (loads never check entries set by loads). An instruction with
//!   both `P` and `C` checks **before** setting, so it cannot alias with
//!   itself;
//! * **rotate k**: advance `BASE` by `k`, releasing (clearing) the `k`
//!   registers that rotate out; they logically become free registers at the
//!   tail of the queue;
//! * **AMOV o1, o2**: move the contents of the register at `o1` to the
//!   register at `o2`, clearing `o1` (`o1 == o2` is a pure clean-up).
//!
//! The model is generic over the entry payload `T` so the same semantics
//! serve both the symbolic allocation validator (payload = producing op id)
//! and the cycle-level VLIW simulator (payload = concrete address range).

use std::fmt;

/// A valid alias register entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Entry<T> {
    /// Caller-defined payload (e.g. an address range or a producer tag).
    pub payload: T,
    /// Whether the producing memory operation was a load. Hardware marks
    /// load-set registers so later loads do not check them.
    pub set_by_load: bool,
}

/// Errors raised by queue operations that reference registers outside the
/// hardware file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueOverflow {
    /// The offending offset.
    pub offset: u32,
    /// The hardware register count.
    pub num_regs: u32,
}

impl fmt::Display for QueueOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alias register offset {} out of range for {} registers",
            self.offset, self.num_regs
        )
    }
}

impl std::error::Error for QueueOverflow {}

/// The alias register queue model. See the [module docs](self).
///
/// Alongside the `slots` payload array the queue maintains two bitmasks
/// indexed by *physical* slot: `occupancy` (which registers hold a valid
/// entry) and `set_by_load` (which of those were set by loads). Checks walk
/// the masks with trailing-zeros arithmetic instead of probing every slot,
/// and [`valid_from`](Self::valid_from) is a popcount. The masks are
/// word-arrays so files larger than 64 registers (the symbolic validator
/// sizes the queue to the allocation's working set) stay supported; real
/// hardware configurations (≤64) use exactly one word.
#[derive(Clone, Debug)]
pub struct AliasQueue<T> {
    slots: Vec<Option<Entry<T>>>,
    /// Bit `p` set ⇔ `slots[p]` is `Some`.
    occupancy: Vec<u64>,
    /// Bit `p` set ⇔ `slots[p]` was set by a load (only meaningful where
    /// the occupancy bit is set).
    set_by_load: Vec<u64>,
    /// Absolute order of the register currently at offset 0.
    base: u64,
}

#[inline]
fn bit_set(words: &mut [u64], idx: usize, value: bool) {
    if value {
        words[idx >> 6] |= 1u64 << (idx & 63);
    } else {
        words[idx >> 6] &= !(1u64 << (idx & 63));
    }
}

impl<T: Clone> AliasQueue<T> {
    /// Creates a queue with `num_regs` hardware alias registers, all free,
    /// with `BASE = 0`.
    ///
    /// # Panics
    /// Panics if `num_regs == 0`.
    pub fn new(num_regs: u32) -> Self {
        assert!(num_regs > 0, "alias register file cannot be empty");
        let words = (num_regs as usize).div_ceil(64);
        AliasQueue {
            slots: vec![None; num_regs as usize],
            occupancy: vec![0; words],
            set_by_load: vec![0; words],
            base: 0,
        }
    }

    /// Number of hardware registers.
    pub fn num_regs(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Current `BASE` (the absolute order of offset 0).
    pub fn base(&self) -> u64 {
        self.base
    }

    fn slot_index(&self, offset: u32) -> usize {
        ((self.base + offset as u64) % self.slots.len() as u64) as usize
    }

    /// The physical ranges `[a, b)` covering offsets `from_offset..num_regs`
    /// in increasing-offset order (the circular window splits into at most
    /// two linear runs).
    fn phys_ranges(&self, from_offset: u32) -> [(usize, usize); 2] {
        let n = self.slots.len();
        let start = self.slot_index(from_offset);
        let len = n - from_offset as usize;
        if start + len <= n {
            [(start, start + len), (0, 0)]
        } else {
            [(start, n), (0, start + len - n)]
        }
    }

    /// Visits the set occupancy bits in physical range `[a, b)` in
    /// increasing physical order; stops early when `visit` returns `true`
    /// and reports the physical index it stopped at.
    fn scan_occupied(
        &self,
        a: usize,
        b: usize,
        skip_load_set: bool,
        mut visit: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        let mut w = a >> 6;
        while (w << 6) < b {
            let word_base = w << 6;
            let mut word = self.occupancy[w];
            if skip_load_set {
                word &= !self.set_by_load[w];
            }
            if word_base < a {
                word &= !0u64 << (a - word_base);
            }
            if b - word_base < 64 {
                word &= (1u64 << (b - word_base)) - 1;
            }
            while word != 0 {
                let phys = word_base + word.trailing_zeros() as usize;
                if visit(phys) {
                    return Some(phys);
                }
                word &= word - 1;
            }
            w += 1;
        }
        None
    }

    /// Popcount of the occupancy bits in physical range `[a, b)`.
    fn count_occupied(&self, a: usize, b: usize) -> u32 {
        let mut count = 0;
        let mut w = a >> 6;
        while (w << 6) < b {
            let word_base = w << 6;
            let mut word = self.occupancy[w];
            if word_base < a {
                word &= !0u64 << (a - word_base);
            }
            if b - word_base < 64 {
                word &= (1u64 << (b - word_base)) - 1;
            }
            count += word.count_ones();
            w += 1;
        }
        count
    }

    fn bounds(&self, offset: u32) -> Result<(), QueueOverflow> {
        if (offset as usize) < self.slots.len() {
            Ok(())
        } else {
            Err(QueueOverflow {
                offset,
                num_regs: self.num_regs(),
            })
        }
    }

    /// Reads the entry at `offset`, if any.
    ///
    /// # Errors
    /// [`QueueOverflow`] if `offset` is outside the register file.
    pub fn get(&self, offset: u32) -> Result<Option<&Entry<T>>, QueueOverflow> {
        self.bounds(offset)?;
        Ok(self.slots[self.slot_index(offset)].as_ref())
    }

    /// **set**: writes `payload` into the register at `offset`.
    ///
    /// # Errors
    /// [`QueueOverflow`] if `offset` is outside the register file.
    pub fn set(&mut self, offset: u32, payload: T, set_by_load: bool) -> Result<(), QueueOverflow> {
        self.bounds(offset)?;
        let idx = self.slot_index(offset);
        self.slots[idx] = Some(Entry {
            payload,
            set_by_load,
        });
        bit_set(&mut self.occupancy, idx, true);
        bit_set(&mut self.set_by_load, idx, set_by_load);
        Ok(())
    }

    /// **check** (reference implementation): scans every valid register at
    /// offsets `>= from_offset` and returns *all* offsets whose entries
    /// satisfy `conflicts` — skipping load-set entries when
    /// `checker_is_load` (loads never alias loads).
    ///
    /// An empty result means no alias exception.
    ///
    /// This is the full-scan oracle: it probes every slot and heap-allocates
    /// the hit list. The simulator hot path uses [`check_first`]
    /// (allocation-free, mask-driven, short-circuiting); the differential
    /// property tests assert the two agree on the first hit. Callers that
    /// genuinely need every hit (the symbolic validator's precision proof)
    /// keep using this form.
    ///
    /// [`check_first`]: Self::check_first
    ///
    /// # Errors
    /// [`QueueOverflow`] if `from_offset` is outside the register file.
    pub fn check(
        &self,
        from_offset: u32,
        checker_is_load: bool,
        mut conflicts: impl FnMut(&T) -> bool,
    ) -> Result<Vec<u32>, QueueOverflow> {
        self.bounds(from_offset)?;
        let mut hits = Vec::new();
        for off in from_offset..self.num_regs() {
            if let Some(e) = &self.slots[self.slot_index(off)] {
                if checker_is_load && e.set_by_load {
                    continue;
                }
                if conflicts(&e.payload) {
                    hits.push(off);
                }
            }
        }
        Ok(hits)
    }

    /// **check**, hot-path form: returns the *lowest* offset `>=
    /// from_offset` whose valid entry satisfies `conflicts` (skipping
    /// load-set entries when `checker_is_load`), or `None` when no alias is
    /// detected.
    ///
    /// Semantically identical to `self.check(..)?.first().copied()` but
    /// allocation-free: empty slots are skipped by occupancy-mask
    /// arithmetic and the scan short-circuits at the first conflict —
    /// exactly what the alias-exception hardware model needs, since an
    /// exception fires on the first hit regardless of how many more exist.
    ///
    /// # Errors
    /// [`QueueOverflow`] if `from_offset` is outside the register file.
    pub fn check_first(
        &self,
        from_offset: u32,
        checker_is_load: bool,
        mut conflicts: impl FnMut(&T) -> bool,
    ) -> Result<Option<u32>, QueueOverflow> {
        self.bounds(from_offset)?;
        let n = self.slots.len();
        let base_idx = (self.base % n as u64) as usize;
        for (a, b) in self.phys_ranges(from_offset) {
            let hit = self.scan_occupied(a, b, checker_is_load, |phys| {
                let e = self.slots[phys]
                    .as_ref()
                    .expect("occupancy bit set for an empty slot");
                conflicts(&e.payload)
            });
            if let Some(phys) = hit {
                return Ok(Some(((phys + n - base_idx) % n) as u32));
            }
        }
        Ok(None)
    }

    /// **rotate k**: advances `BASE` by `amount`, clearing the registers
    /// that rotate out.
    ///
    /// # Errors
    /// [`QueueOverflow`] if `amount` exceeds the register count (the
    /// hardware cannot release more registers than it has in one go).
    pub fn rotate(&mut self, amount: u32) -> Result<(), QueueOverflow> {
        if amount as usize > self.slots.len() {
            return Err(QueueOverflow {
                offset: amount,
                num_regs: self.num_regs(),
            });
        }
        for off in 0..amount {
            let idx = self.slot_index(off);
            self.slots[idx] = None;
            bit_set(&mut self.occupancy, idx, false);
        }
        self.base += amount as u64;
        Ok(())
    }

    /// **AMOV src, dst**: moves the entry at `src` to `dst`, clearing
    /// `src`. When `src == dst` the entry is simply cleared (the paper's
    /// clean-up form). Moving an empty register clears `dst`.
    ///
    /// # Errors
    /// [`QueueOverflow`] if either offset is outside the register file.
    pub fn amov(&mut self, src: u32, dst: u32) -> Result<(), QueueOverflow> {
        self.bounds(src)?;
        self.bounds(dst)?;
        let sidx = self.slot_index(src);
        let entry = self.slots[sidx].take();
        bit_set(&mut self.occupancy, sidx, false);
        if src != dst {
            let didx = self.slot_index(dst);
            bit_set(&mut self.occupancy, didx, entry.is_some());
            bit_set(
                &mut self.set_by_load,
                didx,
                entry.as_ref().is_some_and(|e| e.set_by_load),
            );
            self.slots[didx] = entry;
        }
        Ok(())
    }

    /// Clears every register and resets `BASE` to 0 (used at atomic region
    /// boundaries: commit or rollback invalidates all alias registers).
    ///
    /// Runs at every region entry of the simulator's hot loop, so it walks
    /// the occupancy mask and clears only the slots that actually hold an
    /// entry (`occupancy` bit set ⇔ slot is `Some`) instead of sweeping
    /// the whole file.
    pub fn reset(&mut self) {
        for (w, word) in self.occupancy.iter_mut().enumerate() {
            let mut m = *word;
            while m != 0 {
                self.slots[(w << 6) + m.trailing_zeros() as usize] = None;
                m &= m - 1;
            }
            *word = 0;
        }
        self.base = 0;
    }

    /// Number of currently valid entries (a popcount of the occupancy
    /// mask).
    pub fn live_entries(&self) -> usize {
        self.occupancy.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of valid entries a check starting at `from_offset` examines
    /// (an energy proxy — paper §2.4 notes unnecessary detections cost
    /// energy). A popcount over the occupancy mask.
    ///
    /// # Errors
    /// [`QueueOverflow`] if `from_offset` is outside the register file.
    pub fn valid_from(&self, from_offset: u32) -> Result<u32, QueueOverflow> {
        self.bounds(from_offset)?;
        let [r1, r2] = self.phys_ranges(from_offset);
        Ok(self.count_occupied(r1.0, r1.1) + self.count_occupied(r2.0, r2.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
        a.0 <= b.1 && b.0 <= a.1
    }

    #[test]
    fn set_then_check_detects_overlap() {
        let mut q: AliasQueue<(u64, u64)> = AliasQueue::new(4);
        q.set(1, (100, 103), true).unwrap();
        // A store checking from offset 0 sees the load-set entry.
        let hits = q
            .check(0, false, |r| ranges_overlap(*r, (102, 105)))
            .unwrap();
        assert_eq!(hits, vec![1]);
        // Disjoint range: no exception.
        let hits = q
            .check(0, false, |r| ranges_overlap(*r, (104, 107)))
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn check_only_scans_later_or_equal_offsets() {
        let mut q: AliasQueue<u32> = AliasQueue::new(4);
        q.set(0, 7, false).unwrap();
        q.set(2, 7, false).unwrap();
        // Checking from offset 1 must not see offset 0.
        let hits = q.check(1, false, |&v| v == 7).unwrap();
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn loads_skip_load_set_entries() {
        let mut q: AliasQueue<u32> = AliasQueue::new(2);
        q.set(0, 1, true).unwrap();
        q.set(1, 1, false).unwrap();
        let hits = q.check(0, true, |&v| v == 1).unwrap();
        assert_eq!(hits, vec![1]); // only the store-set entry
        let hits = q.check(0, false, |&v| v == 1).unwrap();
        assert_eq!(hits, vec![0, 1]); // a store checks both
    }

    #[test]
    fn rotation_releases_and_renumbers() {
        let mut q: AliasQueue<u32> = AliasQueue::new(2);
        q.set(0, 10, false).unwrap();
        q.set(1, 11, false).unwrap();
        q.rotate(1).unwrap();
        assert_eq!(q.base(), 1);
        // Old offset 1 is now offset 0.
        assert_eq!(q.get(0).unwrap().map(|e| e.payload), Some(11));
        // The rotated-out register is free and reusable at the tail.
        assert_eq!(q.get(1).unwrap(), None);
        q.set(1, 12, false).unwrap();
        assert_eq!(q.get(1).unwrap().map(|e| e.payload), Some(12));
        assert_eq!(q.live_entries(), 2);
    }

    #[test]
    fn figure7_rotation_reuses_registers_with_only_two_regs() {
        // Paper Figure 7(b): 5 memory ops run on 2 alias registers thanks to
        // rotation. Offsets: M5:0 P, M3:1 P, M0:0 C then rotate 1,
        // M4:1 P? ... simplified faithful sequence:
        let mut q: AliasQueue<u32> = AliasQueue::new(2);
        q.set(0, 5, true).unwrap(); // M5 sets AR0
        q.set(1, 3, true).unwrap(); // M3 sets AR1
        let _ = q.check(0, false, |_| false).unwrap(); // M0 checks offsets 0..
        q.rotate(1).unwrap(); // release AR0
        q.set(1, 4, true).unwrap(); // M4 sets (reused) register at offset 1
        let _ = q.check(0, false, |_| false).unwrap();
        q.rotate(1).unwrap();
        let _ = q.check(0, false, |_| false).unwrap(); // M2 checks last reg
        assert_eq!(q.base(), 2);
    }

    #[test]
    fn amov_moves_and_cleans() {
        let mut q: AliasQueue<u32> = AliasQueue::new(4);
        q.set(2, 42, false).unwrap();
        q.amov(2, 0).unwrap();
        assert_eq!(q.get(2).unwrap(), None);
        assert_eq!(q.get(0).unwrap().map(|e| e.payload), Some(42));
        // Clean-up form.
        q.amov(0, 0).unwrap();
        assert_eq!(q.get(0).unwrap(), None);
        assert_eq!(q.live_entries(), 0);
    }

    #[test]
    fn out_of_range_offsets_error() {
        let mut q: AliasQueue<u32> = AliasQueue::new(2);
        assert!(q.set(2, 0, false).is_err());
        assert!(q.check(2, false, |_| true).is_err());
        assert!(q.amov(0, 2).is_err());
        assert!(q.rotate(3).is_err());
        let err = q.set(5, 0, false).unwrap_err();
        assert_eq!(err.offset, 5);
        assert_eq!(err.num_regs, 2);
    }

    #[test]
    fn valid_from_counts_examined_entries() {
        let mut q: AliasQueue<u32> = AliasQueue::new(4);
        q.set(0, 1, false).unwrap();
        q.set(2, 2, false).unwrap();
        assert_eq!(q.valid_from(0).unwrap(), 2);
        assert_eq!(q.valid_from(1).unwrap(), 1);
        assert_eq!(q.valid_from(3).unwrap(), 0);
        assert!(q.valid_from(4).is_err());
    }

    #[test]
    fn reset_clears_everything() {
        let mut q: AliasQueue<u32> = AliasQueue::new(3);
        q.set(0, 1, false).unwrap();
        q.rotate(2).unwrap();
        q.reset();
        assert_eq!(q.base(), 0);
        assert_eq!(q.live_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "alias register file cannot be empty")]
    fn zero_registers_rejected() {
        let _: AliasQueue<u32> = AliasQueue::new(0);
    }

    #[test]
    fn check_first_matches_first_full_scan_hit() {
        let mut q: AliasQueue<u32> = AliasQueue::new(4);
        q.set(1, 7, true).unwrap();
        q.set(3, 7, false).unwrap();
        for from in 0..4 {
            for &is_load in &[false, true] {
                let full = q.check(from, is_load, |&v| v == 7).unwrap();
                let first = q.check_first(from, is_load, |&v| v == 7).unwrap();
                assert_eq!(first, full.first().copied());
            }
        }
    }

    #[test]
    fn check_first_returns_lowest_offset_across_wraparound() {
        // Rotate so the offset window wraps the physical array.
        let mut q: AliasQueue<u32> = AliasQueue::new(4);
        q.rotate(3).unwrap();
        q.set(0, 1, false).unwrap(); // physical slot 3
        q.set(2, 1, false).unwrap(); // physical slot 1 (wrapped)
        assert_eq!(q.check_first(0, false, |&v| v == 1).unwrap(), Some(0));
        assert_eq!(q.check_first(1, false, |&v| v == 1).unwrap(), Some(2));
        assert_eq!(q.check_first(3, false, |&v| v == 1).unwrap(), None);
    }

    #[test]
    fn masks_track_random_operation_sequences() {
        // Drive a large (multi-word) and a small queue through random
        // set/rotate/amov/reset sequences; the mask-driven valid_from,
        // live_entries and check_first must always agree with slot scans.
        use crate::prng::Prng;
        for &regs in &[5u32, 64, 67, 130] {
            let mut rng = Prng::new(u64::from(regs) * 31 + 1);
            let mut q: AliasQueue<u32> = AliasQueue::new(regs);
            for _ in 0..400 {
                match rng.bounded(8) {
                    0..=3 => {
                        let off = rng.range_u32(0, regs);
                        let _ = q.set(off, rng.range_u32(0, 3), rng.chance(1, 2));
                    }
                    4 => {
                        let _ = q.rotate(rng.range_u32(0, regs.min(4)));
                    }
                    5 => {
                        let _ = q.amov(rng.range_u32(0, regs), rng.range_u32(0, regs));
                    }
                    6 if rng.chance(1, 8) => q.reset(),
                    _ => {}
                }
                let naive_live = (0..regs).filter(|&o| q.get(o).unwrap().is_some()).count();
                assert_eq!(q.live_entries(), naive_live);
                let from = rng.range_u32(0, regs);
                let naive_valid = (from..regs)
                    .filter(|&o| q.get(o).unwrap().is_some())
                    .count() as u32;
                assert_eq!(q.valid_from(from).unwrap(), naive_valid);
                let target = rng.range_u32(0, 3);
                let is_load = rng.chance(1, 2);
                let full = q.check(from, is_load, |&v| v == target).unwrap();
                let first = q.check_first(from, is_load, |&v| v == target).unwrap();
                assert_eq!(first, full.first().copied(), "regs={regs} from={from}");
            }
        }
    }
}
