//! The allocator's view of an optimization region.
//!
//! SMARQ operates inside *superblock* regions formed by the dynamic
//! optimizer. For alias-register purposes the only information that matters
//! about a region is:
//!
//! * the memory operations, in **original program execution order**;
//! * which pairs **may alias** (the optimizer's — deliberately simple —
//!   alias analysis result);
//! * which speculative **load/store eliminations** were applied, since those
//!   create the paper's *extended dependences*.
//!
//! Everything else (non-memory instructions, values, addressing modes) is
//! irrelevant here and stays in the front-end IR crate.

use crate::ids::MemOpId;
use std::fmt;

/// Whether a memory operation reads or writes memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemKind {
    /// A memory read.
    Load,
    /// A memory write.
    Store,
}

impl MemKind {
    /// `true` for [`MemKind::Store`].
    pub fn is_store(self) -> bool {
        matches!(self, MemKind::Store)
    }

    /// `true` for [`MemKind::Load`].
    pub fn is_load(self) -> bool {
        matches!(self, MemKind::Load)
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Load => f.write_str("ld"),
            MemKind::Store => f.write_str("st"),
        }
    }
}

/// A memory operation inside a region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemOp {
    /// Load or store.
    pub kind: MemKind,
    /// An opaque location class used by the *default* may-alias relation:
    /// two operations with the same class are assumed to **must** alias,
    /// different classes to **not** alias, unless overridden with
    /// [`RegionSpec::set_may_alias`]. Front ends that run a real alias
    /// analysis typically give every op a distinct class and set explicit
    /// pairs.
    pub loc_class: u32,
}

/// A speculative load elimination record.
///
/// The load `eliminated` was removed by forwarding the value produced or
/// loaded by the earlier operation `source` (paper §4.1,
/// `EXTENDED-DEPENDENCE 1`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadElim {
    /// The earlier operation (load or store) whose value is forwarded.
    pub source: MemOpId,
    /// The eliminated load. It no longer appears in the schedule.
    pub eliminated: MemOpId,
}

/// A speculative store elimination record.
///
/// The store `eliminated` was removed because the later store `overwriter`
/// writes the same location (paper §4.1, `EXTENDED-DEPENDENCE 2`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreElim {
    /// The eliminated (earlier) store. It no longer appears in the schedule.
    pub eliminated: MemOpId,
    /// The later store that overwrites the same location.
    pub overwriter: MemOpId,
}

/// A region description: memory operations in original order, the may-alias
/// relation, and the speculative eliminations that were applied.
///
/// ```
/// use smarq::{RegionSpec, MemKind};
/// let mut r = RegionSpec::new();
/// let a = r.push(MemKind::Store, 0);
/// let b = r.push(MemKind::Load, 1);
/// r.set_may_alias(a, b, true);
/// assert!(r.may_alias(a, b));
/// // Self-pairs always may-alias (an op trivially overlaps its own
/// // location) and cannot be overridden — see `may_alias` for the
/// // contract.
/// assert!(r.may_alias(a, a));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RegionSpec {
    ops: Vec<MemOp>,
    /// Upper-triangle may-alias overrides, keyed by (min, max) index.
    overrides: std::collections::HashMap<(u32, u32), bool>,
    load_elims: Vec<LoadElim>,
    store_elims: Vec<StoreElim>,
    /// Ops whose address may fall in an *unspeculatable* range (see
    /// [`crate::range::NospecRanges`]): they must keep program order
    /// against every other memory op, regardless of the alias relation.
    nospec: std::collections::HashSet<u32>,
}

impl RegionSpec {
    /// Creates an empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a memory operation in original program order and returns its
    /// id. `loc_class` feeds the default may-alias relation (see
    /// [`MemOp::loc_class`]).
    pub fn push(&mut self, kind: MemKind, loc_class: u32) -> MemOpId {
        let id = MemOpId::new(self.ops.len());
        self.ops.push(MemOp { kind, loc_class });
        id
    }

    /// Number of memory operations (including eliminated ones).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the region has no memory operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation record for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn op(&self, id: MemOpId) -> MemOp {
        self.ops[id.index()]
    }

    /// Iterates over `(id, op)` pairs in original program order.
    pub fn iter(&self) -> impl Iterator<Item = (MemOpId, MemOp)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, &op)| (MemOpId::new(i), op))
    }

    /// Overrides the may-alias relation for a pair of operations.
    ///
    /// The relation is symmetric; the order of `a` and `b` does not matter.
    ///
    /// # Panics
    /// Panics if `a == b` — self-aliasing is meaningless here.
    pub fn set_may_alias(&mut self, a: MemOpId, b: MemOpId, may: bool) {
        assert_ne!(a, b, "self may-alias override is meaningless");
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.overrides.insert(key, may);
    }

    /// Whether two operations may access the same memory.
    ///
    /// Defaults to `loc_class` equality; explicit overrides from
    /// [`RegionSpec::set_may_alias`] win.
    ///
    /// **Self-alias contract:** `may_alias(a, a)` is always `true` — an
    /// operation trivially accesses its own location. Self-pairs cannot be
    /// overridden ([`RegionSpec::set_may_alias`] panics on `a == b`); the
    /// dependence rules never *need* to ask about self-pairs, but callers
    /// that do (e.g. the validator probing arbitrary pairs) get the
    /// reflexive answer.
    pub fn may_alias(&self, a: MemOpId, b: MemOpId) -> bool {
        if a == b {
            return true;
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        match self.overrides.get(&key) {
            Some(&m) => m,
            None => self.ops[a.index()].loc_class == self.ops[b.index()].loc_class,
        }
    }

    /// Records a speculative load elimination (see [`LoadElim`]).
    ///
    /// # Panics
    /// Panics if `eliminated` is not a load, or does not come after `source`
    /// in original order.
    pub fn add_load_elim(&mut self, source: MemOpId, eliminated: MemOpId) {
        assert!(
            self.op(eliminated).kind.is_load(),
            "eliminated op must be a load"
        );
        assert!(
            source < eliminated,
            "forwarding source must precede the eliminated load"
        );
        self.load_elims.push(LoadElim { source, eliminated });
    }

    /// Records a speculative store elimination (see [`StoreElim`]).
    ///
    /// # Panics
    /// Panics if either op is not a store, or `overwriter` does not come
    /// after `eliminated` in original order.
    pub fn add_store_elim(&mut self, eliminated: MemOpId, overwriter: MemOpId) {
        assert!(
            self.op(eliminated).kind.is_store() && self.op(overwriter).kind.is_store(),
            "store elimination involves two stores"
        );
        assert!(
            eliminated < overwriter,
            "overwriting store must follow the eliminated store"
        );
        self.store_elims.push(StoreElim {
            eliminated,
            overwriter,
        });
    }

    /// Marks `id` as *unspeculatable*: its address may fall inside a
    /// configured [`crate::range::NospecRanges`] range, so the dependence
    /// rules order it against every other memory operation (at least one
    /// of the pair a store) even when the alias analysis proves the pair
    /// disjoint — speculation across the range is never scheduled.
    pub fn set_nospec(&mut self, id: MemOpId) {
        assert!(id.index() < self.ops.len(), "nospec op out of range");
        self.nospec.insert(id.0);
    }

    /// `true` when `id` was marked unspeculatable.
    pub fn is_nospec(&self, id: MemOpId) -> bool {
        self.nospec.contains(&id.0)
    }

    /// `true` when any op is marked unspeculatable.
    pub fn has_nospec(&self) -> bool {
        !self.nospec.is_empty()
    }

    /// The recorded load eliminations.
    pub fn load_elims(&self) -> &[LoadElim] {
        &self.load_elims
    }

    /// The recorded store eliminations.
    pub fn store_elims(&self) -> &[StoreElim] {
        &self.store_elims
    }

    /// `true` if `id` was removed by a load or store elimination and is
    /// therefore absent from the schedule.
    pub fn is_eliminated(&self, id: MemOpId) -> bool {
        self.load_elims.iter().any(|e| e.eliminated == id)
            || self.store_elims.iter().any(|e| e.eliminated == id)
    }

    /// Builds the sealed (finalized) view of this region: a dense
    /// bit-matrix alias relation, an eliminated bitvec, and per-`loc_class`
    /// op buckets. See [`SealedRegion`].
    pub fn sealed(&self) -> SealedRegion<'_> {
        SealedRegion::build(self)
    }
}

/// A build-once, query-fast view of a [`RegionSpec`].
///
/// The mutable spec answers `may_alias` with a `HashMap` probe and
/// `is_eliminated` with a linear scan over the elimination records — both
/// are hit O(n²) times per region by dependence computation, constraint
/// derivation, validation and the baselines. Sealing materializes:
///
/// * an **upper-triangle bit-matrix** of the full may-alias relation
///   (`n·(n-1)/2` bits), so `may_alias` is one shift-and-mask;
/// * an **eliminated bitvec**, so `is_eliminated` is O(1);
/// * **`loc_class` buckets** (op indices grouped by class) plus the sorted
///   explicit override list, so dependence computation can enumerate only
///   the pairs that can possibly alias instead of all n² pairs.
///
/// The view borrows the spec; build it once per region after the spec
/// stops changing (further `set_may_alias` calls on the spec are *not*
/// reflected — reseal instead).
#[derive(Clone, Debug)]
pub struct SealedRegion<'a> {
    spec: &'a RegionSpec,
    n: usize,
    /// Upper-triangle may-alias bits: pair `(i, j)` with `i < j` lives at
    /// bit `i·(2n−i−1)/2 + (j−i−1)`.
    alias_bits: Vec<u64>,
    /// Bit `i` set ⇔ op `i` was eliminated.
    eliminated: Vec<u64>,
    /// Op indices grouped by `loc_class` (classes in first-seen order;
    /// indices within a bucket ascending).
    buckets: Vec<Vec<u32>>,
    /// Explicit overrides as sorted `(lo, hi, may)` triples.
    overrides: Vec<(u32, u32, bool)>,
    /// Unspeculatable op indices, sorted ascending.
    nospec: Vec<u32>,
}

impl<'a> SealedRegion<'a> {
    fn build(spec: &'a RegionSpec) -> Self {
        let n = spec.ops.len();

        // Bucket ops by loc_class (first-seen class order, ascending
        // indices within each bucket).
        let mut class_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut buckets: Vec<Vec<u32>> = Vec::new();
        for (i, op) in spec.ops.iter().enumerate() {
            let b = *class_of.entry(op.loc_class).or_insert_with(|| {
                buckets.push(Vec::new());
                buckets.len() - 1
            });
            buckets[b].push(i as u32);
        }

        // Default relation: within-bucket pairs alias. Cost is
        // Σ|bucket|² — output-sensitive, not n², when classes are spread.
        let pairs = n * n.saturating_sub(1) / 2;
        let mut alias_bits = vec![0u64; pairs.div_ceil(64)];
        for bucket in &buckets {
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    let idx = Self::pair_index(n, i, j);
                    alias_bits[idx >> 6] |= 1u64 << (idx & 63);
                }
            }
        }

        // Explicit overrides win over the default.
        let mut overrides: Vec<(u32, u32, bool)> = spec
            .overrides
            .iter()
            .map(|(&(lo, hi), &may)| (lo, hi, may))
            .collect();
        overrides.sort_unstable();
        for &(lo, hi, may) in &overrides {
            let idx = Self::pair_index(n, lo, hi);
            if may {
                alias_bits[idx >> 6] |= 1u64 << (idx & 63);
            } else {
                alias_bits[idx >> 6] &= !(1u64 << (idx & 63));
            }
        }

        let mut eliminated = vec![0u64; n.div_ceil(64)];
        for e in &spec.load_elims {
            let i = e.eliminated.index();
            eliminated[i >> 6] |= 1u64 << (i & 63);
        }
        for e in &spec.store_elims {
            let i = e.eliminated.index();
            eliminated[i >> 6] |= 1u64 << (i & 63);
        }

        let mut nospec: Vec<u32> = spec.nospec.iter().copied().collect();
        nospec.sort_unstable();

        SealedRegion {
            spec,
            n,
            alias_bits,
            eliminated,
            buckets,
            overrides,
            nospec,
        }
    }

    #[inline]
    fn pair_index(n: usize, lo: u32, hi: u32) -> usize {
        let (lo, hi) = (lo as usize, hi as usize);
        debug_assert!(lo < hi && hi < n);
        lo * (2 * n - lo - 1) / 2 + (hi - lo - 1)
    }

    /// The underlying spec.
    pub fn spec(&self) -> &'a RegionSpec {
        self.spec
    }

    /// Number of memory operations (including eliminated ones).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the region has no memory operations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether two operations may access the same memory — one bit probe.
    ///
    /// Same contract as [`RegionSpec::may_alias`], including the reflexive
    /// self-pair answer (`may_alias(a, a)` is `true`).
    #[inline]
    pub fn may_alias(&self, a: MemOpId, b: MemOpId) -> bool {
        if a == b {
            return true;
        }
        let idx = Self::pair_index(self.n, a.0.min(b.0), a.0.max(b.0));
        self.alias_bits[idx >> 6] >> (idx & 63) & 1 == 1
    }

    /// O(1) form of [`RegionSpec::is_eliminated`].
    #[inline]
    pub fn is_eliminated(&self, id: MemOpId) -> bool {
        let i = id.index();
        self.eliminated[i >> 6] >> (i & 63) & 1 == 1
    }

    /// Op indices grouped by `loc_class`: ops in the same slice default to
    /// aliasing each other, ops in different slices default to not
    /// aliasing. Explicit [`overrides`](Self::overrides) punch holes in
    /// both directions.
    pub fn class_buckets(&self) -> &[Vec<u32>] {
        &self.buckets
    }

    /// The explicit override triples `(lo, hi, may)`, sorted ascending,
    /// with `lo < hi`.
    pub fn overrides(&self) -> &[(u32, u32, bool)] {
        &self.overrides
    }

    /// Unspeculatable op indices, sorted ascending (see
    /// [`RegionSpec::set_nospec`]).
    pub fn nospec_ops(&self) -> &[u32] {
        &self.nospec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_alias_by_loc_class() {
        let mut r = RegionSpec::new();
        let a = r.push(MemKind::Load, 5);
        let b = r.push(MemKind::Store, 5);
        let c = r.push(MemKind::Store, 6);
        assert!(r.may_alias(a, b));
        assert!(!r.may_alias(a, c));
        assert!(!r.may_alias(b, c));
    }

    #[test]
    fn overrides_win_and_are_symmetric() {
        let mut r = RegionSpec::new();
        let a = r.push(MemKind::Load, 0);
        let b = r.push(MemKind::Store, 1);
        assert!(!r.may_alias(a, b));
        r.set_may_alias(b, a, true);
        assert!(r.may_alias(a, b));
        assert!(r.may_alias(b, a));
        r.set_may_alias(a, b, false);
        assert!(!r.may_alias(b, a));
    }

    #[test]
    fn elimination_bookkeeping() {
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let l = r.push(MemKind::Load, 0);
        let s2 = r.push(MemKind::Store, 0);
        r.add_load_elim(s, l);
        r.add_store_elim(s, s2);
        assert!(r.is_eliminated(l));
        assert!(r.is_eliminated(s));
        assert!(!r.is_eliminated(s2));
        assert_eq!(r.load_elims().len(), 1);
        assert_eq!(r.store_elims().len(), 1);
    }

    #[test]
    #[should_panic(expected = "eliminated op must be a load")]
    fn load_elim_rejects_store() {
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let s2 = r.push(MemKind::Store, 0);
        r.add_load_elim(s, s2);
    }

    #[test]
    #[should_panic(expected = "overwriting store must follow")]
    fn store_elim_order_checked() {
        let mut r = RegionSpec::new();
        let s = r.push(MemKind::Store, 0);
        let s2 = r.push(MemKind::Store, 0);
        r.add_store_elim(s2, s);
    }

    #[test]
    fn self_alias_is_reflexive_and_not_overridable() {
        let mut r = RegionSpec::new();
        let a = r.push(MemKind::Store, 0);
        let b = r.push(MemKind::Load, 1);
        // Reflexive for both kinds, regardless of overrides elsewhere.
        assert!(r.may_alias(a, a));
        assert!(r.may_alias(b, b));
        r.set_may_alias(a, b, true);
        assert!(r.may_alias(a, a));
        let sealed = r.sealed();
        assert!(sealed.may_alias(a, a));
        assert!(sealed.may_alias(b, b));
    }

    #[test]
    #[should_panic(expected = "self may-alias override is meaningless")]
    fn self_alias_override_rejected() {
        let mut r = RegionSpec::new();
        let a = r.push(MemKind::Store, 0);
        r.set_may_alias(a, a, false);
    }

    #[test]
    fn sealed_matches_spec_on_all_pairs() {
        let mut r = RegionSpec::new();
        let ids: Vec<_> = (0..10).map(|i| r.push(MemKind::Load, i % 3)).collect();
        r.set_may_alias(ids[0], ids[3], false); // same class, forced off
        r.set_may_alias(ids[1], ids[2], true); // different class, forced on
        r.add_load_elim(ids[0], ids[7]);
        let sealed = r.sealed();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(sealed.may_alias(a, b), r.may_alias(a, b), "{a:?} {b:?}");
            }
            assert_eq!(sealed.is_eliminated(a), r.is_eliminated(a));
        }
        assert_eq!(sealed.len(), r.len());
        let total: usize = sealed.class_buckets().iter().map(Vec::len).sum();
        assert_eq!(total, r.len());
        assert_eq!(sealed.overrides().len(), 2);
    }

    #[test]
    fn iteration_matches_original_order() {
        let mut r = RegionSpec::new();
        let ids: Vec<_> = (0..4).map(|i| r.push(MemKind::Load, i)).collect();
        let collected: Vec<_> = r.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, collected);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }
}
