//! Value-range (interval) abstract domain and unspeculatable address
//! ranges.
//!
//! The static dataflow analyzer in `crates/verify` interprets guest
//! programs over an **interval lattice**: every integer register is
//! abstracted to a closed interval `[lo, hi]` of the concrete `i64`
//! values it can hold. The lattice is the standard one:
//!
//! * ⊥ (bottom) — no value, represented as `lo > hi`;
//! * exact singletons `[v, v]`;
//! * finite intervals `[lo, hi]` with `lo <= hi`;
//! * ⊤ (top) — `[i64::MIN, i64::MAX]`.
//!
//! Soundness contract: for every transfer function here, if the concrete
//! inputs are contained in the abstract inputs, the concrete result (with
//! the guest's *wrapping* semantics — see `smarq_guest::AluOp::apply`) is
//! contained in the abstract result. Arithmetic is evaluated in `i128`;
//! any corner that leaves the `i64` range means the concrete operation
//! may wrap, and the result is widened to ⊤ rather than modelling the
//! wrap-around precisely.
//!
//! [`NospecRanges`] is the *unspeculatable address range* configuration
//! (ROADMAP item 5): a set of guest address ranges (e.g. memory-mapped
//! device registers) across which the optimizer must never speculate.
//! A memory operation whose derived address interval can touch such a
//! range is *tainted*: it is never reordered, never eliminated, and never
//! carries P/C bits.

use std::fmt;

/// A closed interval `[lo, hi]` of `i64` values; `lo > hi` is ⊥ (empty).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The empty interval ⊥ (canonically `[MAX, MIN]`).
    pub const BOTTOM: Interval = Interval {
        lo: i64::MAX,
        hi: i64::MIN,
    };

    /// The full interval ⊤ = `[i64::MIN, i64::MAX]`.
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The singleton `[v, v]`.
    pub fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; returns ⊥ when `lo > hi`.
    pub fn of(lo: i64, hi: i64) -> Interval {
        if lo > hi {
            Interval::BOTTOM
        } else {
            Interval { lo, hi }
        }
    }

    /// `true` for the empty interval.
    pub fn is_bottom(self) -> bool {
        self.lo > self.hi
    }

    /// `true` for `[i64::MIN, i64::MAX]`.
    pub fn is_top(self) -> bool {
        self.lo == i64::MIN && self.hi == i64::MAX
    }

    /// The singleton value, if the interval is exact.
    pub fn as_exact(self) -> Option<i64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// `true` when `v` is inside the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Partial order: `self` ⊑ `other` (every value of `self` is a value
    /// of `other`). ⊥ is below everything.
    pub fn le(self, other: Interval) -> bool {
        self.is_bottom() || (other.lo <= self.lo && self.hi <= other.hi)
    }

    /// Least upper bound (interval hull).
    pub fn join(self, other: Interval) -> Interval {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening: any bound that grew jumps straight to
    /// the corresponding infinity. Guarantees termination of fixpoint
    /// iteration — a chain `a, a ∇ b₁, (a ∇ b₁) ∇ b₂, …` stabilizes after
    /// at most two widenings per bound.
    pub fn widen(self, other: Interval) -> Interval {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        Interval {
            lo: if other.lo < self.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if other.hi > self.hi {
                i64::MAX
            } else {
                self.hi
            },
        }
    }

    fn combine_corners(self, other: Interval, f: impl Fn(i128, i128) -> i128) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        let corners = [
            f(self.lo as i128, other.lo as i128),
            f(self.lo as i128, other.hi as i128),
            f(self.hi as i128, other.lo as i128),
            f(self.hi as i128, other.hi as i128),
        ];
        let lo = corners.iter().copied().min().unwrap();
        let hi = corners.iter().copied().max().unwrap();
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            // The concrete op may wrap; modelling modular intervals is not
            // worth the complexity here.
            Interval::TOP
        } else {
            Interval {
                lo: lo as i64,
                hi: hi as i64,
            }
        }
    }
}

/// Abstract addition (sound w.r.t. wrapping concrete addition: any
/// corner outside `i64` ⇒ ⊤).
impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, other: Interval) -> Interval {
        self.combine_corners(other, |a, b| a + b)
    }
}

/// Abstract subtraction.
impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, other: Interval) -> Interval {
        self.combine_corners(other, |a, b| a - b)
    }
}

/// Abstract multiplication (corner products in `i128`).
impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, other: Interval) -> Interval {
        self.combine_corners(other, |a, b| a * b)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            f.write_str("bot")
        } else if self.is_top() {
            f.write_str("top")
        } else if self.lo == self.hi {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Abstract register state: one interval per target register (guest
/// architectural state lives in registers `0..32`; `32..` are translator
/// temporaries).
pub type RegState = [Interval; 64];

/// The state at interpreter start: every register is exactly zero.
pub fn zeroed_state() -> RegState {
    [Interval::exact(0); 64]
}

/// The unconstrained state: every register is ⊤.
pub fn top_state() -> RegState {
    [Interval::TOP; 64]
}

/// Joins `b` into `a` register-wise; returns `true` if `a` changed.
pub fn join_state(a: &mut RegState, b: &RegState) -> bool {
    let mut changed = false;
    for (x, y) in a.iter_mut().zip(b.iter()) {
        let j = x.join(*y);
        if j != *x {
            *x = j;
            changed = true;
        }
    }
    changed
}

/// Widens `a` by `b` register-wise; returns `true` if `a` changed.
pub fn widen_state(a: &mut RegState, b: &RegState) -> bool {
    let mut changed = false;
    for (x, y) in a.iter_mut().zip(b.iter()) {
        let w = x.widen(x.join(*y));
        if w != *x {
            *x = w;
            changed = true;
        }
    }
    changed
}

/// Byte width of every guest memory access (the ISA is word-only).
pub const ACCESS_BYTES: i64 = 8;

/// A set of *unspeculatable* guest address ranges (inclusive byte
/// ranges). Parsed from `--nospec lo..hi[,lo..hi…]` (half-open bounds,
/// decimal or `0x` hex).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NospecRanges {
    ranges: Vec<(i64, i64)>,
}

impl NospecRanges {
    /// The empty set (speculation unrestricted).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds from inclusive `(lo, hi)` byte ranges; empty ranges are
    /// dropped.
    pub fn from_ranges(ranges: impl IntoIterator<Item = (i64, i64)>) -> Self {
        let mut r: Vec<(i64, i64)> = ranges.into_iter().filter(|&(lo, hi)| lo <= hi).collect();
        r.sort_unstable();
        r.dedup();
        NospecRanges { ranges: r }
    }

    /// Parses `lo..hi[,lo..hi…]` with **half-open** bounds (`0x100..0x200`
    /// covers bytes `0x100..=0x1ff`). Numbers are decimal or `0x` hex,
    /// optionally negative. The empty string parses as the empty set.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Self::none());
        }
        let mut ranges = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (lo_s, hi_s) = part
                .split_once("..")
                .ok_or_else(|| format!("bad range '{part}': expected LO..HI"))?;
            let lo = parse_int(lo_s.trim())?;
            let hi_excl = parse_int(hi_s.trim())?;
            if hi_excl <= lo {
                return Err(format!("bad range '{part}': end must exceed start"));
            }
            ranges.push((lo, hi_excl - 1));
        }
        Ok(Self::from_ranges(ranges))
    }

    /// `true` when no ranges are configured.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The inclusive `(lo, hi)` ranges, sorted.
    pub fn ranges(&self) -> &[(i64, i64)] {
        &self.ranges
    }

    /// `true` when byte address `addr` is inside a range.
    pub fn contains(&self, addr: i64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= addr && addr <= hi)
    }

    /// `true` when a word access whose **start address** lies anywhere in
    /// `addr` can touch a byte of some range (the access footprint is
    /// `[a, a + ACCESS_BYTES - 1]`). ⊤ start addresses intersect every
    /// non-empty set; ⊥ intersects nothing.
    pub fn intersects_access(&self, addr: Interval) -> bool {
        if addr.is_bottom() {
            return false;
        }
        let foot_hi = addr.hi.saturating_add(ACCESS_BYTES - 1);
        self.ranges
            .iter()
            .any(|&(lo, hi)| addr.lo <= hi && lo <= foot_hi)
    }
}

impl fmt::Display for NospecRanges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &(lo, hi)) in self.ranges.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            // Render back in the half-open input form.
            write!(f, "{:#x}..{:#x}", lo, hi + 1)?;
        }
        Ok(())
    }
}

fn parse_int(s: &str) -> Result<i64, String> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|e| format!("bad number '{s}': {e}"))?;
    Ok(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_basics() {
        let b = Interval::BOTTOM;
        let t = Interval::TOP;
        let x = Interval::of(3, 7);
        assert!(b.is_bottom() && !x.is_bottom() && !t.is_bottom());
        assert!(t.is_top() && !x.is_top());
        assert!(b.le(x) && x.le(t) && !t.le(x));
        assert_eq!(x.join(b), x);
        assert_eq!(b.join(x), x);
        assert_eq!(x.join(Interval::of(5, 10)), Interval::of(3, 10));
        assert_eq!(Interval::exact(4).as_exact(), Some(4));
        assert_eq!(x.as_exact(), None);
        assert!(x.contains(3) && x.contains(7) && !x.contains(8));
    }

    #[test]
    fn widen_jumps_to_infinity_per_bound() {
        let a = Interval::of(0, 10);
        assert_eq!(a.widen(Interval::of(0, 11)).hi, i64::MAX);
        assert_eq!(a.widen(Interval::of(0, 11)).lo, 0);
        assert_eq!(a.widen(Interval::of(-1, 5)).lo, i64::MIN);
        assert_eq!(a.widen(a), a);
    }

    #[test]
    fn arithmetic_is_sound_at_corners() {
        let a = Interval::of(-2, 3);
        let b = Interval::of(10, 20);
        assert_eq!(a + b, Interval::of(8, 23));
        assert_eq!(a - b, Interval::of(-22, -7));
        assert_eq!(a * b, Interval::of(-40, 60));
        // Overflowing corners widen to ⊤.
        assert!((Interval::exact(i64::MAX) + Interval::exact(1)).is_top());
        assert!((Interval::exact(i64::MIN) - Interval::exact(1)).is_top());
        assert!((Interval::TOP + Interval::exact(0)).is_top());
        assert!((Interval::exact(5) + Interval::BOTTOM).is_bottom());
    }

    #[test]
    fn state_join_and_widen_report_change() {
        let mut a = zeroed_state();
        let b = zeroed_state();
        assert!(!join_state(&mut a, &b));
        let mut c = zeroed_state();
        let mut d = zeroed_state();
        d[3] = Interval::of(0, 5);
        assert!(join_state(&mut c, &d));
        assert_eq!(c[3], Interval::of(0, 5));
        assert!(widen_state(&mut c, &{
            let mut e = zeroed_state();
            e[3] = Interval::of(0, 6);
            e
        }));
        assert_eq!(c[3].hi, i64::MAX);
        assert_eq!(c[3].lo, 0);
    }

    #[test]
    fn nospec_parse_roundtrip() {
        let r = NospecRanges::parse("0x100..0x200, 4096..8192").unwrap();
        assert_eq!(r.ranges(), &[(0x100, 0x1ff), (4096, 8191)]);
        assert!(r.contains(0x100) && r.contains(0x1ff) && !r.contains(0x200));
        assert!(NospecRanges::parse("").unwrap().is_empty());
        assert!(NospecRanges::parse("5..5").is_err());
        assert!(NospecRanges::parse("nonsense").is_err());
        assert!(NospecRanges::parse("-16..0").unwrap().contains(-1));
        assert_eq!(r.to_string(), "0x100..0x200,0x1000..0x2000");
    }

    #[test]
    fn nospec_access_footprint_is_word_wide() {
        let r = NospecRanges::parse("0x100..0x108").unwrap(); // bytes 0x100..=0x107
                                                              // A word starting 7 bytes below still touches the range.
        assert!(r.intersects_access(Interval::exact(0xf9)));
        assert!(!r.intersects_access(Interval::exact(0xf8)));
        assert!(r.intersects_access(Interval::exact(0x107)));
        assert!(!r.intersects_access(Interval::exact(0x108)));
        assert!(r.intersects_access(Interval::TOP));
        assert!(!r.intersects_access(Interval::BOTTOM));
        assert!(r.intersects_access(Interval::of(0, 0x10000)));
        assert!(!NospecRanges::none().intersects_access(Interval::TOP));
    }
}
