//! Speculative load and store elimination (paper §4.1, Figures 5 and 9).
//!
//! * **Load elimination**: a load whose address provably equals an earlier
//!   load/store is replaced with a register copy. Intervening *may*-alias
//!   stores make the elimination *speculative*: it is recorded in the
//!   [`RegionSpec`] so `EXTENDED-DEPENDENCE 1` forces those stores to check
//!   the forwarding source's alias register.
//! * **Store elimination**: a store provably overwritten by a later store
//!   (with no intervening exit) is removed. Intervening *may*-alias loads
//!   make it speculative (`EXTENDED-DEPENDENCE 2`).
//!
//! Safety interactions handled here (see the inline comments):
//! speculative forwarding sources are *pinned* against store elimination
//! (their alias register must be set for the extended checks to work), and
//! eliminated loads inside a store-elimination window block it (their
//! extended dependences would otherwise silently disappear).

use crate::blacklist::AliasBlacklist;
use crate::config::OptConfig;
use smarq::RegionSpec;
use smarq_ir::{AliasAnalysis, AliasRel, IrOp, RegionMap, Superblock};
use std::collections::{HashMap, HashSet};

/// The outcome of the elimination pass.
#[derive(Clone, Debug)]
pub struct Eliminations {
    /// Per superblock op index: the copy that replaces an eliminated load.
    pub replaced: Vec<Option<IrOp>>,
    /// Per superblock op index: `true` for removed (eliminated) stores.
    pub removed: Vec<bool>,
    /// Speculative load eliminations.
    pub spec_load_elims: usize,
    /// Speculative store eliminations.
    pub spec_store_elims: usize,
    /// Non-speculative eliminations (fully disambiguated).
    pub nonspec_elims: usize,
}

impl Eliminations {
    /// `true` if op `i` was eliminated (load replaced or store removed).
    pub fn is_eliminated(&self, i: usize) -> bool {
        self.replaced[i].is_some() || self.removed[i]
    }
}

/// Runs both eliminations, recording them in `spec` so the dependence
/// computation derives the paper's extended dependences.
///
/// `taint` flags per superblock op index the memory operations whose
/// address can touch an unspeculatable range (see
/// [`smarq_ir::nospec_taint`]). Tainted ops take part in **no**
/// elimination, speculative or not: not as the eliminated op, not as the
/// forwarding source / overwriter, and not as a window op that would have
/// to carry an extended-dependence check bit.
pub fn run_eliminations(
    sb: &Superblock,
    analysis: &AliasAnalysis,
    spec: &mut RegionSpec,
    map: &RegionMap,
    config: &OptConfig,
    blacklist: &AliasBlacklist,
    taint: &[bool],
) -> Eliminations {
    let n = sb.ops.len();
    let mut out = Eliminations {
        replaced: vec![None; n],
        removed: vec![false; n],
        spec_load_elims: 0,
        spec_store_elims: 0,
        nonspec_elims: 0,
    };

    // Redefinition queries over the *original* op list (a replacing copy
    // defines the same register as the load it replaces).
    let redefined_int =
        |reg: u8, lo: usize, hi: usize| sb.ops[lo + 1..hi].iter().any(|o| o.int_def() == Some(reg));
    let redefined_fp =
        |reg: u8, lo: usize, hi: usize| sb.ops[lo + 1..hi].iter().any(|o| o.fp_def() == Some(reg));

    // l -> (ultimate source op index, value register, is_fp).
    let mut fwd: HashMap<usize, usize> = HashMap::new();
    // Stores that must keep executing because a speculative load elimination
    // relies on their alias register.
    let mut pinned: HashSet<usize> = HashSet::new();

    // ---- Load elimination (backward scan per load) ----
    for l in 0..n {
        let (l_fp, l_dst) = match sb.ops[l] {
            IrOp::Ld { rd, .. } => (false, rd),
            IrOp::FLd { fd, .. } => (true, fd),
            _ => continue,
        };
        // (source index for the window, value register)
        let mut found: Option<(usize, u8)> = None;
        let mut may_stores: Vec<usize> = Vec::new();
        for j in (0..l).rev() {
            if !sb.ops[j].is_mem() {
                continue;
            }
            match analysis.relation(j, l) {
                AliasRel::No => {}
                AliasRel::May => {
                    if sb.ops[j].is_store() {
                        may_stores.push(j);
                    }
                }
                AliasRel::Must => {
                    match sb.ops[j] {
                        IrOp::St { rs, .. } if !l_fp && !redefined_int(rs, j, l) => {
                            found = Some((j, rs));
                        }
                        IrOp::FSt { fs, .. } if l_fp && !redefined_fp(fs, j, l) => {
                            found = Some((j, fs));
                        }
                        IrOp::Ld { rd, .. } if !l_fp && !redefined_int(rd, j, l) => {
                            // A previously eliminated load resolves to its
                            // own ultimate source: the alias checks must
                            // guard the *original* window.
                            let src = fwd.get(&j).copied().unwrap_or(j);
                            found = Some((src, rd));
                        }
                        IrOp::FLd { fd, .. } if l_fp && !redefined_fp(fd, j, l) => {
                            let src = fwd.get(&j).copied().unwrap_or(j);
                            found = Some((src, fd));
                        }
                        _ => {} // cross-file must-alias: blocker
                    }
                    break; // a must-alias memop always ends the scan
                }
            }
        }

        let Some((src, value_reg)) = found else {
            continue;
        };
        // Only may-stores inside the (possibly widened) window matter.
        let window_stores: Vec<usize> = may_stores
            .iter()
            .copied()
            .filter(|&s| s > src)
            .chain(
                // Widened window (forwarding through an eliminated load):
                // re-scan the extra range.
                (src..l)
                    .filter(|&s| {
                        sb.ops[s].is_store()
                            && analysis.relation(s, l) == AliasRel::May
                            && !may_stores.contains(&s)
                    })
                    .collect::<Vec<_>>(),
            )
            .collect();
        if taint[l] || taint[src] || window_stores.iter().any(|&s| taint[s]) {
            continue; // unspeculatable ops take part in no elimination
        }
        let speculative = !window_stores.is_empty();
        if speculative {
            if !config.allow_spec_load_elim || !config.supports_spec_elim() {
                continue;
            }
            let risky = window_stores.iter().any(|&s| {
                blacklist.contains(sb.origins[s], sb.origins[l])
                    || blacklist.contains(sb.origins[s], sb.origins[src])
            });
            if risky {
                continue;
            }
        }

        out.replaced[l] = Some(if l_fp {
            IrOp::FCopy {
                fd: l_dst,
                fa: value_reg,
            }
        } else {
            IrOp::Copy {
                rd: l_dst,
                ra: value_reg,
            }
        });
        fwd.insert(l, src);
        spec.add_load_elim(
            map.mem_id(src).expect("source is a memory op"),
            map.mem_id(l).expect("load is a memory op"),
        );
        if speculative {
            out.spec_load_elims += 1;
            if sb.ops[src].is_store() {
                pinned.insert(src);
            }
        } else {
            out.nonspec_elims += 1;
        }
    }

    // ---- Store elimination (forward scan per store) ----
    for i in 0..n {
        if !sb.ops[i].is_store() || pinned.contains(&i) || out.removed[i] {
            continue;
        }
        let mut overwriter: Option<usize> = None;
        let mut blocked = false;
        let mut may_loads: Vec<usize> = Vec::new();
        for j in (i + 1)..n {
            if sb.ops[j].is_exit() {
                // A committed side exit must observe the store: no
                // elimination across exits.
                blocked = true;
                break;
            }
            if !sb.ops[j].is_mem() || out.removed[j] {
                continue;
            }
            let rel = analysis.relation(i, j);
            if sb.ops[j].is_store() {
                if rel == AliasRel::Must {
                    overwriter = Some(j);
                    break;
                }
                // May/no-alias stores do not affect the elimination's
                // correctness (paper §4.1, Figure 9 discussion).
            } else {
                match rel {
                    AliasRel::Must => {
                        if out.replaced[j].is_none() {
                            blocked = true; // a live load reads the value
                            break;
                        }
                        // An eliminated must-alias load forwards from this
                        // store (or later): it never reads memory.
                    }
                    AliasRel::May => {
                        if out.replaced[j].is_some() {
                            // An eliminated load here would need extended
                            // dependences that the dependence computation
                            // skips for eliminated ops: block conservatively.
                            blocked = true;
                            break;
                        }
                        may_loads.push(j);
                    }
                    AliasRel::No => {}
                }
            }
        }

        let Some(z) = overwriter else { continue };
        if blocked {
            continue;
        }
        if taint[i] || taint[z] || may_loads.iter().any(|&y| taint[y]) {
            continue; // unspeculatable ops take part in no elimination
        }
        let speculative = !may_loads.is_empty();
        if speculative {
            if !config.allow_spec_store_elim || !config.supports_spec_elim() {
                continue;
            }
            let risky = may_loads.iter().any(|&y| {
                blacklist.contains(sb.origins[y], sb.origins[z])
                    || blacklist.contains(sb.origins[y], sb.origins[i])
            });
            if risky {
                continue;
            }
        }
        out.removed[i] = true;
        pinned.insert(z); // the overwriter must not be eliminated in turn
        spec.add_store_elim(
            map.mem_id(i).expect("store is a memory op"),
            map.mem_id(z).expect("overwriter is a memory op"),
        );
        if speculative {
            out.spec_store_elims += 1;
        } else {
            out.nonspec_elims += 1;
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::BlockId;
    use smarq_ir::{IrExit, OpOrigin};

    fn mk_sb(ops: Vec<IrOp>) -> Superblock {
        let n = ops.len();
        let mut ops = ops;
        ops.push(IrOp::Exit {
            exit_id: 0,
            cond: None,
        });
        Superblock {
            origins: (0..n as u32 + 1)
                .map(|i| OpOrigin {
                    block: BlockId(0),
                    instr: i,
                })
                .collect(),
            ops,
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        }
    }

    fn run(sb: &Superblock, config: &OptConfig) -> (Eliminations, RegionSpec) {
        let analysis = AliasAnalysis::new(sb);
        let (mut spec, map) = smarq_ir::build_region_spec(sb, &analysis);
        let e = run_eliminations(
            sb,
            &analysis,
            &mut spec,
            &map,
            config,
            &AliasBlacklist::new(),
            &vec![false; sb.ops.len()],
        );
        (e, spec)
    }

    #[test]
    fn nonspeculative_store_to_load_forwarding() {
        // st [r1+0]=r2 ; ld r3=[r1+0] with nothing between.
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, _) = run(&sb, &OptConfig::smarq(64));
        assert_eq!(e.replaced[1], Some(IrOp::Copy { rd: 3, ra: 2 }));
        assert_eq!(e.nonspec_elims, 1);
        assert_eq!(e.spec_load_elims, 0);
    }

    #[test]
    fn speculative_forwarding_across_may_store() {
        // ld r3=[r1]; st [r4]=r5 (may alias); ld r6=[r1]  (Figure 5 shape).
        let sb = mk_sb(vec![
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 4,
                disp: 0,
            },
            IrOp::Ld {
                rd: 6,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, spec) = run(&sb, &OptConfig::smarq(64));
        assert_eq!(e.replaced[2], Some(IrOp::Copy { rd: 6, ra: 3 }));
        assert_eq!(e.spec_load_elims, 1);
        assert_eq!(spec.load_elims().len(), 1);
        // Without speculative-elim support nothing happens.
        let (e2, _) = run(&sb, &OptConfig::alat());
        assert_eq!(e2.replaced[2], None);
    }

    #[test]
    fn must_alias_store_blocks_forwarding() {
        // ld r3=[r1]; st [r1]=r5 ; ld r6=[r1]: forwards from the STORE.
        let sb = mk_sb(vec![
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 6,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, _) = run(&sb, &OptConfig::smarq(64));
        assert_eq!(e.replaced[2], Some(IrOp::Copy { rd: 6, ra: 5 }));
    }

    #[test]
    fn redefined_value_register_blocks_forwarding() {
        // ld r3=[r1]; r3 = r3+1 ; ld r6=[r1]: r3 no longer holds the value.
        let sb = mk_sb(vec![
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::AluImm {
                op: smarq_guest::AluOp::Add,
                rd: 3,
                ra: 3,
                imm: 1,
            },
            IrOp::Ld {
                rd: 6,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, _) = run(&sb, &OptConfig::smarq(64));
        assert_eq!(e.replaced[2], None);
    }

    #[test]
    fn chained_forwarding_uses_ultimate_window() {
        // ld A; st may; ld A (elim, spec); st may2; ld A (elim from the
        // eliminated load — window must reach the first ld).
        let sb = mk_sb(vec![
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 4,
                disp: 0,
            },
            IrOp::Ld {
                rd: 6,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 7,
                base: 8,
                disp: 0,
            },
            IrOp::Ld {
                rd: 9,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, spec) = run(&sb, &OptConfig::smarq(64));
        assert!(e.replaced[2].is_some());
        assert!(e.replaced[4].is_some());
        assert_eq!(e.spec_load_elims, 2);
        // Both eliminations resolve to the first load as source.
        for le in spec.load_elims() {
            assert_eq!(le.source.index(), 0);
        }
    }

    #[test]
    fn dead_store_elimination_speculative_and_not() {
        // st [r1]=r2 ; ld r3=[r4] (may) ; st [r1]=r5  -> speculative.
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 4,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, spec) = run(&sb, &OptConfig::smarq(64));
        assert!(e.removed[0]);
        assert_eq!(e.spec_store_elims, 1);
        assert_eq!(spec.store_elims().len(), 1);

        // With a no-alias load between: non-speculative.
        let sb2 = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 8,
            },
            IrOp::St {
                rs: 5,
                base: 1,
                disp: 0,
            },
        ]);
        let (e2, _) = run(&sb2, &OptConfig::smarq(64));
        assert!(e2.removed[0]);
        assert_eq!(e2.nonspec_elims, 1);
    }

    #[test]
    fn forwarded_must_alias_load_unlocks_store_elimination() {
        // st [r1]=r2 ; ld [r1] ; st [r1]=r5: the load forwards from the
        // first store (register copy), so the first store becomes dead and
        // both optimizations compose.
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, _) = run(&sb, &OptConfig::smarq(64));
        assert_eq!(e.replaced[1], Some(IrOp::Copy { rd: 3, ra: 2 }));
        assert!(e.removed[0], "the forwarded load no longer reads memory");
        assert_eq!(e.nonspec_elims, 2);
    }

    #[test]
    fn live_must_alias_load_blocks_store_elimination() {
        // Same shape, but the stored register is clobbered before the load,
        // so forwarding is impossible and the load genuinely reads memory.
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::AluImm {
                op: smarq_guest::AluOp::Add,
                rd: 2,
                ra: 2,
                imm: 1,
            },
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, _) = run(&sb, &OptConfig::smarq(64));
        assert_eq!(e.replaced[2], None, "forwarding blocked by clobber");
        assert!(!e.removed[0], "the live load reads the first store's value");
    }

    #[test]
    fn exits_block_store_elimination() {
        let mut sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 1,
                disp: 0,
            },
        ]);
        // Insert a conditional exit between the stores.
        sb.exits.push(IrExit { target: None });
        sb.ops.insert(
            1,
            IrOp::Exit {
                exit_id: 1,
                cond: Some((smarq_guest::CmpOp::Eq, 1, 2)),
            },
        );
        sb.origins.insert(1, OpOrigin::terminator(BlockId(0)));
        let (e, _) = run(&sb, &OptConfig::smarq(64));
        assert!(!e.removed[0]);
    }

    #[test]
    fn speculative_forwarding_source_store_is_pinned() {
        // st [r1]=r2 ; st may ; ld [r1] (spec elim from the first store) ;
        // st [r1]=r9 — the first store would be dead, but it is pinned.
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 4,
                disp: 0,
            },
            IrOp::Ld {
                rd: 6,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 9,
                base: 1,
                disp: 0,
            },
        ]);
        let (e, _) = run(&sb, &OptConfig::smarq(64));
        assert!(e.replaced[2].is_some(), "load forwards speculatively");
        assert!(
            !e.removed[0],
            "forwarding source must stay alive for the extended checks"
        );
    }

    #[test]
    fn blacklisted_pairs_disable_speculative_elims() {
        let sb = mk_sb(vec![
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 4,
                disp: 0,
            },
            IrOp::Ld {
                rd: 6,
                base: 1,
                disp: 0,
            },
        ]);
        let analysis = AliasAnalysis::new(&sb);
        let (mut spec, map) = smarq_ir::build_region_spec(&sb, &analysis);
        let mut bl = AliasBlacklist::new();
        bl.insert(sb.origins[1], sb.origins[2]);
        let e = run_eliminations(
            &sb,
            &analysis,
            &mut spec,
            &map,
            &OptConfig::smarq(64),
            &bl,
            &vec![false; sb.ops.len()],
        );
        assert_eq!(e.replaced[2], None, "blacklisted pair is never speculated");
    }

    #[test]
    fn tainted_ops_take_part_in_no_elimination() {
        // st [r1]=r2 ; ld r3=[r1]: trivially forwardable — unless tainted.
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
        ]);
        let analysis = AliasAnalysis::new(&sb);
        let config = OptConfig::smarq(64);
        for hot in [0usize, 1] {
            let (mut spec, map) = smarq_ir::build_region_spec(&sb, &analysis);
            let mut taint = vec![false; sb.ops.len()];
            taint[hot] = true;
            let e = run_eliminations(
                &sb,
                &analysis,
                &mut spec,
                &map,
                &config,
                &AliasBlacklist::new(),
                &taint,
            );
            assert_eq!(e.replaced[1], None, "taint on op {hot} blocks forwarding");
            assert_eq!(e.nonspec_elims, 0);
        }

        // Tainted may-store inside a speculative forwarding window also
        // blocks (it would have to carry a check bit).
        let sb2 = mk_sb(vec![
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 4,
                disp: 0,
            },
            IrOp::Ld {
                rd: 6,
                base: 1,
                disp: 0,
            },
        ]);
        let analysis2 = AliasAnalysis::new(&sb2);
        let (mut spec2, map2) = smarq_ir::build_region_spec(&sb2, &analysis2);
        let mut taint2 = vec![false; sb2.ops.len()];
        taint2[1] = true;
        let e2 = run_eliminations(
            &sb2,
            &analysis2,
            &mut spec2,
            &map2,
            &config,
            &AliasBlacklist::new(),
            &taint2,
        );
        assert_eq!(
            e2.replaced[2], None,
            "tainted window store blocks spec elim"
        );

        // Store elimination is blocked the same way.
        let sb3 = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 1,
                disp: 0,
            },
        ]);
        let analysis3 = AliasAnalysis::new(&sb3);
        let (mut spec3, map3) = smarq_ir::build_region_spec(&sb3, &analysis3);
        let mut taint3 = vec![false; sb3.ops.len()];
        taint3[0] = true;
        let e3 = run_eliminations(
            &sb3,
            &analysis3,
            &mut spec3,
            &map3,
            &config,
            &AliasBlacklist::new(),
            &taint3,
        );
        assert!(!e3.removed[0], "tainted dead store must still execute");
    }
}

/// Straight-line dead-code elimination over the post-elimination op list.
///
/// A non-memory, non-exit operation is dead when its destination register
/// is redefined before any read *within its exit-delimited segment* —
/// side exits observe all guest registers, so a value that survives to an
/// exit is live. Memory operations are never removed here (their identity
/// is fixed by the region spec; loads/stores are handled by the
/// speculative eliminations above). Runs to a fixpoint: removing one op
/// can make its producers dead in turn.
pub fn dce(sb: &Superblock, elims: &mut Eliminations) {
    let n = sb.ops.len();
    let effective = |i: usize, elims: &Eliminations| -> Option<IrOp> {
        if elims.removed[i] {
            None
        } else {
            Some(elims.replaced[i].unwrap_or(sb.ops[i]))
        }
    };
    loop {
        let mut changed = false;
        for i in 0..n {
            let Some(op) = effective(i, elims) else {
                continue;
            };
            if op.is_mem() || op.is_exit() {
                continue;
            }
            let (int_def, fp_def) = (op.int_def(), op.fp_def());
            if int_def.is_none() && fp_def.is_none() {
                continue;
            }
            let mut dead = false;
            let mut decided = false;
            for j in (i + 1)..n {
                let Some(later) = effective(j, elims) else {
                    continue;
                };
                if later.is_exit() {
                    break; // the exit observes the register: live
                }
                let read = int_def.is_some_and(|d| later.int_uses().contains(&d))
                    || fp_def.is_some_and(|d| later.fp_uses().contains(&d));
                if read {
                    decided = true;
                    break;
                }
                let redef = (int_def.is_some() && later.int_def() == int_def)
                    || (fp_def.is_some() && later.fp_def() == fp_def);
                if redef {
                    dead = true;
                    decided = true;
                    break;
                }
            }
            let _ = decided;
            if dead {
                elims.removed[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod dce_tests {
    use super::*;
    use smarq_guest::{AluOp, BlockId, CmpOp};
    use smarq_ir::{IrExit, OpOrigin};

    fn mk_sb(ops: Vec<IrOp>, exits: usize) -> Superblock {
        let n = ops.len();
        let mut ops = ops;
        ops.push(IrOp::Exit {
            exit_id: 0,
            cond: None,
        });
        Superblock {
            origins: (0..n as u32 + 1)
                .map(|i| OpOrigin {
                    block: BlockId(0),
                    instr: i,
                })
                .collect(),
            ops,
            exits: vec![IrExit { target: None }; exits.max(1)],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        }
    }

    fn fresh(sb: &Superblock) -> Eliminations {
        Eliminations {
            replaced: vec![None; sb.ops.len()],
            removed: vec![false; sb.ops.len()],
            spec_load_elims: 0,
            spec_store_elims: 0,
            nonspec_elims: 0,
        }
    }

    #[test]
    fn overwritten_def_is_removed_and_chains() {
        // r1 = 1; r2 = r1+1 (dead: r2 overwritten before any read);
        // r2 = 7; r1 = 9 (so the first r1 def can die once its only
        // reader is gone); r3 = r2.
        let sb = mk_sb(
            vec![
                IrOp::IConst { rd: 1, value: 1 },
                IrOp::AluImm {
                    op: AluOp::Add,
                    rd: 2,
                    ra: 1,
                    imm: 1,
                },
                IrOp::IConst { rd: 2, value: 7 },
                IrOp::IConst { rd: 1, value: 9 },
                IrOp::Copy { rd: 3, ra: 2 },
            ],
            1,
        );
        let mut e = fresh(&sb);
        dce(&sb, &mut e);
        assert!(e.removed[1], "r2=r1+1 is overwritten before any read");
        assert!(
            e.removed[0],
            "after removing its only reader, r1=1 dies too"
        );
        assert!(!e.removed[2]);
        assert!(!e.removed[3]);
        assert!(!e.removed[4]);
    }

    #[test]
    fn exits_keep_values_alive() {
        let mut sb = mk_sb(
            vec![
                IrOp::IConst { rd: 1, value: 1 },
                IrOp::IConst { rd: 1, value: 2 },
            ],
            2,
        );
        // Insert a conditional exit between the two defs: the first value
        // is observable if the exit is taken.
        sb.ops.insert(
            1,
            IrOp::Exit {
                exit_id: 1,
                cond: Some((CmpOp::Eq, 4, 5)),
            },
        );
        sb.origins.insert(1, OpOrigin::terminator(BlockId(0)));
        let mut e = fresh(&sb);
        dce(&sb, &mut e);
        assert!(!e.removed[0], "live at the side exit");
    }

    #[test]
    fn memory_ops_and_reads_are_kept() {
        let sb = mk_sb(
            vec![
                IrOp::Ld {
                    rd: 1,
                    base: 2,
                    disp: 0,
                }, // never removed here even if dead
                IrOp::IConst { rd: 1, value: 3 },
                IrOp::St {
                    rs: 1,
                    base: 2,
                    disp: 8,
                },
            ],
            1,
        );
        let mut e = fresh(&sb);
        dce(&sb, &mut e);
        assert!(!e.removed[0], "loads keep their region identity");
        assert!(!e.removed[1], "read by the store");
        assert!(!e.removed[2]);
    }

    #[test]
    fn dead_replacement_copies_are_removed() {
        // A load eliminated into a copy whose value is then overwritten.
        let sb = mk_sb(
            vec![
                IrOp::St {
                    rs: 2,
                    base: 1,
                    disp: 0,
                },
                IrOp::Ld {
                    rd: 3,
                    base: 1,
                    disp: 0,
                },
                IrOp::IConst { rd: 3, value: 0 },
            ],
            1,
        );
        let mut e = fresh(&sb);
        e.replaced[1] = Some(IrOp::Copy { rd: 3, ra: 2 });
        dce(&sb, &mut e);
        assert!(e.removed[1], "the forwarding copy is dead");
    }
}
