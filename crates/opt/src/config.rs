//! Optimizer configuration: which hardware to target and which speculative
//! transformations to apply.

use smarq::NospecRanges;
use smarq_vliw::HwKind;

/// Optimizer configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OptConfig {
    /// Alias-detection hardware to target.
    pub hw: HwKind,
    /// Hardware alias register count (SMARQ) — ignored by other schemes.
    pub num_alias_regs: u32,
    /// Speculatively reorder may-aliasing memory operations at all.
    pub speculate_reordering: bool,
    /// Allow reordering two may-aliasing *stores* (paper Figure 16 disables
    /// this; the ALAT scheme cannot support it).
    pub allow_store_reorder: bool,
    /// Allow *speculative* load elimination (forwarding across may-aliasing
    /// stores). Requires SMARQ hardware.
    pub allow_spec_load_elim: bool,
    /// Allow *speculative* store elimination (dead store across may-aliasing
    /// loads). Requires SMARQ hardware.
    pub allow_spec_store_elim: bool,
    /// Unspeculatable address ranges. Memory operations whose derived
    /// address interval can touch one of these ranges are *tainted*: never
    /// reordered, never eliminated, never given P/C bits.
    pub nospec: NospecRanges,
}

impl OptConfig {
    /// Full SMARQ configuration with `num_alias_regs` registers.
    pub fn smarq(num_alias_regs: u32) -> Self {
        OptConfig {
            hw: HwKind::Smarq,
            num_alias_regs,
            speculate_reordering: true,
            allow_store_reorder: true,
            allow_spec_load_elim: true,
            allow_spec_store_elim: true,
            nospec: NospecRanges::none(),
        }
    }

    /// SMARQ with store reordering disabled (paper Figure 16).
    pub fn smarq_no_store_reorder(num_alias_regs: u32) -> Self {
        OptConfig {
            allow_store_reorder: false,
            ..Self::smarq(num_alias_regs)
        }
    }

    /// Transmeta-Efficeon-like configuration: the bit-mask encoding allows
    /// exact check sets (every SMARQ optimization expressible without
    /// AMOVs), but the register file cannot exceed 15 entries (paper §2.2).
    pub fn efficeon() -> Self {
        OptConfig {
            hw: HwKind::Efficeon,
            num_alias_regs: 15,
            speculate_reordering: true,
            allow_store_reorder: true,
            allow_spec_load_elim: true,
            allow_spec_store_elim: true,
            nospec: NospecRanges::none(),
        }
    }

    /// Itanium-ALAT-like configuration: loads may hoist above stores; no
    /// store-store reordering; no speculative eliminations (paper §2.3/§7).
    pub fn alat() -> Self {
        OptConfig {
            hw: HwKind::Alat,
            num_alias_regs: 0,
            speculate_reordering: true,
            allow_store_reorder: false,
            allow_spec_load_elim: false,
            allow_spec_store_elim: false,
            nospec: NospecRanges::none(),
        }
    }

    /// No alias-detection hardware: no memory speculation at all (the
    /// paper's speedup baseline).
    pub fn no_alias_hw() -> Self {
        OptConfig {
            hw: HwKind::None,
            num_alias_regs: 0,
            speculate_reordering: false,
            allow_store_reorder: false,
            allow_spec_load_elim: false,
            allow_spec_store_elim: false,
            nospec: NospecRanges::none(),
        }
    }

    /// Whether this configuration can honor speculative eliminations.
    /// The ordered queue handles them natively; the Efficeon bit-mask can
    /// express the required exact check sets too (cyclic constraint graphs
    /// fall back to less speculation — the bit-mask file has no AMOV).
    pub fn supports_spec_elim(&self) -> bool {
        matches!(self.hw, HwKind::Smarq | HwKind::Efficeon) && self.speculate_reordering
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(OptConfig::smarq(64).hw, HwKind::Smarq);
        assert_eq!(OptConfig::smarq(16).num_alias_regs, 16);
        assert!(OptConfig::smarq(64).supports_spec_elim());
        assert!(!OptConfig::alat().supports_spec_elim());
        assert!(OptConfig::efficeon().supports_spec_elim());
        assert_eq!(OptConfig::efficeon().num_alias_regs, 15);
        assert!(!OptConfig::alat().allow_store_reorder);
        assert!(!OptConfig::no_alias_hw().speculate_reordering);
        let nsr = OptConfig::smarq_no_store_reorder(64);
        assert!(!nsr.allow_store_reorder && nsr.speculate_reordering);
    }
}
