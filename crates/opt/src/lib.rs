//! # smarq-opt — speculative optimizations, scheduling and emission
//!
//! The optimization pipeline of the paper's dynamic optimizer (§6), over a
//! superblock region:
//!
//! 1. **Speculative load/store elimination** ([`elim`]): redundant-load
//!    removal and store→load forwarding across may-aliasing stores, and
//!    dead-store removal across may-aliasing loads — the optimizations
//!    whose *extended dependences* motivate SMARQ's constraint analysis.
//! 2. **Dependence DAG construction** ([`dag`]): register and memory
//!    dependences; may-alias edges are *speculation candidates* that the
//!    target hardware policy may drop.
//! 3. **List scheduling** ([`sched`]): latency-driven scheduling with the
//!    SMARQ alias register allocator embedded exactly as in the paper's
//!    Figure 13 — constraints are built and registers allocated as each
//!    memory operation is scheduled, and the allocator's overflow estimate
//!    switches the scheduler between speculation and non-speculation modes.
//! 4. **Annotation + VLIW emission** ([`emit`]): P/C bits, offsets, AMOV
//!    and rotate instructions for SMARQ; ALAT set/clear for the
//!    Itanium-like model; greedy bundling for the in-order machine.
//!
//! The entry point is [`optimize_superblock`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blacklist;
mod config;
pub mod dag;
pub mod elim;
pub mod emit;
pub mod fastcomp;
pub mod sched;

pub use blacklist::AliasBlacklist;
pub use config::OptConfig;

use smarq::DepGraph;
use smarq_ir::{build_region_spec, AliasAnalysis, OpOrigin, Superblock};
use smarq_vliw::{MachineConfig, VliwProgram};

/// Aggregate optimization statistics for one region (feeding the paper's
/// Figures 14, 17 and 19).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OptStats {
    /// IR operations in the region (before elimination).
    pub ir_ops: usize,
    /// Memory operations in the region (before elimination).
    pub mem_ops: usize,
    /// Speculative load eliminations applied.
    pub spec_load_elims: usize,
    /// Speculative store eliminations applied.
    pub spec_store_elims: usize,
    /// Non-speculative (fully proven) eliminations applied.
    pub nonspec_elims: usize,
    /// Check-constraints inserted.
    pub checks: usize,
    /// Anti-constraints inserted.
    pub antis: usize,
    /// AMOV instructions inserted.
    pub amovs: usize,
    /// AMOVs that truly move (the rest only clean up).
    pub amov_moves: usize,
    /// Operations that set an alias register (P bit).
    pub p_ops: usize,
    /// Alias register working set (max offset + 1).
    pub working_set: u32,
    /// Live-range lower bound on the working set.
    pub lower_bound: u32,
    /// Scheduled memory operations (after elimination).
    pub scheduled_mem_ops: usize,
    /// Times the scheduler retried with less speculation after a register
    /// overflow.
    pub overflow_retries: u32,
    /// Host nanoseconds spent in list scheduling + alias register
    /// allocation (the paper instruments exactly this slice for Figure 18).
    pub sched_ns: u64,
}

/// A fully optimized, annotated, bundled region.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The emitted VLIW code.
    pub vliw: VliwProgram,
    /// Statistics.
    pub stats: OptStats,
    /// Memory-op tag (as reported in alias exceptions) → guest origin.
    pub tag_origin: Vec<OpOrigin>,
}

/// The intermediate artifacts of one (successful) optimization attempt,
/// exposed for external oracles: the fuzzer replays
/// [`smarq::validate::validate_allocation`] and the differential
/// dependence/queue checks over exactly the regions the optimizer
/// produced, not synthetic ones.
#[derive(Clone, Debug)]
pub struct OptTrace {
    /// The region view handed to the constraint analysis (after
    /// eliminations were recorded).
    pub spec: smarq::RegionSpec,
    /// The dependence graph the allocator consumed.
    pub deps: smarq::DepGraph,
    /// Surviving memory operations in final scheduled order.
    pub mem_schedule: Vec<smarq::MemOpId>,
    /// The alias register allocation (`None` for hardware schemes without
    /// an embedded allocator, e.g. ALAT or no-alias-support).
    pub allocation: Option<smarq::Allocation>,
    /// Per [`smarq::MemOpId`] index: the superblock op index it lowers.
    /// Lets external analyzers relate allocation-level findings back to
    /// the IR (e.g. to re-derive address ranges for scheduled mem ops).
    pub mem_origin: Vec<usize>,
}

/// Optimizes one superblock for the configured hardware.
///
/// On alias-register overflow the pipeline retries with progressively less
/// speculation (first dropping speculative eliminations, then all memory
/// speculation); the retry count is reported in
/// [`OptStats::overflow_retries`].
///
/// # Panics
/// Panics if `sb` fails [`Superblock::validate`] (caller bug).
pub fn optimize_superblock(
    sb: &Superblock,
    config: &OptConfig,
    machine: &MachineConfig,
    blacklist: &AliasBlacklist,
) -> Optimized {
    optimize_superblock_with_scratch(
        sb,
        config,
        machine,
        blacklist,
        &mut smarq::AllocScratch::new(),
    )
}

/// Like [`optimize_superblock`], but recycles `scratch` for the embedded
/// alias register allocator. A long-running translator (see
/// `smarq-runtime`) keeps one scratch per thread so back-to-back region
/// translations reuse the allocator's working memory instead of
/// reallocating it. Results are identical to [`optimize_superblock`].
///
/// # Panics
/// Panics if `sb` fails [`Superblock::validate`] (caller bug).
pub fn optimize_superblock_with_scratch(
    sb: &Superblock,
    config: &OptConfig,
    machine: &MachineConfig,
    blacklist: &AliasBlacklist,
    scratch: &mut smarq::AllocScratch,
) -> Optimized {
    optimize_superblock_traced(sb, config, machine, blacklist, scratch).0
}

/// Like [`optimize_superblock_with_scratch`], but also returns the
/// [`OptTrace`] of the successful attempt so callers can replay external
/// oracles (allocation validation, differential dependence checks) over
/// the exact region/schedule/allocation the optimizer committed to.
///
/// # Panics
/// Panics if `sb` fails [`Superblock::validate`] (caller bug).
pub fn optimize_superblock_traced(
    sb: &Superblock,
    config: &OptConfig,
    machine: &MachineConfig,
    blacklist: &AliasBlacklist,
    scratch: &mut smarq::AllocScratch,
) -> (Optimized, OptTrace) {
    optimize_superblock_traced_ranged(sb, config, machine, blacklist, scratch, None)
}

/// Like [`optimize_superblock_traced`], with an optional abstract **entry
/// register state** from a whole-program dataflow analysis (see
/// `smarq-verify`). When [`OptConfig::nospec`] is non-empty, the entry
/// state sharpens the address intervals used to decide which memory
/// operations are *tainted* (can touch an unspeculatable range): with
/// `None`, every entry-dependent address is unknown (⊤) and conservatively
/// tainted. Tainted ops are excluded from every elimination and pinned in
/// program order against all other memory operations.
///
/// # Panics
/// Panics if `sb` fails [`Superblock::validate`] (caller bug).
pub fn optimize_superblock_traced_ranged(
    sb: &Superblock,
    config: &OptConfig,
    machine: &MachineConfig,
    blacklist: &AliasBlacklist,
    scratch: &mut smarq::AllocScratch,
    entry: Option<&smarq::RegState>,
) -> (Optimized, OptTrace) {
    sb.validate().expect("well-formed superblock");
    let mut cfg = config.clone();
    for retry in 0..3u32 {
        match try_optimize(sb, &cfg, machine, blacklist, scratch, entry) {
            Ok((mut opt, trace)) => {
                opt.stats.overflow_retries = retry;
                return (opt, trace);
            }
            Err(Overflowed) => {
                if cfg.allow_spec_load_elim || cfg.allow_spec_store_elim {
                    cfg.allow_spec_load_elim = false;
                    cfg.allow_spec_store_elim = false;
                } else {
                    cfg.speculate_reordering = false;
                }
            }
        }
    }
    unreachable!("non-speculative optimization cannot overflow the alias register file")
}

/// Internal marker: the alias register file overflowed; retry with less
/// speculation.
struct Overflowed;

fn try_optimize(
    sb: &Superblock,
    config: &OptConfig,
    machine: &MachineConfig,
    blacklist: &AliasBlacklist,
    scratch: &mut smarq::AllocScratch,
    entry: Option<&smarq::RegState>,
) -> Result<(Optimized, OptTrace), Overflowed> {
    let analysis = AliasAnalysis::new(sb);
    let (mut spec, map) = build_region_spec(sb, &analysis);
    // Nospec taint: which memory ops can touch an unspeculatable range,
    // under the derived address intervals (entry state from the caller's
    // whole-program dataflow, or ⊤ when none is available).
    let taint = if config.nospec.is_empty() {
        vec![false; sb.ops.len()]
    } else {
        let ranges = match entry {
            Some(e) => smarq_ir::analyze_superblock(sb, e),
            None => smarq_ir::analyze_superblock_top(sb),
        };
        smarq_ir::nospec_taint(sb, &ranges, &config.nospec)
    };
    for (i, &t) in taint.iter().enumerate() {
        if t {
            if let Some(id) = map.mem_id(i) {
                spec.set_nospec(id);
            }
        }
    }
    let mut elims =
        elim::run_eliminations(sb, &analysis, &mut spec, &map, config, blacklist, &taint);
    elim::dce(sb, &mut elims);
    let deps = DepGraph::compute(&spec);
    let work = dag::build_work_list(sb, &elims);
    let graph = dag::build_dag(sb, &analysis, &work, config, machine, blacklist, &taint);
    let sched_start = std::time::Instant::now();
    // On overflow the scratch is dropped inside the allocator; leave the
    // caller's slot holding a fresh (empty) one.
    let sched = match sched::schedule_with_scratch(
        &work,
        &graph,
        config,
        machine,
        &spec,
        &deps,
        &map,
        std::mem::take(scratch),
    ) {
        Ok((res, s)) => {
            *scratch = s;
            res
        }
        Err(_) => return Err(Overflowed),
    };
    let sched_ns = sched_start.elapsed().as_nanos() as u64;
    if config.hw == smarq_vliw::HwKind::Efficeon {
        if let Some(alloc) = &sched.allocation {
            if alloc.stats().amovs > 0 {
                // The bit-mask file has no AMOV: a cyclic constraint graph
                // cannot be realized. Retry with less speculation (the
                // cycles come from speculative eliminations).
                return Err(Overflowed);
            }
        }
    }
    let vliw = emit::emit(sb, &analysis, &work, &sched, config, machine, &map);

    let mut stats = OptStats {
        ir_ops: sb.ops.len(),
        mem_ops: map.len(),
        spec_load_elims: elims.spec_load_elims,
        spec_store_elims: elims.spec_store_elims,
        nonspec_elims: elims.nonspec_elims,
        scheduled_mem_ops: sched
            .linear
            .iter()
            .filter(|&&k| work.ops[k].is_mem())
            .count(),
        sched_ns,
        ..OptStats::default()
    };
    // Surviving memory operations in final scheduled order (eliminated
    // loads appear as copies in the work list; their original memory ids
    // must not be resurrected here).
    let mem_sched: Vec<_> = sched
        .linear
        .iter()
        .filter(|&&k| work.ops[k].is_mem())
        .filter_map(|&k| map.mem_id(work.orig[k]))
        .collect();
    if let Some(alloc) = &sched.allocation {
        let s = alloc.stats();
        stats.checks = s.checks;
        stats.antis = s.antis;
        stats.amovs = s.amovs;
        stats.amov_moves = s.amov_moves;
        stats.p_ops = s.p_ops;
        stats.working_set = alloc.working_set();
        stats.lower_bound = smarq::live_range_lower_bound(&spec, &deps, &mem_sched);
    }

    // Memory-op tags are MemOpId indices; map them back to guest origins.
    let mem_origin: Vec<usize> = (0..map.len())
        .map(|k| map.op_index(smarq::MemOpId::new(k)))
        .collect();
    let tag_origin: Vec<OpOrigin> = mem_origin.iter().map(|&i| sb.origins[i]).collect();

    Ok((
        Optimized {
            vliw,
            stats,
            tag_origin,
        },
        OptTrace {
            spec,
            deps,
            mem_schedule: mem_sched,
            allocation: sched.allocation,
            mem_origin,
        },
    ))
}
