//! Annotation and VLIW code emission.
//!
//! Turns the scheduled linear operation order into annotated, bundled
//! VLIW code:
//!
//! * **SMARQ targets**: every memory operation receives its P/C bits and
//!   register offset from the [`Allocation`]; the allocator's `AMOV`s are
//!   inserted immediately before and its rotations immediately after the
//!   memory operation they belong to.
//! * **ALAT targets**: every load that ended up hoisted above a may-alias
//!   store becomes an *advanced load* (`AlatSet`); its entry is released
//!   (`AlatClear`) right after the last store that had to check it —
//!   stores scheduled in between suffer the scheme's false positives.
//! * Bundling is greedy in-order: an op joins the current bundle while a
//!   slot of its class is free and none of its sources are defined within
//!   the bundle.

use crate::config::OptConfig;
use crate::dag::WorkList;
use crate::sched::ScheduleResult;
use smarq::alloc::{AliasCode, Allocation, AmovInsn};
use smarq_ir::{AliasAnalysis, AliasRel, IrOp, RegionMap, Superblock};
use smarq_vliw::{
    AliasAnnot, Bundle, CondExit, ExitTarget, HwKind, MachineConfig, VliwOp, VliwProgram,
};

#[derive(Default)]
struct SmarqGroup {
    amovs: Vec<AmovInsn>,
    annot: Option<(bool, bool, u32)>,
    rotates: Vec<u32>,
}

fn smarq_groups(alloc: &Allocation) -> Vec<SmarqGroup> {
    let mut groups: Vec<SmarqGroup> = Vec::new();
    let mut pending: Vec<AmovInsn> = Vec::new();
    for c in alloc.code() {
        match *c {
            AliasCode::Amov(a) => pending.push(a),
            AliasCode::Op {
                p_bit,
                c_bit,
                offset,
                ..
            } => {
                groups.push(SmarqGroup {
                    amovs: std::mem::take(&mut pending),
                    annot: offset.map(|o| (p_bit, c_bit, o.value())),
                    rotates: Vec::new(),
                });
            }
            AliasCode::Rotate(r) => {
                groups
                    .last_mut()
                    .expect("rotation always follows a memory op")
                    .rotates
                    .push(r.amount);
            }
        }
    }
    groups
}

/// Efficeon annotation plan: a physical bit-mask register per checked op
/// (assigned by linear scan over its live range) and the exact check mask
/// per checking op, both derived from the ordered-queue allocation's final
/// check pairs.
struct EfficeonPlan {
    /// Register set by each work op, if it must be checked.
    set_reg: Vec<Option<u8>>,
    /// Check mask carried by each work op.
    check_mask: Vec<u64>,
}

fn efficeon_plan(
    alloc: &Allocation,
    work: &WorkList,
    linear: &[usize],
    map: &RegionMap,
    num_regs: u32,
) -> EfficeonPlan {
    let n = work.ops.len();
    let mut pos = vec![usize::MAX; n];
    for (p, &k) in linear.iter().enumerate() {
        pos[k] = p;
    }
    // Work index of a region memory op.
    let mut work_of_mem = vec![usize::MAX; map.len()];
    for (k, &orig) in work.orig.iter().enumerate() {
        if let Some(id) = map.mem_id(orig) {
            if work.ops[k].is_mem() {
                work_of_mem[id.index()] = k;
            }
        }
    }

    // Live range of each checked op: [its position, last checker position].
    let mut range_end = vec![0usize; n];
    let mut checked = vec![false; n];
    let mut checkees_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(checker, checkee) in alloc.final_checks() {
        let (cw, pw) = (work_of_mem[checker.index()], work_of_mem[checkee.index()]);
        debug_assert!(cw != usize::MAX && pw != usize::MAX);
        checked[pw] = true;
        range_end[pw] = range_end[pw].max(pos[cw]);
        checkees_of[cw].push(pw);
    }

    // Linear scan in schedule order: assign the lowest free register at
    // each set point, releasing registers whose last checker has passed.
    // The ordered-queue working set bounds the maximum overlap, so at most
    // `num_regs` registers are ever live.
    let mut set_reg = vec![None; n];
    let mut free: Vec<u8> = (0..num_regs as u8).rev().collect();
    let mut active: Vec<(usize, usize, u8)> = Vec::new(); // (end, op, reg)
    for &k in linear {
        active.retain(|&(end, _, reg)| {
            if end < pos[k] {
                free.push(reg);
                false
            } else {
                true
            }
        });
        if checked[k] {
            let reg = free
                .pop()
                .expect("live check ranges bounded by the queue working set");
            set_reg[k] = Some(reg);
            active.push((range_end[k], k, reg));
        }
    }

    // Masks: each checker checks exactly its checkees' registers.
    let mut check_mask = vec![0u64; n];
    for (cw, checkees) in checkees_of.iter().enumerate() {
        for &pw in checkees {
            let reg = set_reg[pw].expect("checked op has a register");
            check_mask[cw] |= 1 << reg;
        }
    }
    EfficeonPlan {
        set_reg,
        check_mask,
    }
}

/// ALAT annotation plan: advanced-load entries and the stores after which
/// each entry is released.
struct AlatPlan {
    set_entry: Vec<Option<u32>>,
    clear_after: Vec<Vec<u32>>,
}

fn alat_plan(analysis: &AliasAnalysis, work: &WorkList, linear: &[usize]) -> AlatPlan {
    let n = work.ops.len();
    let mut pos = vec![usize::MAX; n];
    for (p, &k) in linear.iter().enumerate() {
        pos[k] = p;
    }
    let mut set_entry = vec![None; n];
    let mut clear_after = vec![Vec::new(); n];
    let mut next_entry = 0u32;
    for l in 0..n {
        if !work.ops[l].is_mem() || work.ops[l].is_store() {
            continue;
        }
        // Stores this load was hoisted above (detection required).
        let mut last_checker: Option<usize> = None;
        for s in 0..l {
            if !work.ops[s].is_store() {
                continue;
            }
            if analysis.relation(work.orig[s], work.orig[l]) == AliasRel::May && pos[s] > pos[l] {
                last_checker = match last_checker {
                    Some(prev) if pos[prev] >= pos[s] => Some(prev),
                    _ => Some(s),
                };
            }
        }
        if let Some(s) = last_checker {
            let entry = next_entry;
            next_entry += 1;
            set_entry[l] = Some(entry);
            clear_after[s].push(entry);
        }
    }
    AlatPlan {
        set_entry,
        clear_after,
    }
}

fn translate(op: &IrOp, alias: AliasAnnot, tag: u32) -> VliwOp {
    match *op {
        IrOp::IConst { rd, value } => VliwOp::IConst { rd, value },
        IrOp::Alu { op, rd, ra, rb } => VliwOp::Alu { op, rd, ra, rb },
        IrOp::AluImm { op, rd, ra, imm } => VliwOp::AluImm { op, rd, ra, imm },
        IrOp::Copy { rd, ra } => VliwOp::Copy { rd, ra },
        IrOp::FConst { fd, value } => VliwOp::FConst { fd, value },
        IrOp::Fpu { op, fd, fa, fb } => VliwOp::Fpu { op, fd, fa, fb },
        IrOp::FCopy { fd, fa } => VliwOp::FCopy { fd, fa },
        IrOp::ItoF { fd, ra } => VliwOp::ItoF { fd, ra },
        IrOp::FtoI { rd, fa } => VliwOp::FtoI { rd, fa },
        IrOp::Ld { rd, base, disp } => VliwOp::Load {
            rd,
            base,
            disp,
            alias,
            tag,
        },
        IrOp::St { rs, base, disp } => VliwOp::Store {
            rs,
            base,
            disp,
            alias,
            tag,
        },
        IrOp::FLd { fd, base, disp } => VliwOp::FLoad {
            fd,
            base,
            disp,
            alias,
            tag,
        },
        IrOp::FSt { fs, base, disp } => VliwOp::FStore {
            fs,
            base,
            disp,
            alias,
            tag,
        },
        IrOp::Exit { exit_id, cond } => VliwOp::Exit {
            exit_id,
            cond: cond.map(|(op, ra, rb)| CondExit { op, ra, rb }),
        },
    }
}

fn int_sources(op: &VliwOp) -> Vec<u8> {
    match *op {
        VliwOp::Alu { ra, rb, .. } => vec![ra, rb],
        VliwOp::AluImm { ra, .. } | VliwOp::Copy { ra, .. } | VliwOp::ItoF { ra, .. } => vec![ra],
        VliwOp::Load { base, .. } | VliwOp::FLoad { base, .. } | VliwOp::FStore { base, .. } => {
            vec![base]
        }
        VliwOp::Store { rs, base, .. } => vec![rs, base],
        VliwOp::Exit {
            cond: Some(CondExit { ra, rb, .. }),
            ..
        } => vec![ra, rb],
        _ => vec![],
    }
}

fn fp_sources(op: &VliwOp) -> Vec<u8> {
    match *op {
        VliwOp::Fpu { fa, fb, .. } => vec![fa, fb],
        VliwOp::FCopy { fa, .. } | VliwOp::FtoI { fa, .. } => vec![fa],
        VliwOp::FStore { fs, .. } => vec![fs],
        _ => vec![],
    }
}

fn int_def(op: &VliwOp) -> Option<u8> {
    match *op {
        VliwOp::IConst { rd, .. }
        | VliwOp::Alu { rd, .. }
        | VliwOp::AluImm { rd, .. }
        | VliwOp::Copy { rd, .. }
        | VliwOp::FtoI { rd, .. }
        | VliwOp::Load { rd, .. } => Some(rd),
        _ => None,
    }
}

fn fp_def(op: &VliwOp) -> Option<u8> {
    match *op {
        VliwOp::FConst { fd, .. }
        | VliwOp::Fpu { fd, .. }
        | VliwOp::FCopy { fd, .. }
        | VliwOp::ItoF { fd, .. }
        | VliwOp::FLoad { fd, .. } => Some(fd),
        _ => None,
    }
}

/// Greedy in-order bundling for the machine's slot mix.
fn pack(vops: Vec<VliwOp>, machine: &MachineConfig) -> Vec<Bundle> {
    let mut bundles = Vec::new();
    let mut cur = Bundle::default();
    let (mut mem, mut fpu, mut alu) = (machine.mem_slots, machine.fpu_slots, machine.alu_slots);
    let mut int_defs = [false; 64];
    let mut fp_defs = [false; 64];
    for op in vops {
        let slot = match op.slot_class() {
            smarq_vliw::SlotClass::Mem => &mut mem,
            smarq_vliw::SlotClass::Fpu => &mut fpu,
            smarq_vliw::SlotClass::Alu | smarq_vliw::SlotClass::Branch => &mut alu,
        };
        let raw_conflict = int_sources(&op).iter().any(|&r| int_defs[r as usize])
            || fp_sources(&op).iter().any(|&r| fp_defs[r as usize]);
        if *slot == 0 || raw_conflict {
            bundles.push(std::mem::take(&mut cur));
            mem = machine.mem_slots;
            fpu = machine.fpu_slots;
            alu = machine.alu_slots;
            int_defs = [false; 64];
            fp_defs = [false; 64];
            match op.slot_class() {
                smarq_vliw::SlotClass::Mem => mem -= 1,
                smarq_vliw::SlotClass::Fpu => fpu -= 1,
                _ => alu -= 1,
            }
        } else {
            *slot -= 1;
        }
        if let Some(r) = int_def(&op) {
            int_defs[r as usize] = true;
        }
        if let Some(r) = fp_def(&op) {
            fp_defs[r as usize] = true;
        }
        cur.ops.push(op);
    }
    if !cur.ops.is_empty() {
        bundles.push(cur);
    }
    bundles
}

/// Emits the final annotated, bundled region.
pub fn emit(
    sb: &Superblock,
    analysis: &AliasAnalysis,
    work: &WorkList,
    sched: &ScheduleResult,
    config: &OptConfig,
    machine: &MachineConfig,
    map: &RegionMap,
) -> VliwProgram {
    let groups = (config.hw == HwKind::Smarq)
        .then(|| sched.allocation.as_ref().map(smarq_groups))
        .flatten()
        .unwrap_or_default();
    let alat = (config.hw == HwKind::Alat).then(|| alat_plan(analysis, work, &sched.linear));
    let efficeon = (config.hw == HwKind::Efficeon)
        .then(|| {
            sched.allocation.as_ref().map(|alloc| {
                efficeon_plan(
                    alloc,
                    work,
                    &sched.linear,
                    map,
                    config.num_alias_regs.max(1),
                )
            })
        })
        .flatten();

    let mut vops = Vec::with_capacity(sched.linear.len() + groups.len());
    let mut mem_seq = 0usize;
    for &k in &sched.linear {
        let op = &work.ops[k];
        if op.is_mem() {
            let tag = map
                .mem_id(work.orig[k])
                .expect("live memory op has a region id")
                .index() as u32;
            let mut rotates: &[u32] = &[];
            let annot = match config.hw {
                HwKind::Smarq => {
                    let g = &groups[mem_seq];
                    for a in &g.amovs {
                        vops.push(VliwOp::Amov {
                            src: a.src_offset.value(),
                            dst: a.dst_offset.value(),
                        });
                    }
                    rotates = &g.rotates;
                    g.annot
                        .map(|(p, c, offset)| AliasAnnot::Smarq { p, c, offset })
                        .unwrap_or(AliasAnnot::None)
                }
                HwKind::Alat => alat
                    .as_ref()
                    .and_then(|p| p.set_entry[k])
                    .map(|entry| AliasAnnot::AlatSet { entry })
                    .unwrap_or(AliasAnnot::None),
                HwKind::Efficeon => efficeon
                    .as_ref()
                    .map(|p| {
                        let set = p.set_reg[k];
                        let check_mask = p.check_mask[k];
                        if set.is_none() && check_mask == 0 {
                            AliasAnnot::None
                        } else {
                            AliasAnnot::Efficeon { set, check_mask }
                        }
                    })
                    .unwrap_or(AliasAnnot::None),
                _ => AliasAnnot::None,
            };
            vops.push(translate(op, annot, tag));
            for &amount in rotates {
                vops.push(VliwOp::Rotate { amount });
            }
            if let Some(plan) = &alat {
                for &entry in &plan.clear_after[k] {
                    vops.push(VliwOp::AlatClear { entry });
                }
            }
            mem_seq += 1;
        } else {
            vops.push(translate(op, AliasAnnot::None, 0));
        }
    }

    let exits = sb
        .exits
        .iter()
        .map(|e| ExitTarget {
            guest_block: e.target.map(|b| b.0),
        })
        .collect();

    VliwProgram {
        bundles: pack(vops, machine),
        exits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_respects_slots_and_raw() {
        let m = MachineConfig::default();
        // Three dependent ALU ops: each must start a new bundle.
        let vops = vec![
            VliwOp::IConst { rd: 1, value: 1 },
            VliwOp::AluImm {
                op: smarq_guest::AluOp::Add,
                rd: 2,
                ra: 1,
                imm: 1,
            },
            VliwOp::AluImm {
                op: smarq_guest::AluOp::Add,
                rd: 3,
                ra: 2,
                imm: 1,
            },
        ];
        let bundles = pack(vops, &m);
        assert_eq!(bundles.len(), 3);

        // Independent ops pack together.
        let vops = vec![
            VliwOp::IConst { rd: 1, value: 1 },
            VliwOp::IConst { rd: 2, value: 2 },
            VliwOp::FConst { fd: 1, value: 1.0 },
        ];
        let bundles = pack(vops, &m);
        assert_eq!(bundles.len(), 1);
    }

    #[test]
    fn packing_respects_mem_slot_limit() {
        let m = MachineConfig::default(); // 2 mem slots
        let ld = |rd: u8, base: u8| VliwOp::Load {
            rd,
            base,
            disp: 0,
            alias: AliasAnnot::None,
            tag: 0,
        };
        let vops = vec![ld(1, 10), ld(2, 11), ld(3, 12)];
        let bundles = pack(vops, &m);
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].ops.len(), 2);
    }
}

#[cfg(test)]
mod efficeon_tests {
    use super::*;
    use crate::blacklist::AliasBlacklist;
    use crate::OptConfig;
    use smarq_guest::BlockId;
    use smarq_ir::{IrExit, OpOrigin, Superblock};

    /// Two loads hoisted above a store that may-alias both: the masks must
    /// check exactly the loads' registers, nothing else.
    #[test]
    fn efficeon_masks_are_exact() {
        let mut sb = Superblock {
            ops: vec![
                IrOp::St {
                    rs: 1,
                    base: 2,
                    disp: 0,
                },
                IrOp::Ld {
                    rd: 3,
                    base: 4,
                    disp: 0,
                },
                IrOp::Ld {
                    rd: 5,
                    base: 6,
                    disp: 0,
                },
                IrOp::Exit {
                    exit_id: 0,
                    cond: None,
                },
            ],
            origins: vec![
                OpOrigin {
                    block: BlockId(0),
                    instr: 0,
                },
                OpOrigin {
                    block: BlockId(0),
                    instr: 1,
                },
                OpOrigin {
                    block: BlockId(0),
                    instr: 2,
                },
                OpOrigin::terminator(BlockId(0)),
            ],
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        };
        // Make the loads latency-critical so the scheduler hoists them.
        sb.ops.insert(
            3,
            IrOp::Fpu {
                op: smarq_guest::FpuOp::Mul,
                fd: 1,
                fa: 1,
                fb: 1,
            },
        );
        sb.origins.insert(
            3,
            OpOrigin {
                block: BlockId(0),
                instr: 3,
            },
        );

        let opt = crate::optimize_superblock(
            &sb,
            &OptConfig::efficeon(),
            &MachineConfig::default(),
            &AliasBlacklist::new(),
        );
        let mut set_regs = Vec::new();
        let mut masks = Vec::new();
        for b in &opt.vliw.bundles {
            for op in &b.ops {
                match op {
                    VliwOp::Load {
                        alias: AliasAnnot::Efficeon { set, check_mask },
                        ..
                    } => {
                        assert_eq!(*check_mask, 0, "loads only set here");
                        set_regs.extend(*set);
                    }
                    VliwOp::Store {
                        alias: AliasAnnot::Efficeon { set, check_mask },
                        ..
                    } => {
                        assert!(set.is_none(), "the store sets nothing");
                        masks.push(*check_mask);
                    }
                    VliwOp::Amov { .. } | VliwOp::Rotate { .. } => {
                        panic!("Efficeon code must not contain queue ops")
                    }
                    _ => {}
                }
            }
        }
        // Whichever loads actually hoisted above the store are exactly the
        // registers its mask checks.
        assert!(!set_regs.is_empty(), "at least one load was hoisted");
        assert_eq!(masks.len(), 1);
        let expected: u64 = set_regs.iter().map(|&r| 1u64 << r).sum();
        assert_eq!(masks[0], expected);
    }
}
