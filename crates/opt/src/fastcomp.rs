//! Fast-functional lowering: compiles an emitted VLIW region into a
//! flat, direct-threaded op stream over [`FastState`], executed with no
//! per-cycle scoreboard, issue modeling or bundle bookkeeping.
//!
//! The cycle simulator stays the timing and differential oracle; this
//! tier reproduces only the *architectural* contract of a region run —
//! register/memory effects, guest-visible exit choice and alias-exception
//! outcomes must be bit-exact with `Simulator::run_region_resident` on
//! the same program (the runtime's sampled tier-down and the fuzz
//! oracle's functional-vs-cycle-sim layer both enforce this).
//!
//! Lowering decisions that buy the speedup:
//!
//! * **Flattening**: bundles exist only for issue modeling; ops execute
//!   sequentially in slot order either way, so the fast stream drops
//!   them entirely, along with `Nop` padding and everything after the
//!   first unconditional exit (statically unreachable).
//! * **Fault-free fast path**: a region whose annotations can never
//!   raise an alias exception ([`FastProgram::can_fault`] false) skips
//!   the register checkpoint *and* the store-undo log — commit is a
//!   no-op, stores write through directly.
//! * **Inlined alias queue**: under SMARQ with a hardware-sized file
//!   (≤ 64 registers) the check/set/rotate/AMOV effects run against
//!   [`FastAliasQueue`], a single-`u64` bitmask form of the ordered
//!   queue, instead of the generic `AliasHardware` dispatch.
//!
//! The op stream is a dense enum array rather than boxed host closures:
//! on this workload the indirect call per op costs more than the match
//! dispatch, and the array keeps the whole region in two cache lines.

use smarq_guest::{AluOp, CmpOp, FpuOp, Memory};
use smarq_vliw::{
    AliasAnnot, AliasHardware, AliasViolation, AnyAliasHw, CondExit, FastAliasQueue, FastState,
    HwKind, MemRange, RegionOutcome, RegionStats, RegionWriteMask, SimError, VliwOp, VliwProgram,
};

/// One op of the fast-functional stream — [`VliwOp`] with the padding
/// removed and the exit split by predication so the hot path never
/// matches on an `Option`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FastOp {
    /// `rd = value`.
    IConst {
        /// Destination (integer file).
        rd: u8,
        /// Immediate.
        value: i64,
    },
    /// `rd = ra <op> rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// First source.
        ra: u8,
        /// Second source.
        rb: u8,
    },
    /// `rd = ra <op> imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Source.
        ra: u8,
        /// Immediate.
        imm: i64,
    },
    /// `rd = ra`.
    Copy {
        /// Destination.
        rd: u8,
        /// Source.
        ra: u8,
    },
    /// `fd = value`.
    FConst {
        /// Destination (fp file).
        fd: u8,
        /// Immediate.
        value: f64,
    },
    /// `fd = fa <op> fb`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: u8,
        /// First source.
        fa: u8,
        /// Second source.
        fb: u8,
    },
    /// `fd = fa`.
    FCopy {
        /// Destination.
        fd: u8,
        /// Source.
        fa: u8,
    },
    /// `fd = (f64) ra`.
    ItoF {
        /// Destination.
        fd: u8,
        /// Source.
        ra: u8,
    },
    /// `rd = (i64) fa`.
    FtoI {
        /// Destination.
        rd: u8,
        /// Source.
        fa: u8,
    },
    /// Integer load `rd = mem[base + disp]`.
    Load {
        /// Destination.
        rd: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag.
        tag: u32,
    },
    /// Integer store `mem[base + disp] = rs`.
    Store {
        /// Source.
        rs: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag.
        tag: u32,
    },
    /// FP load `fd = mem[base + disp]`.
    FLoad {
        /// Destination.
        fd: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag.
        tag: u32,
    },
    /// FP store `mem[base + disp] = fs`.
    FStore {
        /// Source.
        fs: u8,
        /// Base register.
        base: u8,
        /// Displacement.
        disp: i64,
        /// Alias-detection annotation.
        alias: AliasAnnot,
        /// Region-local memory-op tag.
        tag: u32,
    },
    /// Invalidate ALAT entry `entry`.
    AlatClear {
        /// Entry index.
        entry: u32,
    },
    /// Rotate the alias register queue.
    Rotate {
        /// Rotation amount.
        amount: u32,
    },
    /// Move alias register contents `src -> dst`.
    Amov {
        /// Source offset.
        src: u32,
        /// Destination offset.
        dst: u32,
    },
    /// Unconditional region exit (always the last op of the stream).
    Exit {
        /// Exit index.
        exit_id: u32,
    },
    /// Conditional side exit, taken when `ra <op> rb` holds.
    ExitIf {
        /// Predicate.
        op: CmpOp,
        /// First compared register.
        ra: u8,
        /// Second compared register.
        rb: u8,
        /// Exit index.
        exit_id: u32,
    },
    /// Fused `AluImm` + `ExitIf`: `rd = <op>(ra, imm)`, then take the
    /// exit when `ca <cmp> cb` holds. This is the induction-variable
    /// update + loop-back check that dominates counted hot loops (once
    /// per iteration in the unrolled body); fusing the adjacent pair at
    /// lowering time halves the per-iteration dispatch overhead. Counts
    /// as two ops in the executed-work stats.
    AluImmExitIf {
        /// ALU operation of the update.
        op: AluOp,
        /// Update destination.
        rd: u8,
        /// Update source.
        ra: u8,
        /// Update immediate.
        imm: i64,
        /// Exit predicate.
        cmp: CmpOp,
        /// First compared register.
        ca: u8,
        /// Second compared register.
        cb: u8,
        /// Exit index.
        exit_id: u32,
    },
    /// `n` back-to-back copies of the same self-updating fused pair:
    /// `rd = <op>(rd, imm); exit if rd <cmp> cb`, repeated. Loop
    /// unrolling emits exactly this shape — identical induction update +
    /// loop-back check per unrolled iteration — and coalescing the run
    /// lets the executor keep the induction value in a host register for
    /// the whole region entry instead of round-tripping it through the
    /// register file once per iteration (the store-to-load chain is what
    /// dominates the plain fused form). Requires `ra == ca == rd` and
    /// `cb != rd`, so the bound is invariant across the run. Counts as
    /// `2 * n` ops in the executed-work stats (2 per iteration).
    AluImmExitIfRep {
        /// ALU operation of the update.
        op: AluOp,
        /// Induction register: update destination, update source and
        /// first compared register all at once.
        rd: u8,
        /// Update immediate.
        imm: i64,
        /// Exit predicate.
        cmp: CmpOp,
        /// Second compared register (invariant bound, never `rd`).
        cb: u8,
        /// Exit index (shared by every copy in the run).
        exit_id: u32,
        /// Repetition count (≥ 2; single pairs stay `AluImmExitIf`).
        n: u16,
    },
}

impl FastOp {
    /// `true` when every register field indexes below `limit`. Debug-only
    /// invariant check backing the executor's masked (unchecked) register
    /// file accesses.
    fn regs_in_range(&self, limit: u8) -> bool {
        match *self {
            FastOp::IConst { rd, .. } => rd < limit,
            FastOp::Alu { rd, ra, rb, .. } => rd < limit && ra < limit && rb < limit,
            FastOp::AluImm { rd, ra, .. } => rd < limit && ra < limit,
            FastOp::Copy { rd, ra } => rd < limit && ra < limit,
            FastOp::FConst { fd, .. } => fd < limit,
            FastOp::Fpu { fd, fa, fb, .. } => fd < limit && fa < limit && fb < limit,
            FastOp::FCopy { fd, fa } => fd < limit && fa < limit,
            FastOp::ItoF { fd, ra } => fd < limit && ra < limit,
            FastOp::FtoI { rd, fa } => rd < limit && fa < limit,
            FastOp::Load { rd, base, .. } => rd < limit && base < limit,
            FastOp::Store { rs, base, .. } => rs < limit && base < limit,
            FastOp::FLoad { fd, base, .. } => fd < limit && base < limit,
            FastOp::FStore { fs, base, .. } => fs < limit && base < limit,
            FastOp::AlatClear { .. }
            | FastOp::Rotate { .. }
            | FastOp::Amov { .. }
            | FastOp::Exit { .. } => true,
            FastOp::ExitIf { ra, rb, .. } => ra < limit && rb < limit,
            FastOp::AluImmExitIf { rd, ra, ca, cb, .. } => {
                rd < limit && ra < limit && ca < limit && cb < limit
            }
            FastOp::AluImmExitIfRep { rd, cb, .. } => rd < limit && cb < limit,
        }
    }
}

/// A region compiled for the fast-functional tier: the flattened op
/// stream plus the two facts the executor needs up front — the write
/// mask (for the masked checkpoint) and whether any op can raise an
/// alias exception at all.
#[derive(Clone, Debug)]
pub struct FastProgram {
    ops: Box<[FastOp]>,
    /// Registers the region may write (drives the masked checkpoint).
    pub write_mask: RegionWriteMask,
    /// `true` when some annotation in the region can raise an alias
    /// exception; `false` regions skip checkpoint and undo logging.
    pub can_fault: bool,
}

impl FastProgram {
    /// The flattened op stream (terminal op is always [`FastOp::Exit`]).
    pub fn ops(&self) -> &[FastOp] {
        &self.ops
    }
}

/// Lowers an emitted region into a [`FastProgram`].
///
/// Validation happens here, once, instead of on every execution: every
/// exit id must be in range and the stream must end in an unconditional
/// exit (the emitter guarantees both for well-formed regions).
///
/// # Errors
/// [`SimError::BadExitId`] for an out-of-range exit,
/// [`SimError::MissingExit`] when control can fall off the end.
pub fn compile(program: &VliwProgram) -> Result<FastProgram, SimError> {
    let mut ops = Vec::with_capacity(program.op_count());
    let mut has_check = false;
    let mut has_store = false;
    let mut has_alat_set = false;
    let mut terminated = false;

    let mut note_annot = |alias: AliasAnnot, is_store: bool| {
        has_store |= is_store;
        match alias {
            AliasAnnot::Smarq { c, .. } => has_check |= c,
            AliasAnnot::Efficeon { check_mask, .. } => has_check |= check_mask != 0,
            AliasAnnot::AlatSet { .. } => has_alat_set = true,
            AliasAnnot::None => {}
        }
    };

    'bundles: for bundle in &program.bundles {
        for op in &bundle.ops {
            match *op {
                VliwOp::Nop => {}
                VliwOp::IConst { rd, value } => ops.push(FastOp::IConst { rd, value }),
                VliwOp::Alu { op, rd, ra, rb } => ops.push(FastOp::Alu { op, rd, ra, rb }),
                VliwOp::AluImm { op, rd, ra, imm } => ops.push(FastOp::AluImm { op, rd, ra, imm }),
                VliwOp::Copy { rd, ra } => ops.push(FastOp::Copy { rd, ra }),
                VliwOp::FConst { fd, value } => ops.push(FastOp::FConst { fd, value }),
                VliwOp::Fpu { op, fd, fa, fb } => ops.push(FastOp::Fpu { op, fd, fa, fb }),
                VliwOp::FCopy { fd, fa } => ops.push(FastOp::FCopy { fd, fa }),
                VliwOp::ItoF { fd, ra } => ops.push(FastOp::ItoF { fd, ra }),
                VliwOp::FtoI { rd, fa } => ops.push(FastOp::FtoI { rd, fa }),
                VliwOp::Load {
                    rd,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    note_annot(alias, false);
                    ops.push(FastOp::Load {
                        rd,
                        base,
                        disp,
                        alias,
                        tag,
                    });
                }
                VliwOp::Store {
                    rs,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    note_annot(alias, true);
                    ops.push(FastOp::Store {
                        rs,
                        base,
                        disp,
                        alias,
                        tag,
                    });
                }
                VliwOp::FLoad {
                    fd,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    note_annot(alias, false);
                    ops.push(FastOp::FLoad {
                        fd,
                        base,
                        disp,
                        alias,
                        tag,
                    });
                }
                VliwOp::FStore {
                    fs,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    note_annot(alias, true);
                    ops.push(FastOp::FStore {
                        fs,
                        base,
                        disp,
                        alias,
                        tag,
                    });
                }
                VliwOp::AlatClear { entry } => ops.push(FastOp::AlatClear { entry }),
                VliwOp::Rotate { amount } => ops.push(FastOp::Rotate { amount }),
                VliwOp::Amov { src, dst } => ops.push(FastOp::Amov { src, dst }),
                VliwOp::Exit { exit_id, cond } => {
                    if exit_id as usize >= program.exits.len() {
                        return Err(SimError::BadExitId { exit_id });
                    }
                    match cond {
                        None => {
                            ops.push(FastOp::Exit { exit_id });
                            terminated = true;
                            break 'bundles;
                        }
                        Some(CondExit { op, ra, rb }) => ops.push(FastOp::ExitIf {
                            op,
                            ra,
                            rb,
                            exit_id,
                        }),
                    }
                }
            }
        }
    }
    if !terminated {
        return Err(SimError::MissingExit);
    }
    // Peephole superinstruction fusion. The stream is straight-line, so
    // any adjacent pair may be fused without reordering concerns; the
    // executor performs the two halves in original order.
    let mut fused: Vec<FastOp> = Vec::with_capacity(ops.len());
    let mut it = ops.into_iter().peekable();
    while let Some(op) = it.next() {
        if let FastOp::AluImm {
            op: alu,
            rd,
            ra,
            imm,
        } = op
        {
            if let Some(&FastOp::ExitIf {
                op: cmp,
                ra: ca,
                rb: cb,
                exit_id,
            }) = it.peek()
            {
                it.next();
                // Second pass of the peephole, applied on the fly: a
                // self-updating fused pair (`ra == ca == rd`, invariant
                // bound) that repeats the previous stream element extends
                // a repetition run instead of appending another copy.
                // Loop unrolling produces exactly such runs.
                if ra == rd && ca == rd && cb != rd {
                    let extends = match fused.last_mut() {
                        Some(&mut FastOp::AluImmExitIfRep {
                            op: p_op,
                            rd: p_rd,
                            imm: p_imm,
                            cmp: p_cmp,
                            cb: p_cb,
                            exit_id: p_exit,
                            ref mut n,
                        }) if p_op == alu
                            && p_rd == rd
                            && p_imm == imm
                            && p_cmp == cmp
                            && p_cb == cb
                            && p_exit == exit_id
                            && *n < u16::MAX =>
                        {
                            *n += 1;
                            true
                        }
                        Some(&mut FastOp::AluImmExitIf {
                            op: p_op,
                            rd: p_rd,
                            ra: p_ra,
                            imm: p_imm,
                            cmp: p_cmp,
                            ca: p_ca,
                            cb: p_cb,
                            exit_id: p_exit,
                        }) if p_op == alu
                            && p_rd == rd
                            && p_ra == rd
                            && p_ca == rd
                            && p_imm == imm
                            && p_cmp == cmp
                            && p_cb == cb
                            && p_exit == exit_id =>
                        {
                            *fused.last_mut().unwrap() = FastOp::AluImmExitIfRep {
                                op: alu,
                                rd,
                                imm,
                                cmp,
                                cb,
                                exit_id,
                                n: 2,
                            };
                            true
                        }
                        _ => false,
                    };
                    if extends {
                        continue;
                    }
                }
                fused.push(FastOp::AluImmExitIf {
                    op: alu,
                    rd,
                    ra,
                    imm,
                    cmp,
                    ca,
                    cb,
                    exit_id,
                });
                continue;
            }
        }
        fused.push(op);
    }
    let ops = fused;
    // The executor masks register indices to the 64-entry files instead
    // of bounds-checking each access; pin the invariant that makes the
    // mask a no-op here, where the op stream is born.
    debug_assert!(
        ops.iter().all(|op| op.regs_in_range(64)),
        "VLIW program references a register >= 64"
    );
    // An ALAT store can fault on any valid entry regardless of its own
    // annotation (false positives are the model's point), so the mere
    // combination of an allocation and a later store makes the region
    // faultable. Coarse (region-level, order-blind) but conservative.
    let can_fault = has_check || (has_alat_set && has_store);
    Ok(FastProgram {
        ops: ops.into_boxed_slice(),
        write_mask: RegionWriteMask::of(program),
        can_fault,
    })
}

/// Register index for the fast tier's fixed 64-entry files. The mask is
/// a no-op for well-formed programs (`compile` debug-asserts every index
/// is in range, and the cycle simulator panics past 64 long before a
/// region reaches this tier); it exists so the optimizer can prove the
/// access in-bounds and drop the per-operand bounds check.
#[inline(always)]
fn ridx(r: u8) -> usize {
    usize::from(r & 63)
}

/// Inner loop of [`FastOp::AluImmExitIfRep`] with the predicate match
/// hoisted out: one tight loop per [`CmpOp`], so each iteration is just
/// the update closure, a compare and a predictable branch. Returns the
/// final induction value and the 1-based iteration whose check fired
/// (`0` when the run completes without exiting).
#[inline(always)]
fn rep_run(mut v: i64, bound: i64, n: u64, upd: impl Fn(i64) -> i64, cmp: CmpOp) -> (i64, u64) {
    macro_rules! tight {
        ($take:expr) => {
            for k in 0..n {
                v = upd(v);
                #[allow(clippy::redundant_closure_call)]
                if $take(v, bound) {
                    return (v, k + 1);
                }
            }
        };
    }
    match cmp {
        CmpOp::Eq => tight!(|a: i64, b: i64| a == b),
        CmpOp::Ne => tight!(|a: i64, b: i64| a != b),
        CmpOp::Lt => tight!(|a: i64, b: i64| a < b),
        CmpOp::Ge => tight!(|a: i64, b: i64| a >= b),
    }
    (v, 0)
}

/// Alias-detection state of the fast tier: the inlined single-word SMARQ
/// queue when the configuration allows it, the generic hardware models
/// otherwise. Bit-exact with the cycle simulator's `AnyAliasHw` either
/// way.
#[derive(Clone, Debug)]
enum QueueImpl {
    /// Inlined bitmask SMARQ queue (≤ 64 registers).
    Inline(FastAliasQueue),
    /// Generic dispatch for Efficeon/ALAT/none or oversized files.
    Generic(AnyAliasHw),
}

/// Executor for [`FastProgram`]s: owns the alias-detection state and
/// runs regions over a resident [`FastState`] with no timing model.
#[derive(Clone, Debug)]
pub struct FastSim {
    queue: QueueImpl,
}

impl FastSim {
    /// Creates an executor for the given hardware scheme, mirroring the
    /// sizing rules of [`AnyAliasHw::for_kind`].
    pub fn new(kind: HwKind, num_regs: u32) -> Self {
        let queue = match kind {
            HwKind::Smarq if num_regs.max(1) <= 64 => {
                QueueImpl::Inline(FastAliasQueue::new(num_regs.max(1)))
            }
            _ => QueueImpl::Generic(AnyAliasHw::for_kind(kind, num_regs)),
        };
        FastSim { queue }
    }

    /// Runs one region entry to completion. Architectural effects
    /// (registers, memory, exit choice, alias-exception outcome and
    /// rollback) are bit-exact with the cycle simulator; the returned
    /// stats report executed work only — `cycles` and `bundles` stay 0
    /// because the fast tier has no timing model.
    pub fn run_region(
        &mut self,
        prog: &FastProgram,
        state: &mut FastState,
        mem: &mut Memory,
    ) -> (RegionOutcome, RegionStats) {
        let mut stats = RegionStats::default();
        // Atomic-region entry: detection state always resets; the
        // register checkpoint and store-undo log only exist on regions
        // that can actually fault.
        if prog.can_fault {
            state.begin_region(prog.write_mask);
        }
        match &mut self.queue {
            QueueImpl::Inline(q) => q.reset(),
            QueueImpl::Generic(hw) => hw.reset(),
        }
        // Executed-op accounting is positional: the stream is
        // straight-line, so the op count at any return is the current
        // index plus one, plus one more per fused pair already passed
        // (`extra`) — no per-op counter increment on the hot path.
        let mut extra = 0u64;
        for (at, op) in prog.ops.iter().enumerate() {
            match *op {
                FastOp::IConst { rd, value } => state.regs[ridx(rd)] = value,
                FastOp::Alu { op, rd, ra, rb } => {
                    state.regs[ridx(rd)] = op.apply(state.regs[ridx(ra)], state.regs[ridx(rb)]);
                }
                FastOp::AluImm { op, rd, ra, imm } => {
                    state.regs[ridx(rd)] = op.apply(state.regs[ridx(ra)], imm);
                }
                FastOp::Copy { rd, ra } => state.regs[ridx(rd)] = state.regs[ridx(ra)],
                FastOp::FConst { fd, value } => state.fregs[ridx(fd)] = value,
                FastOp::Fpu { op, fd, fa, fb } => {
                    state.fregs[ridx(fd)] = op.apply(state.fregs[ridx(fa)], state.fregs[ridx(fb)]);
                }
                FastOp::FCopy { fd, fa } => state.fregs[ridx(fd)] = state.fregs[ridx(fa)],
                FastOp::ItoF { fd, ra } => state.fregs[ridx(fd)] = state.regs[ridx(ra)] as f64,
                FastOp::FtoI { rd, fa } => state.regs[ridx(rd)] = state.fregs[ridx(fa)] as i64,
                FastOp::Load {
                    rd,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    let addr = (state.regs[ridx(base)].wrapping_add(disp)) as u64;
                    stats.mem_ops += 1;
                    if let Err(v) = self.access(alias, addr, true, tag, &mut stats) {
                        stats.ops = at as u64 + 1 + extra;
                        return self.fault(state, mem, v, stats);
                    }
                    state.regs[ridx(rd)] = mem.read(addr) as i64;
                }
                FastOp::FLoad {
                    fd,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    let addr = (state.regs[ridx(base)].wrapping_add(disp)) as u64;
                    stats.mem_ops += 1;
                    if let Err(v) = self.access(alias, addr, true, tag, &mut stats) {
                        stats.ops = at as u64 + 1 + extra;
                        return self.fault(state, mem, v, stats);
                    }
                    state.fregs[ridx(fd)] = mem.read_f64(addr);
                }
                FastOp::Store {
                    rs,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    let addr = (state.regs[ridx(base)].wrapping_add(disp)) as u64;
                    stats.mem_ops += 1;
                    if let Err(v) = self.access(alias, addr, false, tag, &mut stats) {
                        stats.ops = at as u64 + 1 + extra;
                        return self.fault(state, mem, v, stats);
                    }
                    if prog.can_fault {
                        state.log_store(addr, mem.read(addr));
                    }
                    mem.write(addr, state.regs[ridx(rs)] as u64);
                }
                FastOp::FStore {
                    fs,
                    base,
                    disp,
                    alias,
                    tag,
                } => {
                    let addr = (state.regs[ridx(base)].wrapping_add(disp)) as u64;
                    stats.mem_ops += 1;
                    if let Err(v) = self.access(alias, addr, false, tag, &mut stats) {
                        stats.ops = at as u64 + 1 + extra;
                        return self.fault(state, mem, v, stats);
                    }
                    if prog.can_fault {
                        state.log_store(addr, mem.read(addr));
                    }
                    mem.write_f64(addr, state.fregs[ridx(fs)]);
                }
                FastOp::AlatClear { entry } => match &mut self.queue {
                    // SMARQ hardware ignores ALAT entry management.
                    QueueImpl::Inline(_) => {}
                    QueueImpl::Generic(hw) => hw.alat_clear(entry),
                },
                FastOp::Rotate { amount } => match &mut self.queue {
                    QueueImpl::Inline(q) => q.rotate(amount),
                    QueueImpl::Generic(hw) => hw.rotate(amount),
                },
                FastOp::Amov { src, dst } => match &mut self.queue {
                    QueueImpl::Inline(q) => q.amov(src, dst),
                    QueueImpl::Generic(hw) => hw.amov(src, dst),
                },
                FastOp::Exit { exit_id } => {
                    stats.ops = at as u64 + 1 + extra;
                    return (RegionOutcome::Exited { exit_id }, stats);
                }
                FastOp::ExitIf {
                    op,
                    ra,
                    rb,
                    exit_id,
                } => {
                    if op.eval(state.regs[ridx(ra)], state.regs[ridx(rb)]) {
                        stats.ops = at as u64 + 1 + extra;
                        return (RegionOutcome::Exited { exit_id }, stats);
                    }
                }
                FastOp::AluImmExitIf {
                    op,
                    rd,
                    ra,
                    imm,
                    cmp,
                    ca,
                    cb,
                    exit_id,
                } => {
                    let v = op.apply(state.regs[ridx(ra)], imm);
                    state.regs[ridx(rd)] = v;
                    // Forward the just-written value into the check: the
                    // loop-back compare almost always reads the induction
                    // variable, and the register-to-register chain beats
                    // a store-to-load round trip through the file.
                    let a = if ca == rd { v } else { state.regs[ridx(ca)] };
                    if cmp.eval(a, state.regs[ridx(cb)]) {
                        // The fused pair counts as two executed ops.
                        stats.ops = at as u64 + 2 + extra;
                        return (RegionOutcome::Exited { exit_id }, stats);
                    }
                    extra += 1;
                }
                FastOp::AluImmExitIfRep {
                    op,
                    rd,
                    imm,
                    cmp,
                    cb,
                    exit_id,
                    n,
                } => {
                    // The whole run chains through a host-register local;
                    // the register file is touched once on entry and once
                    // on the way out. The bound is invariant by
                    // construction (`cb != rd`, nothing else writes). The
                    // induction updates of real counted loops (add/sub by
                    // an immediate) get their own statically-known update
                    // closure so the tight loop carries no dispatch at all.
                    let v = state.regs[ridx(rd)];
                    let bound = state.regs[ridx(cb)];
                    let reps = u64::from(n);
                    let (v, taken) = match op {
                        AluOp::Add => rep_run(v, bound, reps, |x| x.wrapping_add(imm), cmp),
                        AluOp::Sub => rep_run(v, bound, reps, |x| x.wrapping_sub(imm), cmp),
                        _ => rep_run(v, bound, reps, |x| op.apply(x, imm), cmp),
                    };
                    state.regs[ridx(rd)] = v;
                    if taken != 0 {
                        // `taken` fused pairs executed, two ops each.
                        stats.ops = at as u64 + extra + 2 * taken;
                        return (RegionOutcome::Exited { exit_id }, stats);
                    }
                    extra += 2 * reps - 1;
                }
            }
        }
        unreachable!("compile() guarantees a terminal unconditional exit")
    }

    /// The fast tier's copy of the simulator's `mem_hook`: count the
    /// check, consult the detection state, accumulate the energy proxy.
    #[inline]
    fn access(
        &mut self,
        alias: AliasAnnot,
        addr: u64,
        is_load: bool,
        tag: u32,
        stats: &mut RegionStats,
    ) -> Result<(), AliasViolation> {
        if !matches!(alias, AliasAnnot::None) {
            stats.alias_checks += 1;
        }
        match &mut self.queue {
            QueueImpl::Inline(q) => {
                let AliasAnnot::Smarq { p, c, offset } = alias else {
                    debug_assert!(
                        matches!(alias, AliasAnnot::None),
                        "SMARQ fast queue received a foreign annotation: {alias:?}"
                    );
                    return Ok(());
                };
                let range = MemRange::word(addr);
                if c {
                    stats.entries_scanned += u64::from(q.valid_from(offset));
                    if let Some(producer) = q.check_first(offset, is_load, range) {
                        return Err(AliasViolation {
                            checker_tag: tag,
                            producer_tag: producer,
                        });
                    }
                }
                if p {
                    q.set(offset, range, tag, is_load);
                }
                Ok(())
            }
            QueueImpl::Generic(hw) => {
                let examined = hw.mem_access(alias, MemRange::word(addr), is_load, tag)?;
                stats.entries_scanned += u64::from(examined);
                Ok(())
            }
        }
    }

    /// Alias-exception path: roll architectural state back and reset the
    /// detection state, exactly as the cycle simulator does (minus the
    /// rollback-cycle penalty — no timing model here). Only reachable
    /// from a check, so `can_fault` regions are the only callers and the
    /// checkpoint taken in `run_region` is always live.
    #[inline(never)]
    fn fault(
        &mut self,
        state: &mut FastState,
        mem: &mut Memory,
        v: AliasViolation,
        stats: RegionStats,
    ) -> (RegionOutcome, RegionStats) {
        state.rollback(mem);
        match &mut self.queue {
            QueueImpl::Inline(q) => q.reset(),
            QueueImpl::Generic(hw) => hw.reset(),
        }
        (RegionOutcome::AliasException(v), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_vliw::{Bundle, ExitTarget, MachineConfig, Simulator, VliwState};

    fn exit_targets(n: u32) -> Vec<ExitTarget> {
        (0..n).map(|_| ExitTarget { guest_block: None }).collect()
    }

    fn smarq_annot(p: bool, c: bool, offset: u32) -> AliasAnnot {
        AliasAnnot::Smarq { p, c, offset }
    }

    /// A region with a speculatively hoisted load: the load sets queue
    /// offset 0, the store checks from offset 0 — aliasing iff r1 == r2.
    fn speculative_region() -> VliwProgram {
        VliwProgram {
            bundles: vec![
                Bundle {
                    ops: vec![
                        VliwOp::Load {
                            rd: 10,
                            base: 1,
                            disp: 0,
                            alias: smarq_annot(true, false, 0),
                            tag: 1,
                        },
                        VliwOp::IConst { rd: 11, value: 7 },
                    ],
                },
                Bundle {
                    ops: vec![VliwOp::Store {
                        rs: 11,
                        base: 2,
                        disp: 0,
                        alias: smarq_annot(false, true, 0),
                        tag: 2,
                    }],
                },
                Bundle {
                    ops: vec![
                        VliwOp::Alu {
                            op: AluOp::Add,
                            rd: 12,
                            ra: 10,
                            rb: 11,
                        },
                        VliwOp::Exit {
                            exit_id: 0,
                            cond: None,
                        },
                    ],
                },
            ],
            exits: exit_targets(1),
        }
    }

    type TierRun<S> = (RegionOutcome, RegionStats, S, Memory);

    fn run_both(
        program: &VliwProgram,
        setup: impl Fn(&mut [i64; 64], &mut Memory),
    ) -> (TierRun<VliwState>, TierRun<FastState>) {
        let prog = compile(program).expect("test region compiles");

        let mut sim = Simulator::new(
            MachineConfig::default(),
            AnyAliasHw::for_kind(HwKind::Smarq, 4),
        );
        let mut vstate = VliwState::new();
        let mut vmem = Memory::new();
        setup(&mut vstate.regs, &mut vmem);
        let (vout, vstats) = sim
            .run_region_resident(program, prog.write_mask, &mut vstate, &mut vmem)
            .expect("cycle sim runs");

        let mut fast = FastSim::new(HwKind::Smarq, 4);
        let mut fstate = FastState::new();
        let mut fmem = Memory::new();
        setup(&mut fstate.regs, &mut fmem);
        let (fout, fstats) = fast.run_region(&prog, &mut fstate, &mut fmem);

        ((vout, vstats, vstate, vmem), (fout, fstats, fstate, fmem))
    }

    #[test]
    fn commit_path_matches_cycle_sim_bit_exactly() {
        let program = speculative_region();
        let ((vout, vstats, vstate, vmem), (fout, fstats, fstate, fmem)) =
            run_both(&program, |regs, mem| {
                regs[1] = 0x100;
                regs[2] = 0x200; // disjoint: no alias
                mem.write(0x100, 41);
            });
        assert_eq!(vout, RegionOutcome::Exited { exit_id: 0 });
        assert_eq!(fout, vout);
        assert_eq!(fstate.regs, vstate.regs);
        assert_eq!(fstate.fregs, vstate.fregs);
        assert_eq!(fmem, vmem);
        // Work counters agree; timing exists only on the cycle sim.
        assert_eq!(fstats.ops, vstats.ops);
        assert_eq!(fstats.mem_ops, vstats.mem_ops);
        assert_eq!(fstats.alias_checks, vstats.alias_checks);
        assert_eq!(fstats.entries_scanned, vstats.entries_scanned);
        assert_eq!(fstats.cycles, 0);
        assert!(vstats.cycles > 0);
    }

    #[test]
    fn alias_exception_rolls_back_bit_exactly() {
        let program = speculative_region();
        let ((vout, _, vstate, vmem), (fout, _, fstate, fmem)) = run_both(&program, |regs, mem| {
            regs[1] = 0x100;
            regs[2] = 0x100; // same word: the check fires
            mem.write(0x100, 41);
        });
        assert!(matches!(vout, RegionOutcome::AliasException(_)));
        assert_eq!(fout, vout);
        assert_eq!(fstate.regs, vstate.regs, "rollback restored registers");
        assert_eq!(fmem, vmem, "rollback restored memory");
        assert_eq!(fmem.read(0x100), 41, "store undone");
    }

    #[test]
    fn compile_flattens_and_truncates_after_exit() {
        let mut program = speculative_region();
        // Dead code after the unconditional exit must be dropped.
        program.bundles.push(Bundle {
            ops: vec![VliwOp::IConst { rd: 1, value: 0 }],
        });
        let prog = compile(&program).unwrap();
        assert!(matches!(prog.ops().last(), Some(FastOp::Exit { .. })));
        assert_eq!(prog.ops().len(), program.op_count() - 1);
        assert!(prog.can_fault, "region has a C-bit check");
    }

    #[test]
    fn check_free_regions_are_marked_unfaultable() {
        let program = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![
                    VliwOp::Store {
                        rs: 1,
                        base: 2,
                        disp: 0,
                        alias: smarq_annot(true, false, 0),
                        tag: 1,
                    },
                    VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    },
                ],
            }],
            exits: exit_targets(1),
        };
        let prog = compile(&program).unwrap();
        assert!(!prog.can_fault, "P-only annotations cannot fault");

        // ALAT: an allocation plus a later store can spuriously fault.
        let alat = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![
                    VliwOp::Load {
                        rd: 1,
                        base: 2,
                        disp: 0,
                        alias: AliasAnnot::AlatSet { entry: 0 },
                        tag: 1,
                    },
                    VliwOp::Store {
                        rs: 1,
                        base: 3,
                        disp: 0,
                        alias: AliasAnnot::None,
                        tag: 2,
                    },
                    VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    },
                ],
            }],
            exits: exit_targets(1),
        };
        assert!(compile(&alat).unwrap().can_fault);
    }

    #[test]
    fn compile_rejects_malformed_regions() {
        let no_exit = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![VliwOp::IConst { rd: 1, value: 3 }],
            }],
            exits: exit_targets(1),
        };
        assert!(matches!(compile(&no_exit), Err(SimError::MissingExit)));

        let bad_exit = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![VliwOp::Exit {
                    exit_id: 5,
                    cond: None,
                }],
            }],
            exits: exit_targets(1),
        };
        assert!(matches!(
            compile(&bad_exit),
            Err(SimError::BadExitId { exit_id: 5 })
        ));
    }

    #[test]
    fn adjacent_alu_imm_and_cond_exit_fuse_and_stay_bit_exact() {
        // Induction update followed by the loop-back check — the fusion
        // target — then a second update whose ExitIf is *not* adjacent.
        let program = VliwProgram {
            bundles: vec![
                Bundle {
                    ops: vec![
                        VliwOp::AluImm {
                            op: AluOp::Add,
                            rd: 1,
                            ra: 1,
                            imm: 1,
                        },
                        VliwOp::Exit {
                            exit_id: 1,
                            cond: Some(CondExit {
                                op: CmpOp::Ge,
                                ra: 1,
                                rb: 2,
                            }),
                        },
                    ],
                },
                Bundle {
                    ops: vec![
                        VliwOp::AluImm {
                            op: AluOp::Add,
                            rd: 3,
                            ra: 1,
                            imm: 10,
                        },
                        VliwOp::IConst { rd: 4, value: 9 },
                        VliwOp::Exit {
                            exit_id: 0,
                            cond: None,
                        },
                    ],
                },
            ],
            exits: exit_targets(2),
        };
        let prog = compile(&program).unwrap();
        assert!(
            prog.ops()
                .iter()
                .any(|o| matches!(o, FastOp::AluImmExitIf { .. })),
            "adjacent pair must fuse"
        );
        assert_eq!(prog.ops().len(), program.op_count() - 1);
        // Both polarities of the fused check, bit-exact vs the cycle sim
        // including the executed-op accounting (a fused op counts as 2).
        for r1 in [0i64, 10] {
            let ((vout, vstats, vstate, _), (fout, fstats, fstate, _)) =
                run_both(&program, |regs, _| {
                    regs[1] = r1;
                    regs[2] = 5;
                });
            assert_eq!(fout, vout, "r1={r1}");
            assert_eq!(fstate.regs, vstate.regs);
            assert_eq!(fstats.ops, vstats.ops, "r1={r1}");
        }
    }

    #[test]
    fn identical_fused_runs_coalesce_into_rep_and_stay_bit_exact() {
        // Four copies of the same self-updating induction pair — the
        // shape loop unrolling emits — followed by the terminal exit.
        let pair = |_: u32| {
            vec![
                VliwOp::AluImm {
                    op: AluOp::Add,
                    rd: 1,
                    ra: 1,
                    imm: 3,
                },
                VliwOp::Exit {
                    exit_id: 1,
                    cond: Some(CondExit {
                        op: CmpOp::Ge,
                        ra: 1,
                        rb: 2,
                    }),
                },
            ]
        };
        let program = VliwProgram {
            bundles: (0..4)
                .map(|i| Bundle { ops: pair(i) })
                .chain(std::iter::once(Bundle {
                    ops: vec![VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    }],
                }))
                .collect(),
            exits: exit_targets(2),
        };
        let prog = compile(&program).unwrap();
        assert_eq!(
            prog.ops(),
            &[
                FastOp::AluImmExitIfRep {
                    op: AluOp::Add,
                    rd: 1,
                    imm: 3,
                    cmp: CmpOp::Ge,
                    cb: 2,
                    exit_id: 1,
                    n: 4,
                },
                FastOp::Exit { exit_id: 0 },
            ],
            "the run must coalesce into a single repetition op"
        );
        // Sweep the bound so the run exits after 1..=4 iterations or
        // completes: outcome, registers and the executed-op count must
        // match the cycle simulator at every early-out point.
        for bound in [1i64, 4, 7, 10, 1000] {
            let ((vout, vstats, vstate, _), (fout, fstats, fstate, _)) =
                run_both(&program, |regs, _| {
                    regs[1] = 0;
                    regs[2] = bound;
                });
            assert_eq!(fout, vout, "bound={bound}");
            assert_eq!(fstate.regs, vstate.regs, "bound={bound}");
            assert_eq!(fstats.ops, vstats.ops, "bound={bound}");
        }
    }

    #[test]
    fn near_identical_fused_pairs_do_not_coalesce() {
        // Same update but a different immediate in the second copy: the
        // pairs fuse individually and must *not* join a repetition run.
        let program = VliwProgram {
            bundles: vec![Bundle {
                ops: vec![
                    VliwOp::AluImm {
                        op: AluOp::Add,
                        rd: 1,
                        ra: 1,
                        imm: 1,
                    },
                    VliwOp::Exit {
                        exit_id: 1,
                        cond: Some(CondExit {
                            op: CmpOp::Ge,
                            ra: 1,
                            rb: 2,
                        }),
                    },
                    VliwOp::AluImm {
                        op: AluOp::Add,
                        rd: 1,
                        ra: 1,
                        imm: 2,
                    },
                    VliwOp::Exit {
                        exit_id: 1,
                        cond: Some(CondExit {
                            op: CmpOp::Ge,
                            ra: 1,
                            rb: 2,
                        }),
                    },
                    VliwOp::Exit {
                        exit_id: 0,
                        cond: None,
                    },
                ],
            }],
            exits: exit_targets(2),
        };
        let prog = compile(&program).unwrap();
        assert_eq!(
            prog.ops()
                .iter()
                .filter(|o| matches!(o, FastOp::AluImmExitIf { .. }))
                .count(),
            2,
            "differing immediates must stay separate fused pairs"
        );
        assert!(!prog
            .ops()
            .iter()
            .any(|o| matches!(o, FastOp::AluImmExitIfRep { .. })),);
        let ((vout, vstats, vstate, _), (fout, fstats, fstate, _)) =
            run_both(&program, |regs, _| {
                regs[1] = 0;
                regs[2] = 100;
            });
        assert_eq!(fout, vout);
        assert_eq!(fstate.regs, vstate.regs);
        assert_eq!(fstats.ops, vstats.ops);
    }

    #[test]
    fn conditional_exits_and_queue_management_match() {
        // Rotation + AMOV + a conditional exit, run under both tiers.
        let program = VliwProgram {
            bundles: vec![
                Bundle {
                    ops: vec![VliwOp::Load {
                        rd: 10,
                        base: 1,
                        disp: 0,
                        alias: smarq_annot(true, false, 1),
                        tag: 1,
                    }],
                },
                Bundle {
                    ops: vec![
                        VliwOp::Amov { src: 1, dst: 0 },
                        VliwOp::Rotate { amount: 0 },
                    ],
                },
                Bundle {
                    ops: vec![VliwOp::Exit {
                        exit_id: 1,
                        cond: Some(CondExit {
                            op: CmpOp::Eq,
                            ra: 10,
                            rb: 11,
                        }),
                    }],
                },
                Bundle {
                    ops: vec![
                        VliwOp::Store {
                            rs: 10,
                            base: 2,
                            disp: 0,
                            alias: smarq_annot(false, true, 0),
                            tag: 2,
                        },
                        VliwOp::Exit {
                            exit_id: 0,
                            cond: None,
                        },
                    ],
                },
            ],
            exits: exit_targets(2),
        };
        for (r10, r11) in [(5, 5), (5, 6)] {
            let ((vout, _, vstate, vmem), (fout, _, fstate, fmem)) =
                run_both(&program, |regs, mem| {
                    regs[1] = 0x100;
                    regs[2] = 0x100;
                    regs[10] = r10;
                    regs[11] = r11;
                    mem.write(0x100, r10 as u64);
                });
            assert_eq!(fout, vout, "r10={r10} r11={r11}");
            assert_eq!(fstate.regs, vstate.regs);
            assert_eq!(fmem, vmem);
        }
    }

    /// Table-driven check of [`rep_run`]'s early-out contract at every
    /// rep boundary: the reported iteration is 1-based, `0` means the
    /// run completed, and the returned value reflects exactly the
    /// updates applied up to (and including) the firing check.
    #[test]
    fn rep_run_early_out_table() {
        struct Case {
            name: &'static str,
            v0: i64,
            bound: i64,
            n: u64,
            imm: i64,
            cmp: CmpOp,
            want_v: i64,
            want_taken: u64,
        }
        let cases = [
            Case {
                name: "fires on iteration 1",
                v0: 0,
                bound: 1,
                n: 8,
                imm: 1,
                cmp: CmpOp::Ge,
                want_v: 1,
                want_taken: 1,
            },
            Case {
                name: "fires mid-run",
                v0: 0,
                bound: 5,
                n: 8,
                imm: 1,
                cmp: CmpOp::Ge,
                want_v: 5,
                want_taken: 5,
            },
            Case {
                name: "fires exactly on the last rep",
                v0: 0,
                bound: 8,
                n: 8,
                imm: 1,
                cmp: CmpOp::Ge,
                want_v: 8,
                want_taken: 8,
            },
            Case {
                name: "one past the last rep: completes instead",
                v0: 0,
                bound: 9,
                n: 8,
                imm: 1,
                cmp: CmpOp::Ge,
                want_v: 8,
                want_taken: 0,
            },
            Case {
                name: "never fires",
                v0: 0,
                bound: 1000,
                n: 8,
                imm: 1,
                cmp: CmpOp::Ge,
                want_v: 8,
                want_taken: 0,
            },
            Case {
                name: "single-rep run fires",
                v0: 41,
                bound: 42,
                n: 1,
                imm: 1,
                cmp: CmpOp::Eq,
                want_v: 42,
                want_taken: 1,
            },
            Case {
                name: "single-rep run completes",
                v0: 0,
                bound: 42,
                n: 1,
                imm: 1,
                cmp: CmpOp::Eq,
                want_v: 1,
                want_taken: 0,
            },
            Case {
                name: "Ne fires as soon as the value moves off the bound",
                v0: 7,
                bound: 7,
                n: 8,
                imm: 1,
                cmp: CmpOp::Ne,
                want_v: 8,
                want_taken: 1,
            },
            Case {
                name: "Lt on a descending value fires mid-run",
                v0: 3,
                bound: 0,
                n: 8,
                imm: -1,
                cmp: CmpOp::Lt,
                want_v: -1,
                want_taken: 4,
            },
            Case {
                name: "wrapping update is two's-complement exact",
                v0: i64::MAX,
                bound: i64::MIN,
                n: 4,
                imm: 1,
                cmp: CmpOp::Eq,
                want_v: i64::MIN,
                want_taken: 1,
            },
        ];
        for c in &cases {
            let (v, taken) = rep_run(c.v0, c.bound, c.n, |x| x.wrapping_add(c.imm), c.cmp);
            assert_eq!(v, c.want_v, "{}: final value", c.name);
            assert_eq!(taken, c.want_taken, "{}: exit iteration", c.name);
        }
    }

    /// The executor's rep fast path at every boundary, against the cycle
    /// simulator: a coalesced 6-rep run followed by a second fused pair
    /// on a *different* induction register. Early-outs inside the run,
    /// exactly at its end, and past it (falling through into the next
    /// pair) must agree on outcome, registers and executed-op counts.
    #[test]
    fn rep_boundary_early_outs_match_cycle_sim() {
        let rep_pair = |_: usize| {
            vec![
                VliwOp::AluImm {
                    op: AluOp::Add,
                    rd: 1,
                    ra: 1,
                    imm: 1,
                },
                VliwOp::Exit {
                    exit_id: 1,
                    cond: Some(CondExit {
                        op: CmpOp::Ge,
                        ra: 1,
                        rb: 2,
                    }),
                },
            ]
        };
        let program = VliwProgram {
            bundles: (0..6)
                .map(|i| Bundle { ops: rep_pair(i) })
                .chain([
                    // A second induction on r3 — cannot join the r1 run.
                    Bundle {
                        ops: vec![
                            VliwOp::AluImm {
                                op: AluOp::Add,
                                rd: 3,
                                ra: 3,
                                imm: 1,
                            },
                            VliwOp::Exit {
                                exit_id: 2,
                                cond: Some(CondExit {
                                    op: CmpOp::Ge,
                                    ra: 3,
                                    rb: 2,
                                }),
                            },
                        ],
                    },
                    Bundle {
                        ops: vec![VliwOp::Exit {
                            exit_id: 0,
                            cond: None,
                        }],
                    },
                ])
                .collect(),
            exits: exit_targets(3),
        };
        let prog = compile(&program).unwrap();
        assert!(
            prog.ops()
                .iter()
                .any(|o| matches!(o, FastOp::AluImmExitIfRep { n: 6, .. })),
            "the six identical pairs must coalesce into one run"
        );
        // bound=1..=6: exit at each rep boundary of the run (exit 1).
        // bound=7 with r3 starting at 6: the run completes, the r3 pair
        // fires instead (exit 2). bound=1000: everything falls through
        // to the unconditional exit 0.
        for bound in [1i64, 2, 3, 4, 5, 6, 7, 1000] {
            let ((vout, vstats, vstate, _), (fout, fstats, fstate, _)) =
                run_both(&program, |regs, _| {
                    regs[1] = 0;
                    regs[2] = bound;
                    regs[3] = 6;
                });
            assert_eq!(fout, vout, "bound={bound}: outcome");
            assert_eq!(fstate.regs, vstate.regs, "bound={bound}: registers");
            assert_eq!(fstats.ops, vstats.ops, "bound={bound}: op accounting");
            let expect_exit = match bound {
                1..=6 => 1,
                7 => 2,
                _ => 0,
            };
            assert_eq!(
                fout,
                RegionOutcome::Exited {
                    exit_id: expect_exit
                },
                "bound={bound}: rep-boundary exit routing"
            );
        }
    }
}
