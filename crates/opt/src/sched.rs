//! The list scheduler with the embedded SMARQ alias register allocator
//! (paper §5.3–§5.4: "we embed our alias register allocation within a list
//! scheduling framework so that we can allocate alias registers during the
//! instruction scheduling").

use crate::config::OptConfig;
use crate::dag::{Dag, WorkList};
use smarq::{AllocError, AllocScratch, Allocation, Allocator, DepGraph, RegionSpec, SchedulerMode};
use smarq_ir::{IrOp, RegionMap};
use smarq_vliw::{HwKind, MachineConfig};

/// The scheduling result: a linear operation order plus (for SMARQ
/// targets) the finished alias register allocation.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// Work-list indices in final execution order.
    pub linear: Vec<usize>,
    /// Issue cycle assigned to each scheduled op (same order as `linear`).
    pub cycles: Vec<u64>,
    /// The alias register allocation (SMARQ targets only).
    pub allocation: Option<Allocation>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pool {
    Mem,
    Fpu,
    Alu,
}

fn pool(op: &IrOp) -> Pool {
    match op {
        IrOp::Ld { .. } | IrOp::St { .. } | IrOp::FLd { .. } | IrOp::FSt { .. } => Pool::Mem,
        IrOp::Fpu { .. } | IrOp::FCopy { .. } | IrOp::FConst { .. } => Pool::Fpu,
        _ => Pool::Alu, // including exits, which share the ALU/branch slots
    }
}

/// Schedules the work list.
///
/// Memory operations are fed to the [`Allocator`] in schedule order; its
/// overflow estimate gates further speculation (an op whose placement would
/// cross an unscheduled may-alias memop is deferred while the allocator
/// reports [`SchedulerMode::NonSpeculation`]).
///
/// # Errors
/// Returns the allocator's [`AllocError::Overflow`] when even the
/// deferred placement could not prevent exhausting the register file; the
/// caller retries with less speculation.
#[allow(clippy::too_many_arguments)]
pub fn schedule(
    work: &WorkList,
    dag: &Dag,
    config: &OptConfig,
    machine: &MachineConfig,
    spec: &RegionSpec,
    deps: &DepGraph,
    map: &RegionMap,
) -> Result<ScheduleResult, AllocError> {
    schedule_with_scratch(
        work,
        dag,
        config,
        machine,
        spec,
        deps,
        map,
        AllocScratch::new(),
    )
    .map(|(res, _)| res)
}

/// Like [`schedule`], but recycles (and hands back) the allocator's scratch
/// buffers so a translation loop avoids per-region allocation. The scratch
/// is dropped on error (the caller restarts with a fresh one).
///
/// # Errors
/// Same as [`schedule`].
#[allow(clippy::too_many_arguments)]
pub fn schedule_with_scratch(
    work: &WorkList,
    dag: &Dag,
    config: &OptConfig,
    machine: &MachineConfig,
    spec: &RegionSpec,
    deps: &DepGraph,
    map: &RegionMap,
    scratch: AllocScratch,
) -> Result<(ScheduleResult, AllocScratch), AllocError> {
    let n = work.ops.len();
    let mut unsched_preds: Vec<u32> = dag.hard_preds.iter().map(|p| p.len() as u32).collect();
    let mut est = vec![0u64; n];
    let mut done = vec![false; n];
    let mut linear = Vec::with_capacity(n);
    let mut cycles = Vec::with_capacity(n);
    // The Efficeon target reuses the ordered-queue constraint machinery:
    // its working-set bound also bounds the bit-mask file's live ranges
    // (interval max-overlap <= queue working set), and the final check
    // pairs are exactly what the masks must encode.
    let use_alloc = matches!(config.hw, HwKind::Smarq | HwKind::Efficeon);
    let mut spare = None;
    let mut allocator = if use_alloc {
        Some(Allocator::with_scratch(
            spec,
            deps,
            config.num_alias_regs.max(1),
            scratch,
        ))
    } else {
        spare = Some(scratch);
        None
    };

    let mut remaining = n;
    let mut cycle = 0u64;
    // Candidate order: priority descending, original order as tiebreak.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| dag.priority[b].cmp(&dag.priority[a]).then(a.cmp(&b)));

    // Slack-aware deferral: a memory operation with slack is not hoisted
    // earlier than its latest start time minus the remaining memory-issue
    // resource bound. Hoisting beyond that cannot shorten the schedule but
    // inflates the alias (and architectural) register pressure — exactly
    // the working-set waste SMARQ's rotation is designed to exploit.
    let cp: u64 = dag.priority.iter().copied().max().unwrap_or(0);
    let mut remaining_mem: u64 = work.ops.iter().filter(|o| o.is_mem()).count() as u64;
    let mem_slots_per_cycle = u64::from(machine.mem_slots.max(1));

    while remaining > 0 {
        let mut mem_slots = machine.mem_slots;
        let mut fpu_slots = machine.fpu_slots;
        let mut alu_slots = machine.alu_slots;
        let mut progressed = false;
        for &k in &order {
            if done[k] || unsched_preds[k] != 0 || est[k] > cycle {
                continue;
            }
            let slot = match pool(&work.ops[k]) {
                Pool::Mem => &mut mem_slots,
                Pool::Fpu => &mut fpu_slots,
                Pool::Alu => &mut alu_slots,
            };
            if *slot == 0 {
                continue;
            }
            if work.ops[k].is_mem() {
                let latest_start = cp.saturating_sub(dag.priority[k]);
                let resource_bound = remaining_mem.div_ceil(mem_slots_per_cycle);
                if cycle + resource_bound + 4 < latest_start {
                    continue; // plenty of slack: do not hoist yet
                }
                if let Some(alloc) = &allocator {
                    if alloc.mode() == SchedulerMode::NonSpeculation
                        && dag.spec_before[k].iter().any(|&p| !done[p])
                    {
                        // Register pressure: no new speculation until
                        // rotation has drained the file.
                        continue;
                    }
                }
            }
            // Place the op.
            *slot -= 1;
            done[k] = true;
            remaining -= 1;
            progressed = true;
            linear.push(k);
            cycles.push(cycle);
            if work.ops[k].is_mem() {
                remaining_mem -= 1;
                if let Some(alloc) = &mut allocator {
                    let id = map
                        .mem_id(work.orig[k])
                        .expect("live memory op has a region id");
                    alloc.schedule_op(id)?;
                }
            }
            for &(s, d) in &dag.hard_succs[k] {
                unsched_preds[s] -= 1;
                est[s] = est[s].max(cycle + d);
            }
            if mem_slots == 0 && fpu_slots == 0 && alu_slots == 0 {
                break;
            }
        }
        let _ = progressed;
        cycle += 1;
    }

    let (allocation, scratch) = match allocator {
        Some(a) => {
            let (alloc, scratch) = a.finish_reclaim()?;
            (Some(alloc), scratch)
        }
        None => (None, spare.expect("scratch parked when no allocator")),
    };
    Ok((
        ScheduleResult {
            linear,
            cycles,
            allocation,
        },
        scratch,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blacklist::AliasBlacklist;
    use crate::dag::{build_dag, build_work_list};
    use crate::elim::Eliminations;
    use smarq_guest::BlockId;
    use smarq_ir::{build_region_spec, AliasAnalysis, IrExit, OpOrigin, Superblock};

    fn mk_sb(ops: Vec<IrOp>) -> Superblock {
        let n = ops.len();
        let mut ops = ops;
        ops.push(IrOp::Exit {
            exit_id: 0,
            cond: None,
        });
        Superblock {
            origins: (0..n as u32 + 1)
                .map(|i| OpOrigin {
                    block: BlockId(0),
                    instr: i,
                })
                .collect(),
            ops,
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        }
    }

    fn run(ops: Vec<IrOp>, config: &OptConfig) -> (Superblock, WorkList, ScheduleResult) {
        let sb = mk_sb(ops);
        let analysis = AliasAnalysis::new(&sb);
        let (spec, map) = build_region_spec(&sb, &analysis);
        let deps = smarq::DepGraph::compute(&spec);
        let elims = Eliminations {
            replaced: vec![None; sb.ops.len()],
            removed: vec![false; sb.ops.len()],
            spec_load_elims: 0,
            spec_store_elims: 0,
            nonspec_elims: 0,
        };
        let work = build_work_list(&sb, &elims);
        let dag = build_dag(
            &sb,
            &analysis,
            &work,
            config,
            &MachineConfig::default(),
            &AliasBlacklist::new(),
            &vec![false; sb.ops.len()],
        );
        let res = schedule(
            &work,
            &dag,
            config,
            &MachineConfig::default(),
            &spec,
            &deps,
            &map,
        )
        .unwrap();
        (sb, work, res)
    }

    /// A store followed by a may-alias load whose value feeds a long FP
    /// chain: with speculation the load hoists above the store.
    fn hoist_scenario() -> Vec<IrOp> {
        vec![
            IrOp::St {
                rs: 1,
                base: 2,
                disp: 0,
            },
            IrOp::FLd {
                fd: 1,
                base: 3,
                disp: 0,
            },
            IrOp::Fpu {
                op: smarq_guest::FpuOp::Mul,
                fd: 2,
                fa: 1,
                fb: 1,
            },
            IrOp::FSt {
                fs: 2,
                base: 3,
                disp: 8,
            },
        ]
    }

    #[test]
    fn speculation_hoists_the_load() {
        let (_, work, res) = run(hoist_scenario(), &OptConfig::smarq(64));
        let pos = |k: usize| res.linear.iter().position(|&x| x == k).unwrap();
        assert!(
            pos(1) < pos(0),
            "load should hoist above the may-alias store"
        );
        let alloc = res.allocation.unwrap();
        assert_eq!(alloc.stats().checks, 1);
        assert!(work.ops[1].is_mem());
    }

    #[test]
    fn no_alias_hw_keeps_program_order_for_memops() {
        let (_, _, res) = run(hoist_scenario(), &OptConfig::no_alias_hw());
        let pos = |k: usize| res.linear.iter().position(|&x| x == k).unwrap();
        assert!(pos(0) < pos(1), "no speculation without hardware");
        assert!(res.allocation.is_none());
    }

    #[test]
    fn all_ops_scheduled_exactly_once() {
        let (_, work, res) = run(hoist_scenario(), &OptConfig::smarq(64));
        assert_eq!(res.linear.len(), work.ops.len());
        let mut seen = vec![false; work.ops.len()];
        for &k in &res.linear {
            assert!(!seen[k]);
            seen[k] = true;
        }
        // Exit is last (barrier).
        assert!(work.ops[*res.linear.last().unwrap()].is_exit());
    }

    #[test]
    fn tiny_register_file_still_schedules_via_nonspec_mode() {
        // Many independent hoistable loads against 2 registers: the mode
        // switch must keep the allocator from overflowing.
        let mut ops = Vec::new();
        for i in 0..6 {
            ops.push(IrOp::St {
                rs: 1,
                base: 2,
                disp: i * 8,
            });
            ops.push(IrOp::FLd {
                fd: (i + 1) as u8,
                base: (i + 3) as u8,
                disp: 0,
            });
        }
        let (_, _, res) = run(ops, &OptConfig::smarq(2));
        let alloc = res.allocation.unwrap();
        assert!(alloc.working_set() <= 2);
    }

    #[test]
    fn cycles_are_monotonic() {
        let (_, _, res) = run(hoist_scenario(), &OptConfig::smarq(64));
        for w in res.cycles.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
