//! Scheduling dependence DAG.
//!
//! Hard edges (register RAW/WAR/WAW, must-alias memory dependences, exit
//! barriers) constrain every schedule. May-alias memory dependences are
//! *speculation candidates*: the hardware policy decides whether they are
//! dropped (and detected at runtime) or kept hard. Dropped edges are
//! remembered in [`Dag::spec_before`] so the scheduler can re-impose them
//! while the alias register allocator is in non-speculation mode
//! (paper §5.3).

use crate::blacklist::AliasBlacklist;
use crate::config::OptConfig;
use crate::elim::Eliminations;
use smarq_ir::{AliasAnalysis, AliasRel, IrOp, Superblock};
use smarq_vliw::{HwKind, MachineConfig};

/// The post-elimination operation list the scheduler works on.
#[derive(Clone, Debug)]
pub struct WorkList {
    /// Operations (eliminated loads appear as copies; removed stores are
    /// gone).
    pub ops: Vec<IrOp>,
    /// For each work op: its index in the original superblock.
    pub orig: Vec<usize>,
}

/// Builds the work list from the superblock and the elimination outcome.
pub fn build_work_list(sb: &Superblock, elims: &Eliminations) -> WorkList {
    let mut ops = Vec::with_capacity(sb.ops.len());
    let mut orig = Vec::with_capacity(sb.ops.len());
    for (i, op) in sb.ops.iter().enumerate() {
        if elims.removed[i] {
            continue;
        }
        ops.push(elims.replaced[i].unwrap_or(*op));
        orig.push(i);
    }
    WorkList { ops, orig }
}

/// The dependence DAG. All edges run forward in work-list order.
#[derive(Clone, Debug)]
pub struct Dag {
    /// `(pred, delay)` hard predecessors per node.
    pub hard_preds: Vec<Vec<(usize, u64)>>,
    /// `(succ, delay)` hard successors per node.
    pub hard_succs: Vec<Vec<(usize, u64)>>,
    /// Earlier memory operations this op was allowed to speculate across
    /// (dropped may-alias edges); re-imposed in non-speculation mode.
    pub spec_before: Vec<Vec<usize>>,
    /// Critical-path priority (longest latency chain to a sink).
    pub priority: Vec<u64>,
}

/// Latency of the value an op produces (order-only ops get 1).
pub fn op_latency(op: &IrOp, m: &MachineConfig) -> u64 {
    u64::from(match *op {
        IrOp::Alu { op, .. } | IrOp::AluImm { op, .. } => m.alu_latency(op),
        IrOp::Fpu { op, .. } => m.fpu_latency(op),
        IrOp::Ld { .. } | IrOp::FLd { .. } => m.lat_load,
        _ => m.lat_int,
    })
}

/// Whether the policy lets the schedule drop a may-alias edge between the
/// earlier op `a` and the later op `b` (work-list order).
fn droppable(a: &IrOp, b: &IrOp, config: &OptConfig) -> bool {
    if !config.speculate_reordering {
        return false;
    }
    match config.hw {
        // Both the ordered queue and the exact bit-mask encoding can check
        // any reordered pair, including store-store.
        HwKind::Smarq | HwKind::Efficeon => {
            if a.is_store() && b.is_store() {
                config.allow_store_reorder
            } else {
                true
            }
        }
        // ALAT only supports *advanced loads*: a later load hoisted above
        // an earlier store. Store-store and store-above-load reordering are
        // undetectable (paper §2.3).
        HwKind::Alat => a.is_store() && !b.is_store(),
        HwKind::None => false,
    }
}

/// Builds the DAG over `work`.
///
/// `taint` flags per *superblock* op index the memory operations whose
/// address can touch an unspeculatable range. Every memory pair involving
/// a tainted op is pinned as a hard edge — regardless of the alias
/// relation, and including load/load pairs — so tainted accesses execute
/// in exact program order (MMIO-style side effects make even re-ordered
/// reads unsafe) and never need alias-register bits.
pub fn build_dag(
    sb: &Superblock,
    analysis: &AliasAnalysis,
    work: &WorkList,
    config: &OptConfig,
    machine: &MachineConfig,
    blacklist: &AliasBlacklist,
    taint: &[bool],
) -> Dag {
    let n = work.ops.len();
    let mut hard_preds: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut hard_succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut spec_before: Vec<Vec<usize>> = vec![Vec::new(); n];

    let add = |hp: &mut Vec<Vec<(usize, u64)>>,
               hs: &mut Vec<Vec<(usize, u64)>>,
               src: usize,
               dst: usize,
               delay: u64| {
        debug_assert!(src < dst, "edges must run forward");
        hp[dst].push((src, delay));
        hs[src].push((dst, delay));
    };

    // Register dependences.
    let mut last_def_int: [Option<usize>; 64] = [None; 64];
    let mut last_def_fp: [Option<usize>; 64] = [None; 64];
    let mut uses_int: Vec<Vec<usize>> = vec![Vec::new(); 64];
    let mut uses_fp: Vec<Vec<usize>> = vec![Vec::new(); 64];
    // Exit barriers.
    let mut last_barrier: Option<usize> = None;
    let mut since_barrier: Vec<usize> = Vec::new();

    for k in 0..n {
        let op = &work.ops[k];
        for r in op.int_uses() {
            if let Some(d) = last_def_int[r as usize] {
                let lat = op_latency(&work.ops[d], machine);
                add(&mut hard_preds, &mut hard_succs, d, k, lat);
            }
            uses_int[r as usize].push(k);
        }
        for r in op.fp_uses() {
            if let Some(d) = last_def_fp[r as usize] {
                let lat = op_latency(&work.ops[d], machine);
                add(&mut hard_preds, &mut hard_succs, d, k, lat);
            }
            uses_fp[r as usize].push(k);
        }
        if let Some(rd) = op.int_def() {
            for &u in &uses_int[rd as usize] {
                if u != k {
                    add(&mut hard_preds, &mut hard_succs, u, k, 0); // WAR
                }
            }
            if let Some(d) = last_def_int[rd as usize] {
                add(&mut hard_preds, &mut hard_succs, d, k, 0); // WAW
            }
            last_def_int[rd as usize] = Some(k);
            uses_int[rd as usize].clear();
        }
        if let Some(fd) = op.fp_def() {
            for &u in &uses_fp[fd as usize] {
                if u != k {
                    add(&mut hard_preds, &mut hard_succs, u, k, 0);
                }
            }
            if let Some(d) = last_def_fp[fd as usize] {
                add(&mut hard_preds, &mut hard_succs, d, k, 0);
            }
            last_def_fp[fd as usize] = Some(k);
            uses_fp[fd as usize].clear();
        }

        if op.is_exit() {
            for &p in &since_barrier {
                add(&mut hard_preds, &mut hard_succs, p, k, 0);
            }
            if let Some(b) = last_barrier {
                add(&mut hard_preds, &mut hard_succs, b, k, 0);
            }
            last_barrier = Some(k);
            since_barrier.clear();
        } else {
            if let Some(b) = last_barrier {
                add(&mut hard_preds, &mut hard_succs, b, k, 0);
            }
            since_barrier.push(k);
        }
    }

    // Memory dependences. The ALAT has a bounded entry file (32 on real
    // Itanium): only the first ALAT_CAPACITY loads that could benefit
    // become advanced loads; the rest keep their hard edges.
    const ALAT_CAPACITY: usize = 32;
    let mems: Vec<usize> = (0..n).filter(|&k| work.ops[k].is_mem()).collect();
    let mut alat_advanced: Vec<bool> = vec![false; n];
    if config.hw == HwKind::Alat {
        let mut count = 0usize;
        for &l in &mems {
            if work.ops[l].is_store() || taint[work.orig[l]] {
                continue; // tainted loads never advance
            }
            let wants = mems.iter().any(|&s| {
                s < l
                    && work.ops[s].is_store()
                    && analysis.relation(work.orig[s], work.orig[l]) == AliasRel::May
            });
            if wants && count < ALAT_CAPACITY {
                alat_advanced[l] = true;
                count += 1;
            }
        }
    }
    for (ai, &a) in mems.iter().enumerate() {
        for &b in &mems[ai + 1..] {
            let (oa, ob) = (work.orig[a], work.orig[b]);
            if taint[oa] || taint[ob] {
                // Unspeculatable: exact program order vs every memory op.
                add(&mut hard_preds, &mut hard_succs, a, b, 0);
                continue;
            }
            let one_store = work.ops[a].is_store() || work.ops[b].is_store();
            if !one_store {
                continue;
            }
            match analysis.relation(oa, ob) {
                AliasRel::No => {}
                AliasRel::Must => add(&mut hard_preds, &mut hard_succs, a, b, 0),
                AliasRel::May => {
                    let pinned = blacklist.contains(sb.origins[oa], sb.origins[ob])
                        || (config.hw == HwKind::Alat
                            && (!alat_advanced[b]
                                || blacklist.involves(sb.origins[oa])
                                || blacklist.involves(sb.origins[ob])));
                    if !pinned && droppable(&work.ops[a], &work.ops[b], config) {
                        spec_before[b].push(a);
                    } else {
                        add(&mut hard_preds, &mut hard_succs, a, b, 0);
                    }
                }
            }
        }
    }

    // Critical-path priorities over hard edges (edges run forward, so a
    // reverse index sweep is a reverse-topological traversal).
    let mut priority = vec![0u64; n];
    for k in (0..n).rev() {
        let own = op_latency(&work.ops[k], machine);
        let best_succ = hard_succs[k]
            .iter()
            .map(|&(s, d)| priority[s] + d)
            .max()
            .unwrap_or(0);
        priority[k] = own + best_succ;
    }

    Dag {
        hard_preds,
        hard_succs,
        spec_before,
        priority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::BlockId;
    use smarq_ir::{IrExit, OpOrigin};

    fn mk_sb(ops: Vec<IrOp>) -> Superblock {
        let n = ops.len();
        let mut ops = ops;
        ops.push(IrOp::Exit {
            exit_id: 0,
            cond: None,
        });
        Superblock {
            origins: (0..n as u32 + 1)
                .map(|i| OpOrigin {
                    block: BlockId(0),
                    instr: i,
                })
                .collect(),
            ops,
            exits: vec![IrExit { target: None }],
            entry: BlockId(0),
            trace: vec![BlockId(0)],
        }
    }

    fn dag_for(ops: Vec<IrOp>, config: &OptConfig) -> (Superblock, WorkList, Dag) {
        let sb = mk_sb(ops);
        let analysis = AliasAnalysis::new(&sb);
        let elims = Eliminations {
            replaced: vec![None; sb.ops.len()],
            removed: vec![false; sb.ops.len()],
            spec_load_elims: 0,
            spec_store_elims: 0,
            nonspec_elims: 0,
        };
        let work = build_work_list(&sb, &elims);
        let dag = build_dag(
            &sb,
            &analysis,
            &work,
            config,
            &MachineConfig::default(),
            &AliasBlacklist::new(),
            &vec![false; sb.ops.len()],
        );
        (sb, work, dag)
    }

    fn has_edge(dag: &Dag, a: usize, b: usize) -> bool {
        dag.hard_succs[a].iter().any(|&(s, _)| s == b)
    }

    #[test]
    fn raw_war_waw_edges() {
        let (_, _, dag) = dag_for(
            vec![
                IrOp::IConst { rd: 1, value: 1 }, // 0: def r1
                IrOp::AluImm {
                    op: smarq_guest::AluOp::Add,
                    rd: 2,
                    ra: 1,
                    imm: 0,
                }, // 1: use r1, def r2
                IrOp::IConst { rd: 1, value: 2 }, // 2: redef r1 (WAR vs 1, WAW vs 0)
            ],
            &OptConfig::smarq(64),
        );
        assert!(has_edge(&dag, 0, 1)); // RAW
        assert!(has_edge(&dag, 1, 2)); // WAR
        assert!(has_edge(&dag, 0, 2)); // WAW
    }

    #[test]
    fn may_alias_edges_follow_policy() {
        let ops = vec![
            IrOp::St {
                rs: 1,
                base: 2,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 4,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 6,
                disp: 0,
            },
        ];
        // SMARQ: both edges dropped (store-load and store-store).
        let (_, _, d) = dag_for(ops.clone(), &OptConfig::smarq(64));
        assert!(!has_edge(&d, 0, 1));
        assert!(!has_edge(&d, 0, 2));
        assert_eq!(d.spec_before[1], vec![0]);
        assert!(d.spec_before[2].contains(&0));

        // SMARQ without store reorder: store-store stays hard.
        let (_, _, d) = dag_for(ops.clone(), &OptConfig::smarq_no_store_reorder(64));
        assert!(!has_edge(&d, 0, 1));
        assert!(has_edge(&d, 0, 2));

        // ALAT: load-above-store dropped; store-store hard; also the
        // load-then-store pair (1,2) must stay hard (store cannot hoist
        // above a load).
        let (_, _, d) = dag_for(ops.clone(), &OptConfig::alat());
        assert!(!has_edge(&d, 0, 1));
        assert!(has_edge(&d, 0, 2));
        assert!(has_edge(&d, 1, 2));

        // No hardware: everything hard.
        let (_, _, d) = dag_for(ops, &OptConfig::no_alias_hw());
        assert!(has_edge(&d, 0, 1));
        assert!(has_edge(&d, 0, 2));
    }

    #[test]
    fn must_alias_is_always_hard() {
        let (_, _, d) = dag_for(
            vec![
                IrOp::St {
                    rs: 1,
                    base: 2,
                    disp: 0,
                },
                IrOp::Ld {
                    rd: 3,
                    base: 2,
                    disp: 0,
                },
            ],
            &OptConfig::smarq(64),
        );
        assert!(has_edge(&d, 0, 1));
    }

    #[test]
    fn exits_are_barriers() {
        let sb = mk_sb(vec![IrOp::IConst { rd: 1, value: 1 }]);
        // ops: [iconst, exit]; edge iconst -> exit.
        let analysis = AliasAnalysis::new(&sb);
        let elims = Eliminations {
            replaced: vec![None; sb.ops.len()],
            removed: vec![false; sb.ops.len()],
            spec_load_elims: 0,
            spec_store_elims: 0,
            nonspec_elims: 0,
        };
        let work = build_work_list(&sb, &elims);
        let dag = build_dag(
            &sb,
            &analysis,
            &work,
            &OptConfig::smarq(64),
            &MachineConfig::default(),
            &AliasBlacklist::new(),
            &vec![false; sb.ops.len()],
        );
        assert!(has_edge(&dag, 0, 1));
    }

    #[test]
    fn blacklist_pins_pairs_hard() {
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 1,
                base: 2,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 4,
                disp: 0,
            },
        ]);
        let analysis = AliasAnalysis::new(&sb);
        let elims = Eliminations {
            replaced: vec![None; sb.ops.len()],
            removed: vec![false; sb.ops.len()],
            spec_load_elims: 0,
            spec_store_elims: 0,
            nonspec_elims: 0,
        };
        let work = build_work_list(&sb, &elims);
        let mut bl = AliasBlacklist::new();
        bl.insert(sb.origins[0], sb.origins[1]);
        let dag = build_dag(
            &sb,
            &analysis,
            &work,
            &OptConfig::smarq(64),
            &MachineConfig::default(),
            &bl,
            &vec![false; sb.ops.len()],
        );
        assert!(has_edge(&dag, 0, 1));
        assert!(dag.spec_before[1].is_empty());
    }

    #[test]
    fn work_list_applies_eliminations() {
        let sb = mk_sb(vec![
            IrOp::St {
                rs: 2,
                base: 1,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 1,
                disp: 0,
            },
        ]);
        let mut elims = Eliminations {
            replaced: vec![None; sb.ops.len()],
            removed: vec![false; sb.ops.len()],
            spec_load_elims: 0,
            spec_store_elims: 0,
            nonspec_elims: 1,
        };
        elims.replaced[1] = Some(IrOp::Copy { rd: 3, ra: 2 });
        let work = build_work_list(&sb, &elims);
        assert_eq!(work.ops.len(), 3);
        assert_eq!(work.ops[1], IrOp::Copy { rd: 3, ra: 2 });
        assert_eq!(work.orig[1], 1);
    }

    #[test]
    fn tainted_mem_pairs_are_pinned_hard() {
        // ld [r2]; ld [r4]; st [r6] — pairwise may-alias except load/load,
        // which normally carries no edge at all.
        let ops = vec![
            IrOp::Ld {
                rd: 1,
                base: 2,
                disp: 0,
            },
            IrOp::Ld {
                rd: 3,
                base: 4,
                disp: 0,
            },
            IrOp::St {
                rs: 5,
                base: 6,
                disp: 0,
            },
        ];
        let sb = mk_sb(ops);
        let analysis = AliasAnalysis::new(&sb);
        let elims = Eliminations {
            replaced: vec![None; sb.ops.len()],
            removed: vec![false; sb.ops.len()],
            spec_load_elims: 0,
            spec_store_elims: 0,
            nonspec_elims: 0,
        };
        let work = build_work_list(&sb, &elims);
        let mut taint = vec![false; sb.ops.len()];
        taint[1] = true; // the middle load is unspeculatable
        let dag = build_dag(
            &sb,
            &analysis,
            &work,
            &OptConfig::smarq(64),
            &MachineConfig::default(),
            &AliasBlacklist::new(),
            &taint,
        );
        // Tainted load is ordered against BOTH neighbors, including the
        // load/load pair, and nothing involving it is speculated.
        assert!(has_edge(&dag, 0, 1));
        assert!(has_edge(&dag, 1, 2));
        assert!(dag.spec_before[1].is_empty());
        assert!(!dag.spec_before[2].contains(&1));
        // The untainted may-alias pair (0, 2) still speculates.
        assert!(!has_edge(&dag, 0, 2));
        assert!(dag.spec_before[2].contains(&0));
    }

    #[test]
    fn priorities_reflect_latency_chains() {
        let (_, _, dag) = dag_for(
            vec![
                IrOp::Ld {
                    rd: 1,
                    base: 2,
                    disp: 0,
                }, // long chain start
                IrOp::Fpu {
                    op: smarq_guest::FpuOp::Div,
                    fd: 1,
                    fa: 1,
                    fb: 1,
                },
                IrOp::IConst { rd: 9, value: 0 }, // independent
            ],
            &OptConfig::smarq(64),
        );
        assert!(dag.priority[0] > dag.priority[2]);
    }
}
