//! The runtime's alias blacklist.
//!
//! When an alias exception rolls a region back, the runtime records the
//! faulting pair of guest memory operations and re-optimizes the region
//! assuming the pair *always* aliases (paper §1, Figure 1). The blacklist
//! carries that knowledge across re-translations: blacklisted pairs are
//! never speculated on again.

use smarq_ir::OpOrigin;
use std::collections::HashSet;

/// A set of guest memory-operation pairs known to alias at runtime.
#[derive(Clone, Debug, Default)]
pub struct AliasBlacklist {
    pairs: HashSet<(OpOrigin, OpOrigin)>,
    members: HashSet<OpOrigin>,
}

impl AliasBlacklist {
    /// Creates an empty blacklist.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(a: OpOrigin, b: OpOrigin) -> (OpOrigin, OpOrigin) {
        if (a.block, a.instr) <= (b.block, b.instr) {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Records that `a` and `b` aliased at runtime. Returns `false` when
    /// the pair was already known (useful to detect livelock).
    pub fn insert(&mut self, a: OpOrigin, b: OpOrigin) -> bool {
        self.members.insert(a);
        self.members.insert(b);
        self.pairs.insert(Self::key(a, b))
    }

    /// Whether `op` appears in any blacklisted pair. Used by the ALAT
    /// policy: a load involved in a (possibly spurious) exception must stop
    /// being an advanced load altogether — ALAT cannot express "check only
    /// these stores", so the only cure is to stop speculating on that op.
    pub fn involves(&self, op: OpOrigin) -> bool {
        self.members.contains(&op)
    }

    /// Whether the pair is blacklisted.
    pub fn contains(&self, a: OpOrigin, b: OpOrigin) -> bool {
        self.pairs.contains(&Self::key(a, b))
    }

    /// Number of blacklisted pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no pair is blacklisted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::BlockId;

    fn o(b: u32, i: u32) -> OpOrigin {
        OpOrigin {
            block: BlockId(b),
            instr: i,
        }
    }

    #[test]
    fn symmetric_and_deduplicated() {
        let mut bl = AliasBlacklist::new();
        assert!(bl.is_empty());
        assert!(bl.insert(o(1, 2), o(3, 4)));
        assert!(!bl.insert(o(3, 4), o(1, 2)), "same pair, swapped");
        assert!(bl.contains(o(1, 2), o(3, 4)));
        assert!(bl.contains(o(3, 4), o(1, 2)));
        assert!(!bl.contains(o(1, 2), o(1, 3)));
        assert_eq!(bl.len(), 1);
    }
}
