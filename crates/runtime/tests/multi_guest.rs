//! Multi-guest runtime tests: the hub/context split, single-flight
//! translation dedup, cross-guest blacklist/invalidation, and real
//! multi-threaded stress over both the shared [`TranslationHub`] pool and
//! PR7's [`ThreadedExecutor`] (N workers × M guests × corpus programs,
//! bounded queue depth 1 and 8).
//!
//! The load-bearing assertions:
//! * every guest's architectural state is bit-exact vs. the same program
//!   run alone through the pure interpreter, under every scheduler and
//!   queue shape;
//! * the publish ledger balances — after a drain, every claimed
//!   translation is accounted exactly once
//!   (`started + retranslations == published + publish_conflicts`), i.e.
//!   no lost and no duplicated publishes;
//! * shared-cache mode translates each unique hot region exactly once
//!   across guests (`translations_started` is independent of the guest
//!   count), while private per-guest hubs pay once per guest.

use smarq_guest::{
    AluOp, ArchState, CmpOp, FReg, FpuOp, Interpreter, Program, ProgramBuilder, Reg,
};
use smarq_opt::OptConfig;
use smarq_runtime::{
    hash_program, DynOptSystem, ExecTier, GuestContext, HubConfig, StopReason, SystemConfig,
    TranslationHub,
};
use std::thread;

// ---------------------------------------------------------------- corpus

/// Loop with an in-loop load/store to a fixed address, plus pointer
/// accesses that never truly alias.
fn accumulating_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x2000);
    b.jump(entry, body);
    b.ld(body, Reg(4), Reg(3), 0);
    b.st(body, Reg(4), Reg(5), 0);
    b.ld(body, Reg(6), Reg(5), 8);
    b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
    b.st(body, Reg(4), Reg(3), 0);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

/// Two sequential hot loops plus a cold epilogue: two distinct regions.
fn two_phase_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let loop1 = b.block();
    let mid = b.block();
    let loop2 = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x2000);
    b.jump(entry, loop1);
    b.ld(loop1, Reg(4), Reg(3), 0);
    b.alu(loop1, AluOp::Add, Reg(4), Reg(4), Reg(1));
    b.st(loop1, Reg(4), Reg(3), 0);
    b.alu_imm(loop1, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(loop1, CmpOp::Lt, Reg(1), Reg(2), loop1, mid);
    b.iconst(mid, Reg(1), 0);
    b.jump(mid, loop2);
    b.ld(loop2, Reg(6), Reg(3), 0);
    b.st(loop2, Reg(6), Reg(5), 8);
    b.ld(loop2, Reg(7), Reg(5), 16);
    b.alu_imm(loop2, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(loop2, CmpOp::Lt, Reg(1), Reg(2), loop2, done);
    b.halt(done);
    b.finish(entry)
}

/// Store-shadowed FP loop: heavy speculation, never truly aliasing.
fn store_shadowed_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x2000);
    b.fconst(entry, FReg(3), 1.0001);
    b.jump(entry, body);
    b.fld(body, FReg(1), Reg(5), 0);
    b.fpu(body, FpuOp::Div, FReg(2), FReg(1), FReg(3));
    b.fst(body, FReg(2), Reg(5), 0);
    b.ld(body, Reg(4), Reg(3), 0);
    b.alu(body, AluOp::Mul, Reg(6), Reg(4), Reg(4));
    b.alu(body, AluOp::Mul, Reg(6), Reg(6), Reg(6));
    b.st(body, Reg(6), Reg(3), 8);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

/// Loop whose "unlikely" aliasing pair truly aliases: forces rollbacks,
/// blacklist growth and cross-guest retranslation.
fn truly_aliasing_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x1000); // same address, different register!
    b.jump(entry, body);
    b.st(body, Reg(1), Reg(3), 0);
    b.ld(body, Reg(4), Reg(5), 0);
    b.alu_imm(body, AluOp::Add, Reg(6), Reg(4), 0);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

// ---------------------------------------------------------------- helpers

fn reference_state(p: &Program) -> ArchState {
    let mut i = Interpreter::new();
    i.run(p, u64::MAX);
    i.arch_state()
}

/// Hub config for tests: low hot threshold so short programs translate.
fn hub_config(workers: u32, queue_depth: u32, tier: ExecTier) -> HubConfig {
    let mut sys = SystemConfig::with_opt(OptConfig::smarq(64));
    sys.hot_threshold = 20;
    sys.exec_tier = tier;
    let mut cfg = HubConfig::from_system(&sys);
    cfg.workers = workers;
    cfg.queue_depth = queue_depth;
    cfg
}

/// Asserts the hub's publish ledger balances after a drain: every claimed
/// translation (first or re-) terminated in exactly one publish or one
/// dropped conflict, nothing is left in flight, and every claimed key is
/// now published or abandoned.
fn assert_ledger_balanced(hub: &TranslationHub) {
    let s = hub.stats();
    assert_eq!(s.inflight_keys, 0, "drained hub has no in-flight keys");
    assert_eq!(
        s.translations_started + s.retranslations,
        s.translations_published + s.publish_conflicts,
        "publish ledger must balance: {s:?}"
    );
    assert_eq!(
        s.published_keys + s.abandoned_keys,
        s.translations_started,
        "every claimed key ends published or abandoned: {s:?}"
    );
}

// ------------------------------------------------------------ unit shape

#[test]
fn single_guest_through_hub_matches_interpreter_both_tiers() {
    let p = accumulating_loop(500);
    let expected = reference_state(&p);
    for tier in [ExecTier::CycleSim, ExecTier::Functional] {
        let hub = TranslationHub::new(hub_config(0, 8, tier));
        let mut g = GuestContext::new(0, p.clone(), &hub);
        assert_eq!(g.run_to_completion(&hub, u64::MAX), StopReason::Halted);
        assert_eq!(g.interp().arch_state(), expected, "tier {tier:?}");
        assert!(g.stats().regions_formed >= 1);
        if tier == ExecTier::Functional {
            assert!(g.stats().tier_fast_entries > 0);
        } else {
            assert!(g.stats().vliw_cycles > 0);
        }
        hub.drain();
        assert!(hub.stats().translations_published >= 1);
        assert_ledger_balanced(&hub);
    }
}

#[test]
fn shared_hub_translates_each_region_exactly_once() {
    let p = two_phase_program(400);
    let expected = reference_state(&p);

    // Solo baseline: how many unique regions does one guest claim?
    let solo_hub = TranslationHub::new(hub_config(0, 8, ExecTier::CycleSim));
    let mut solo = GuestContext::new(0, p.clone(), &solo_hub);
    solo.run_to_completion(&solo_hub, u64::MAX);
    let solo_started = solo_hub.stats().translations_started;
    assert!(solo_started >= 2, "both hot loops translate");

    // Six guests, same program, one shared hub: the unique-region count
    // must not grow with the guest count — translate once, run anywhere.
    let hub = TranslationHub::new(hub_config(0, 8, ExecTier::CycleSim));
    let mut guests: Vec<GuestContext> = (0..6)
        .map(|i| GuestContext::new(i, p.clone(), &hub))
        .collect();
    smarq_runtime::run_multi_interleaved(&hub, &mut guests, 0x5eed_1234, u64::MAX);
    for g in &guests {
        assert!(g.halted());
        assert_eq!(g.interp().arch_state(), expected, "guest {}", g.id());
    }
    let s = hub.stats();
    assert_eq!(
        s.translations_started, solo_started,
        "single-flight: translation count is independent of guest count"
    );
    assert!(
        s.probe_hits >= 1,
        "later guests must hit the shared cache instead of translating"
    );
    assert_ledger_balanced(&hub);

    // Private per-guest hubs as the counterfactual: each guest pays the
    // full translation bill itself.
    let mut private_started = 0;
    for i in 0..3 {
        let hub = TranslationHub::new(hub_config(0, 8, ExecTier::CycleSim));
        let mut g = GuestContext::new(i, p.clone(), &hub);
        g.run_to_completion(&hub, u64::MAX);
        assert_eq!(g.interp().arch_state(), expected);
        private_started += hub.stats().translations_started;
    }
    assert_eq!(private_started, 3 * solo_started);
}

#[test]
fn distinct_programs_are_keyed_separately() {
    let pa = accumulating_loop(300);
    let pb = two_phase_program(300);
    assert_ne!(hash_program(&pa), hash_program(&pb));
    let ea = reference_state(&pa);
    let eb = reference_state(&pb);
    let hub = TranslationHub::new(hub_config(0, 8, ExecTier::CycleSim));
    let mut guests = vec![
        GuestContext::new(0, pa.clone(), &hub),
        GuestContext::new(1, pb.clone(), &hub),
        GuestContext::new(2, pa, &hub),
        GuestContext::new(3, pb, &hub),
    ];
    smarq_runtime::run_multi_interleaved(&hub, &mut guests, 0xd157_1234, u64::MAX);
    assert_eq!(guests[0].interp().arch_state(), ea);
    assert_eq!(guests[1].interp().arch_state(), eb);
    assert_eq!(guests[2].interp().arch_state(), ea);
    assert_eq!(guests[3].interp().arch_state(), eb);
    assert_ledger_balanced(&hub);
}

#[test]
fn cross_guest_blacklist_and_invalidation() {
    let p = truly_aliasing_loop(400);
    let expected = reference_state(&p);
    let hub = TranslationHub::new(hub_config(0, 8, ExecTier::CycleSim));
    let mut guests: Vec<GuestContext> = (0..4)
        .map(|i| GuestContext::new(i, p.clone(), &hub))
        .collect();
    smarq_runtime::run_multi_interleaved(&hub, &mut guests, 0xa11a_5eed, u64::MAX);
    for g in &guests {
        assert_eq!(g.interp().arch_state(), expected, "guest {}", g.id());
    }
    let s = hub.stats();
    assert!(s.rollbacks >= 1, "speculation must have faulted");
    assert!(s.blacklist_gen >= 1, "the pair must be blacklisted");
    assert!(s.retranslations >= 1, "the region must retranslate");
    assert!(s.epoch >= 1, "withdrawal must publish an invalidation");
    assert_eq!(s.abandoned_keys, 0, "blacklisting converges, no abandons");
    assert!(
        s.rollbacks < 4 * 64,
        "one guest's blacklist insert must teach the others"
    );
    assert_ledger_balanced(&hub);
}

#[test]
fn interleaved_schedule_replays_from_seed() {
    let p = two_phase_program(300);
    let run = |seed: u64| {
        let hub = TranslationHub::new(hub_config(0, 8, ExecTier::CycleSim));
        let mut guests: Vec<GuestContext> = (0..3)
            .map(|i| GuestContext::new(i, p.clone(), &hub))
            .collect();
        smarq_runtime::run_multi_interleaved(&hub, &mut guests, seed, u64::MAX);
        let states: Vec<ArchState> = guests.iter().map(|g| g.interp().arch_state()).collect();
        (states, hub.stats())
    };
    let (s1, h1) = run(0xfeed_beef);
    let (s2, h2) = run(0xfeed_beef);
    assert_eq!(s1, s2, "same seed, same per-guest states");
    assert_eq!(h1, h2, "same seed, same hub counter trajectory");
}

// ----------------------------------------------------------- stress: hub

#[test]
fn multiguest_threaded_stress_bit_exact_and_ledger() {
    // N hub workers × M guests × corpus programs, queue depth 1 and 8,
    // 4 scheduler threads (CI pins RUST_TEST_THREADS=4 around this).
    let corpus: Vec<Program> = vec![
        accumulating_loop(600),
        two_phase_program(400),
        store_shadowed_loop(500),
        truly_aliasing_loop(400),
    ];
    let expected: Vec<ArchState> = corpus.iter().map(reference_state).collect();
    for depth in [1u32, 8] {
        for tier in [ExecTier::CycleSim, ExecTier::Functional] {
            let hub = TranslationHub::new(hub_config(2, depth, tier));
            let guests: Vec<GuestContext> = (0..8)
                .map(|i| GuestContext::new(i, corpus[i % corpus.len()].clone(), &hub))
                .collect();
            let guests = smarq_runtime::run_multi(&hub, guests, 4, u64::MAX, 256);
            hub.drain();
            for (i, g) in guests.iter().enumerate() {
                assert!(g.halted(), "guest {i} halted (depth {depth}, {tier:?})");
                assert_eq!(
                    g.interp().arch_state(),
                    expected[i % corpus.len()],
                    "guest {i} state (depth {depth}, {tier:?})"
                );
            }
            // The three clean programs contribute 4 unique hot regions
            // (1 + 2 + 1); the aliasing one adds 1. Exactly-once: even
            // with 2 guests per program and real racing, each unique key
            // is claimed at most once. At depth 1 the bounded queue can
            // reject a claim (rolled back, `queue_full` counts it) and a
            // short guest may halt before retrying, so the count is an
            // upper bound there; at depth 8 five jobs never overflow the
            // queue and the count is exact.
            let s = hub.stats();
            assert!(
                s.translations_started <= 5,
                "no unique region is ever claimed twice (depth {depth}, {tier:?}): {s:?}"
            );
            if depth >= 8 {
                assert_eq!(
                    s.translations_started, 5,
                    "each unique region claimed exactly once (depth {depth}, {tier:?}): {s:?}"
                );
            }
            assert_ledger_balanced(&hub);
        }
    }
}

#[test]
fn multiguest_budgeted_runs_stop_and_resume() {
    let p = accumulating_loop(1_000_000);
    let hub = TranslationHub::new(hub_config(0, 8, ExecTier::CycleSim));
    let guests: Vec<GuestContext> = (0..3)
        .map(|i| GuestContext::new(i, p.clone(), &hub))
        .collect();
    let guests = smarq_runtime::run_multi(&hub, guests, 2, 50_000, 64);
    for g in &guests {
        assert!(!g.halted());
        assert!(g.stats().guest_instrs() >= 50_000);
    }
    // Resume to completion.
    let expected = reference_state(&p);
    let guests = smarq_runtime::run_multi(&hub, guests, 2, u64::MAX, 256);
    for g in &guests {
        assert!(g.halted());
        assert_eq!(g.interp().arch_state(), expected);
    }
}

// ----------------------------------- stress: PR7 ThreadedExecutor proper

#[test]
fn threaded_executor_stress_bit_exact_and_publish_ledger() {
    // M concurrent single-guest systems, each with its own N-worker
    // ThreadedExecutor pool, over the corpus at queue depth 1 and 8.
    let corpus: Vec<Program> = vec![
        accumulating_loop(600),
        two_phase_program(400),
        store_shadowed_loop(500),
        truly_aliasing_loop(400),
    ];
    let expected: Vec<ArchState> = corpus.iter().map(reference_state).collect();
    for depth in [1u32, 8] {
        thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let p = corpus[i % corpus.len()].clone();
                    s.spawn(move || {
                        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
                        cfg.hot_threshold = 20;
                        cfg.async_translate = true;
                        cfg.translate_workers = 2;
                        cfg.translate_queue_depth = depth;
                        let mut sys = DynOptSystem::new(p, cfg);
                        sys.run_to_completion(u64::MAX);
                        sys.translation_drain();
                        let state = sys.interp().arch_state();
                        let st = sys.stats().clone();
                        let outstanding = sys.translation_outstanding();
                        (state, st, outstanding)
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let (state, st, outstanding) = h.join().expect("guest thread");
                assert_eq!(state, expected[i % corpus.len()], "guest {i} depth {depth}");
                assert_eq!(outstanding, 0, "drained pipeline");
                assert_eq!(
                    st.async_enqueued,
                    st.async_published + st.async_publish_conflicts,
                    "publish ledger balances for guest {i} depth {depth}"
                );
            }
        });
    }
}
