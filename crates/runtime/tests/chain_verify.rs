//! Integration tests for the whole-chain static analyzer's runtime
//! hookup: unspeculatable address ranges suppressing speculation
//! end-to-end, and chain-boundary verification at link time.

use smarq::range::NospecRanges;
use smarq_guest::{AluOp, CmpOp, Program, ProgramBuilder, Reg};
use smarq_runtime::{DynOptSystem, StopReason, SystemConfig};

/// Counted loop with a store to 0x2000 ahead of a load from 0x1000: the
/// addresses never truly alias, so the optimizer normally hoists the load
/// above the store under alias-register protection.
fn hoistable_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x2000);
    b.jump(entry, body);
    b.st(body, Reg(1), Reg(5), 0);
    b.ld(body, Reg(4), Reg(3), 0);
    b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
    b.st(body, Reg(4), Reg(3), 0);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

fn run(p: Program, cfg: SystemConfig) -> DynOptSystem {
    let mut sys = DynOptSystem::new(p, cfg);
    assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
    sys
}

/// Without nospec ranges the hoisted load speculates (alias entries get
/// scanned); with a range covering the load's address, speculation is
/// provably suppressed — no op carries alias bits, so nothing ever scans.
#[test]
fn nospec_range_suppresses_speculation_end_to_end() {
    let cfg = SystemConfig {
        hot_threshold: 10,
        ..SystemConfig::default()
    };
    let free = run(hoistable_loop(200), cfg);
    assert!(
        free.stats().alias_entries_scanned > 0,
        "baseline must speculate (and therefore scan)"
    );

    let mut cfg = SystemConfig {
        hot_threshold: 10,
        ..SystemConfig::default()
    };
    cfg.nospec_ranges = NospecRanges::parse("0x1000..0x1008").unwrap();
    cfg.verify_translations = true;
    let pinned = run(hoistable_loop(200), cfg);
    assert!(pinned.stats().regions_formed >= 1);
    assert_eq!(
        pinned.stats().alias_entries_scanned,
        0,
        "a tainted load must not be speculated, so nothing checks"
    );
    // Scan the emitted allocations themselves: no scheduled op may carry
    // a P or C bit, and no speculative elimination may have fired.
    for r in &pinned.stats().per_region {
        assert_eq!(r.opt.p_ops, 0, "region {:?} emitted a P bit", r.entry);
        assert_eq!(r.opt.checks, 0, "region {:?} emitted a check", r.entry);
        assert_eq!(
            r.opt.spec_load_elims + r.opt.spec_store_elims,
            0,
            "region {:?} applied a speculative elimination",
            r.entry
        );
    }
    // Architectural result is unchanged: same final accumulator.
    assert_eq!(free.interp().regs[4], pinned.interp().regs[4]);
    // The chain analyzer agrees: fixpoint reached, no nospec violations.
    let report = pinned.analyze_chain().expect("verify mode keeps traces");
    assert!(report.converged);
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code == "nospec-speculation"),
        "{:?}",
        report.diagnostics
    );
}

/// Under verify-on-emit the chained dispatcher proves every memoized
/// region→region hand-off at link time; a correct optimizer produces
/// zero chain errors.
#[test]
fn link_time_chain_checks_run_and_stay_clean() {
    let mut cfg = SystemConfig {
        hot_threshold: 10,
        ..SystemConfig::default()
    };
    cfg.verify_translations = true;
    let sys = run(hoistable_loop(300), cfg);
    let s = sys.stats();
    assert!(s.regions_verified >= 1, "verify-on-emit ran");
    assert_eq!(s.verify_errors, 0);
    assert!(
        s.chain_checks > 0,
        "the self-loop region must memoize a link and get chain-checked"
    );
    assert_eq!(s.chain_errors, 0, "diags: {:?}", s.verify_diagnostics);

    let report = sys.analyze_chain().expect("verify mode keeps traces");
    assert!(report.converged);
    assert_eq!(report.regions, s.regions_formed);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.severity < smarq::Severity::Error),
        "{:?}",
        report.diagnostics
    );
}
