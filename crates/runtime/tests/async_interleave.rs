//! Deterministic schedule-exploration harness for the async translation
//! pipeline.
//!
//! Every test drives a [`DynOptSystem`] whose translations run on a
//! manually stepped [`StepExecutor`]: a job only advances through
//! *queued → computed → released → published* when the driver says so,
//! and publication itself happens at the next dispatch-step boundary of
//! [`DynOptSystem::run_bounded`]. Guest progress and pipeline progress
//! are therefore two independent clocks the tests interleave explicitly —
//! either by systematically sweeping a publish delay, by scripting one
//! exact schedule, or by seeding [`DynOptSystem::run_interleaved`]'s
//! xorshift schedule (replayable from the seed alone, like fuzz corpus
//! entries).
//!
//! Covered race shapes:
//! 1. **install vs chained execution** — a finished region publishes at
//!    every possible dispatch offset while the guest runs/chains through
//!    the affected blocks ([`install_races_chained_execution`]);
//! 2. **deopt vs in-flight retranslation** — the blacklist grows after a
//!    job snapshotted it, forcing a publish-time generation conflict and
//!    resubmission ([`deopt_races_inflight_retranslation`]);
//! 3. **invalidate vs stale run** — a region keeps executing under an
//!    outdated blacklist while the deopt-triggered invalidation and
//!    republish of another region are held in flight
//!    ([`stale_regions_run_while_invalidation_in_flight`]);
//!
//! plus the satellite concurrency tests: chain-unlink racing resident
//! region execution, and double-publish of the same block index.
//!
//! The key program shape is [`two_loop`] with `flip_at = Some(k)`: two
//! hot inner loops whose load/store pairs are clean until outer
//! iteration `k`, then truly alias. Regions form, publish, and chain
//! long before the first fault — so deopts land on a warm, linked
//! region graph with translations in flight, which is exactly the
//! window the races live in.

use smarq_guest::{AluOp, ArchState, BlockId, CmpOp, Interpreter, Program, ProgramBuilder, Reg};
use smarq_opt::OptConfig;
use smarq_runtime::{DynOptSystem, RunStatus, StepExecutor, StopReason, SystemConfig};

// ---------------------------------------------------------------- helpers

fn reference_state(p: &Program) -> ArchState {
    let mut i = Interpreter::new();
    i.run(p, u64::MAX);
    i.arch_state()
}

/// Async config over a manually stepped executor with the given queue
/// depth; `hot_threshold` is lowered so short programs exercise the
/// pipeline.
fn stepped_system(p: &Program, depth: usize) -> DynOptSystem {
    let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
    cfg.hot_threshold = 20;
    cfg.translate_queue_depth = depth as u32;
    DynOptSystem::with_executor(p.clone(), cfg, Box::new(StepExecutor::manual(depth)))
}

/// Advances every in-flight job to released (publication still waits for
/// the next dispatch boundary).
fn pump_all(sys: &mut DynOptSystem) {
    while sys.translation_compute_one() {}
    while sys.translation_release_one() {}
}

/// Runs to halt, completing each translation exactly `delay` dispatch
/// steps after the driver first observes it in flight.
fn run_with_publish_delay(sys: &mut DynOptSystem, delay: u64) {
    let mut wait: Option<u64> = None;
    loop {
        if sys.run_bounded(1, u64::MAX) == RunStatus::Halted {
            return;
        }
        if sys.translation_outstanding() > 0 {
            let w = wait.get_or_insert(delay);
            if *w == 0 {
                pump_all(sys);
                wait = None;
            } else {
                *w -= 1;
            }
        } else {
            wait = None;
        }
    }
}

/// Hot self-loop with a may-alias (never truly aliasing) load/store pair.
fn plain_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let body = b.block();
    let done = b.block();
    b.iconst(entry, Reg(1), 0);
    b.iconst(entry, Reg(2), iters);
    b.iconst(entry, Reg(3), 0x1000);
    b.iconst(entry, Reg(5), 0x2000);
    b.jump(entry, body);
    b.ld(body, Reg(4), Reg(3), 0);
    b.st(body, Reg(4), Reg(5), 0);
    b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
    b.st(body, Reg(4), Reg(3), 0);
    b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
    b.halt(done);
    b.finish(entry)
}

/// Outer loop alternating two hot inner loops (the regions chain
/// region→region); each inner loop carries a may-alias load/store pair.
///
/// * `alias_l1` / `alias_l2` select which pairs ever truly alias.
/// * `flip_at = None`: an aliasing pair collides from the very first
///   iteration.
/// * `flip_at = Some(k)`: the pairs are clean until outer iteration `k`,
///   then the aliasing loops' load addresses flip onto their store
///   addresses — regions form and chain *before* the first deopt.
fn two_loop(
    outer: i64,
    inner: i64,
    alias_l1: bool,
    alias_l2: bool,
    flip_at: Option<i64>,
) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block();
    let a = b.block();
    let l1 = b.block();
    let mid = b.block();
    let l2 = b.block();
    let tail = b.block();
    let done = b.block();
    let aliased_now = |alias: bool| alias && flip_at.is_none();
    b.iconst(entry, Reg(10), 0);
    b.iconst(entry, Reg(11), outer);
    b.iconst(entry, Reg(12), inner);
    b.iconst(entry, Reg(3), 0x1000);
    let r5 = if aliased_now(alias_l1) {
        0x1000
    } else {
        0x2000
    };
    b.iconst(entry, Reg(5), r5);
    b.iconst(entry, Reg(6), 0x3000);
    let r7 = if aliased_now(alias_l2) {
        0x3000
    } else {
        0x4000
    };
    b.iconst(entry, Reg(7), r7);
    if let Some(k) = flip_at {
        b.iconst(entry, Reg(13), k);
    }
    b.jump(entry, a);
    b.iconst(a, Reg(1), 0);
    b.jump(a, l1);
    // L1: store through r3, load through r5 (may-alias pair #1).
    b.st(l1, Reg(1), Reg(3), 0);
    b.ld(l1, Reg(4), Reg(5), 0);
    b.alu_imm(l1, AluOp::Add, Reg(9), Reg(4), 0);
    b.alu_imm(l1, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(l1, CmpOp::Lt, Reg(1), Reg(12), l1, mid);
    b.iconst(mid, Reg(1), 0);
    b.jump(mid, l2);
    // L2: store through r6, load through r7 (may-alias pair #2).
    b.st(l2, Reg(1), Reg(6), 0);
    b.ld(l2, Reg(8), Reg(7), 0);
    b.alu_imm(l2, AluOp::Add, Reg(9), Reg(8), 0);
    b.alu_imm(l2, AluOp::Add, Reg(1), Reg(1), 1);
    b.branch(l2, CmpOp::Lt, Reg(1), Reg(12), l2, tail);
    b.alu_imm(tail, AluOp::Add, Reg(10), Reg(10), 1);
    if flip_at.is_some() {
        let chk = b.block();
        let flip = b.block();
        b.branch(tail, CmpOp::Lt, Reg(10), Reg(11), chk, done);
        b.branch(chk, CmpOp::Eq, Reg(10), Reg(13), flip, a);
        // Flip the selected load addresses onto the store addresses:
        // from this outer iteration on, the pairs truly alias.
        if alias_l1 {
            b.alu_imm(flip, AluOp::Add, Reg(5), Reg(3), 0);
        }
        if alias_l2 {
            b.alu_imm(flip, AluOp::Add, Reg(7), Reg(6), 0);
        }
        b.jump(flip, a);
    } else {
        b.branch(tail, CmpOp::Lt, Reg(10), Reg(11), a, done);
    }
    b.halt(done);
    b.finish(entry)
}

// ---------------------------------------------------- race shape 1 -----

/// Install racing chained execution: the finished region is published at
/// every dispatch offset from 0 to 39 relative to its submission, while
/// the guest is interpreting and (once regions land) chaining through
/// the very blocks being swapped. Every interleaving must be bit-exact
/// and panic-free; prompt publishes must actually install and run
/// regions.
#[test]
fn install_races_chained_execution() {
    for p in [plain_loop(400), two_loop(120, 8, false, false, None)] {
        let expected = reference_state(&p);
        for delay in 0..40 {
            let mut sys = stepped_system(&p, 8);
            run_with_publish_delay(&mut sys, delay);
            assert_eq!(
                sys.interp().arch_state(),
                expected,
                "publish delay {delay} diverged"
            );
            let s = sys.stats();
            if delay == 0 {
                assert!(s.regions_formed >= 1, "prompt publish must install");
                assert!(s.region_entries > 0, "installed regions must run");
            }
            assert_eq!(
                s.async_published,
                s.regions_formed as u64 + s.retranslations as u64,
                "delay {delay}: every publish installed exactly one region"
            );
        }
    }
}

// ---------------------------------------------------- race shape 2 -----

/// Deopt racing an in-flight (re)translation: both inner loops start
/// aliasing on outer iteration 40, long after their regions published
/// and chained. The first fault bumps the blacklist generation and
/// queues a retranslation; the second fault bumps the generation again
/// *while that job is still in flight*. Its snapshot is now stale: at
/// publish it must be rejected as a conflict and resubmitted against
/// the fresh blacklist — and the final state must stay exact, with
/// blacklisting still converging.
#[test]
fn deopt_races_inflight_retranslation() {
    let p = two_loop(150, 8, true, true, Some(40));
    let expected = reference_state(&p);
    let mut sys = stepped_system(&p, 8);

    // Phase 1: publish promptly until both inner-loop regions exist.
    // Aliasing has not started yet, so no faults can have happened.
    let mut guard = 0;
    while sys.stats().regions_formed < 2 {
        assert_ne!(sys.run_bounded(1, u64::MAX), RunStatus::Halted, "too cold");
        pump_all(&mut sys);
        guard += 1;
        assert!(guard < 100_000, "regions never formed");
    }
    assert_eq!(sys.stats().rollbacks, 0, "pre-flip regions must be clean");
    // Phase 2: stop publishing; run until both regions have faulted.
    // The first fault's retranslation is still held in the pipeline when
    // the second fault grows the blacklist past its snapshot.
    while sys.stats().rollbacks < 2 {
        assert_ne!(
            sys.run_bounded(1, u64::MAX),
            RunStatus::Halted,
            "program ended before both regions faulted"
        );
    }
    assert!(
        sys.translation_outstanding() >= 2,
        "both retranslates in flight"
    );
    // Phase 3: release everything. The first retranslation was optimized
    // against the pre-second-fault blacklist generation: publishing it
    // must conflict and resubmit rather than install stale speculation.
    pump_all(&mut sys);
    let before = sys.stats().async_publish_conflicts;
    assert_ne!(sys.run_bounded(1, u64::MAX), RunStatus::Halted);
    assert!(
        sys.stats().async_publish_conflicts > before,
        "stale-generation publish must be rejected"
    );
    // Phase 4: run out normally with prompt publishes.
    run_with_publish_delay(&mut sys, 0);
    assert_eq!(sys.interp().arch_state(), expected);
    let s = sys.stats();
    assert!(
        s.retranslations >= 2,
        "both resubmitted retranslates landed"
    );
    assert!(s.rollbacks >= 2);
    for r in &s.per_region {
        assert!(r.rollbacks < 5, "blacklisting must converge: {r:?}");
    }
}

// ---------------------------------------------------- race shape 3 -----

/// Stale-region execution after invalidation: only L1 flips to aliasing
/// (iteration 40). When it faults, it is unpublished and its
/// conservative retranslation is *held* in the pipeline — while clean
/// region L2, optimized under the now-outdated blacklist generation,
/// keeps executing. Those stale entries are legal (the alias hardware
/// still guards them) but must be counted; the held republish must land
/// afterwards; everything stays exact.
#[test]
fn stale_regions_run_while_invalidation_in_flight() {
    let p = two_loop(150, 8, true, false, Some(40));
    let expected = reference_state(&p);
    let mut sys = stepped_system(&p, 8);

    // Publish promptly until the aliasing region faults (generation
    // bump). L2's region published long before, at generation 0.
    let mut guard = 0;
    while sys.stats().rollbacks < 1 {
        assert_ne!(sys.run_bounded(1, u64::MAX), RunStatus::Halted, "no fault");
        pump_all(&mut sys);
        guard += 1;
        assert!(guard < 100_000);
    }
    let stale_before = sys.stats().async_stale_entries;
    // Hold the retranslate in flight; the clean region keeps running
    // under its old blacklist generation — stale executions.
    for _ in 0..400 {
        if sys.run_bounded(1, u64::MAX) == RunStatus::Halted {
            break;
        }
    }
    assert!(
        sys.stats().async_stale_entries > stale_before,
        "the clean region must have run stale while the fix was in flight"
    );
    // Release the held retranslation and finish.
    run_with_publish_delay(&mut sys, 0);
    assert_eq!(sys.interp().arch_state(), expected);
    assert!(sys.stats().retranslations >= 1, "the held republish landed");
}

// ------------------------------------------- satellite: unlink race ----

/// `unlink_into` racing resident chained execution: by iteration 40 the
/// regions are published and chained region→region; the deopt then
/// severs every link into the faulting region while the guest is
/// mid-chain through the linked graph, at every schedule offset the
/// sweep reaches. A stale link followed into unpublished code would
/// execute known-wrong speculation or re-fault forever; instead every
/// offset must stay exact, must actually unlink, and must converge.
#[test]
fn unlink_races_resident_chained_execution() {
    let p = two_loop(150, 8, true, true, Some(40));
    let expected = reference_state(&p);
    for delay in 0..24 {
        let mut sys = stepped_system(&p, 8);
        run_with_publish_delay(&mut sys, delay);
        assert_eq!(
            sys.interp().arch_state(),
            expected,
            "unlink offset {delay} diverged"
        );
        let s = sys.stats();
        assert!(s.rollbacks >= 1, "offset {delay}: the flip must deopt");
        assert!(
            s.chain_unlinks >= 1,
            "offset {delay}: the deopt must sever links into the region"
        );
    }
}

// --------------------------------------- satellite: double publish -----

/// Double-publish of the same block index: two independent translation
/// jobs for the same entry block are forced in flight (the second via
/// the debug hook that bypasses pending-job dedup). The first result to
/// publish installs the region; the second must be rejected as a publish
/// conflict, not installed as a duplicate.
#[test]
fn double_publish_of_same_block_is_rejected() {
    let p = plain_loop(400);
    let expected = reference_state(&p);
    let mut sys = stepped_system(&p, 8);
    // Run until the hot trigger submits the natural job.
    let mut guard = 0;
    while sys.translation_outstanding() == 0 {
        assert_ne!(sys.run_bounded(1, u64::MAX), RunStatus::Halted, "too cold");
        guard += 1;
        assert!(guard < 100_000);
    }
    // Force a duplicate job for the same hot entry block.
    sys.debug_submit_translate(BlockId(1));
    assert_eq!(sys.translation_outstanding(), 2);
    pump_all(&mut sys);
    assert_ne!(sys.run_bounded(1, u64::MAX), RunStatus::Halted);
    let s = sys.stats();
    assert_eq!(s.regions_formed, 1, "exactly one install for the block");
    assert_eq!(s.async_publish_conflicts, 1, "the duplicate was rejected");
    run_with_publish_delay(&mut sys, 0);
    assert_eq!(sys.interp().arch_state(), expected);
}

// ------------------------------------------------ seeded schedules -----

/// Seeded random schedule sweep: `run_interleaved` permutes guest steps
/// against pipeline compute/release steps from a xorshift schedule. All
/// seeds must be bit-exact; across the sweep the interesting pipeline
/// events must actually occur (publishes, faults, retranslations).
#[test]
fn seeded_schedule_sweep_is_bit_exact() {
    let programs = [
        ("plain", plain_loop(400)),
        ("alias_both", two_loop(120, 8, true, true, None)),
        ("alias_flip", two_loop(120, 8, true, true, Some(40))),
        ("alias_half", two_loop(120, 8, true, false, None)),
    ];
    for (name, p) in &programs {
        let expected = reference_state(p);
        let mut published = 0u64;
        let mut rollbacks = 0u64;
        let mut retranslations = 0usize;
        for seed in (0..32u64).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)) {
            let mut sys = stepped_system(p, 2);
            assert_eq!(
                sys.run_interleaved(seed, u64::MAX),
                StopReason::Halted,
                "{name}: seed {seed:#x} did not halt"
            );
            assert_eq!(
                sys.interp().arch_state(),
                expected,
                "{name}: seed {seed:#x} diverged"
            );
            let s = sys.stats();
            published += s.async_published;
            rollbacks += s.rollbacks;
            retranslations += s.retranslations;
        }
        assert!(published > 0, "{name}: no schedule ever published");
        if name.starts_with("alias") {
            assert!(rollbacks > 0, "{name}: no schedule ever faulted");
            assert!(retranslations > 0, "{name}: no schedule ever republished");
        }
    }
}

/// Replayability: the same seed reproduces the exact same schedule —
/// identical final state *and* identical pipeline/dispatch counters.
/// Different seeds genuinely produce different schedules.
#[test]
fn schedules_replay_exactly_from_their_seed() {
    let p = two_loop(120, 8, true, true, Some(40));
    let fingerprint = |seed: u64| {
        let mut sys = stepped_system(&p, 2);
        assert_eq!(sys.run_interleaved(seed, u64::MAX), StopReason::Halted);
        let s = sys.stats();
        (
            sys.interp().arch_state(),
            s.interp_instrs,
            s.region_entries,
            s.async_enqueued,
            s.async_published,
            s.async_publish_conflicts,
            s.async_stale_entries,
            s.rollbacks,
            s.chain_unlinks,
        )
    };
    let seeds = [3u64, 0xdead_beef, 0x1234_5678_9abc_def0];
    let mut distinct = std::collections::HashSet::new();
    for seed in seeds {
        let a = fingerprint(seed);
        let b = fingerprint(seed);
        assert_eq!(a, b, "seed {seed:#x} must replay identically");
        // Architectural state is seed-invariant; the schedule is not.
        distinct.insert((a.1, a.2, a.3, a.4));
    }
    assert!(
        distinct.len() > 1,
        "different seeds must explore different schedules"
    );
}

/// Queue depth 1 maximizes contention: with several hot blocks, submits
/// bounce off the full queue and retry on a later dispatch of the same
/// block. Still exact, and the backpressure is visible in the counters.
#[test]
fn depth_one_queue_backpressure_is_counted_and_exact() {
    let p = two_loop(120, 8, false, false, None);
    let expected = reference_state(&p);
    let mut saw_full = false;
    for seed in [1u64, 5, 11, 23] {
        let mut sys = stepped_system(&p, 1);
        assert_eq!(sys.run_interleaved(seed, u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected, "seed {seed} diverged");
        let s = sys.stats();
        saw_full |= s.async_queue_full > 0;
        assert!(s.async_queue_peak >= 1, "something was enqueued");
    }
    assert!(
        saw_full,
        "several hot blocks against depth 1 must hit the bound"
    );
}
