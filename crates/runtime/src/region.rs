//! Shared region primitives: the immutable translation artifact and the
//! chain-dispatch bookkeeping types.
//!
//! Extracted from `system.rs` so that both the single-guest
//! [`crate::DynOptSystem`] and the multi-guest hub/context split
//! ([`crate::TranslationHub`] / [`crate::GuestContext`]) build on one
//! definition of "a translated region" and one chain-link protocol. The
//! hub publishes [`RegionCode`] values frozen behind an `Arc`; each guest
//! keeps its *own* mutable chain links next to the shared code, so link
//! memoization never crosses a thread boundary.

use crate::translate_service::FinishedTranslation;
use smarq_guest::BlockId;
use smarq_ir::{IrOp, OpOrigin, Superblock};
use smarq_opt::fastcomp::FastProgram;
use smarq_opt::OptStats;
use smarq_vliw::{RegionWriteMask, VliwProgram};

/// Sentinel for "no region cached for this block" in the flat cache.
pub(crate) const NO_REGION: u32 = u32::MAX;

/// Memoized dispatch decision for one region exit.
///
/// Link lifecycle: every exit starts `Unresolved`; the first time the
/// running region leaves through it with the target block cached, the
/// dispatcher memoizes `Region(n)` and subsequent executions follow the
/// link without touching the translation cache. Retranslating or
/// abandoning region `n` resets every `Region(n)` link (and the
/// retranslated region's own outgoing links) back to `Unresolved`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ChainLink {
    /// Not yet resolved, or invalidated: consult the translation cache.
    Unresolved,
    /// The exit target is the entry of cached region `n`: continue there
    /// directly, guest state staying resident in the VLIW register file.
    Region(u32),
}

/// Per-chain statistics accumulator: the chained dispatchers fold region
/// execution stats in here (registers/locals on their hot loop) and flush
/// the totals into [`crate::SystemStats`] once per chain.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ChainAccum {
    pub guest: u64,
    pub cycles: u64,
    pub mem_ops: u64,
    pub scanned: u64,
    pub entries: u64,
    pub follows: u64,
    pub lookups: u64,
    /// Entries into regions whose blacklist snapshot is older than the
    /// system's (stale translations kept running while a fresher one is
    /// produced in the background; async/hub modes only).
    pub stale: u64,
}

/// The immutable product of one translation: everything a guest needs to
/// *execute* a region, and everything the runtime needs to re-optimize or
/// invalidate it. Frozen at install time; the hub shares one `RegionCode`
/// across every guest behind an `Arc`, which is what makes the
/// translate-once-run-anywhere economics of the multi-guest runtime work.
#[derive(Debug)]
pub struct RegionCode {
    /// The emitted VLIW code.
    pub vliw: VliwProgram,
    /// Memory-op tag (as reported in alias exceptions) → guest origin.
    pub tag_origin: Vec<OpOrigin>,
    /// The formed superblock (retranslations re-optimize exactly this).
    pub sb: Superblock,
    /// Guest instructions architecturally covered when leaving through
    /// each exit (approximated by the exit op's position in the trace).
    pub exit_instrs: Vec<u64>,
    /// The region's entry block — the translation-cache key mapping here.
    pub entry: BlockId,
    /// Precomputed register write-set for masked checkpointing on the
    /// resident dispatch path.
    pub write_mask: RegionWriteMask,
    /// Fast-functional lowering of `vliw`, compiled when the owning
    /// runtime executes the functional tier; `None` on the cycle-sim tier.
    pub fast: Option<FastProgram>,
    /// Blacklist generation this region was optimized against. Running a
    /// region whose generation trails the runtime's is a *stale*
    /// execution (legal — the alias hardware still catches every true
    /// aliasing — but counted, because it is exactly the window
    /// asynchronous publication opens).
    pub blacklist_gen: u64,
    /// Optimization statistics at emit time (per-region records).
    pub opt_stats: OptStats,
}

impl RegionCode {
    /// Freezes a finished translation into the immutable artifact.
    pub fn from_finished(fin: FinishedTranslation) -> Self {
        let entry = fin.kind.entry();
        let exit_instrs = exit_instr_counts(&fin.sb);
        let write_mask = RegionWriteMask::of(&fin.opt.vliw);
        RegionCode {
            vliw: fin.opt.vliw,
            tag_origin: fin.opt.tag_origin,
            sb: fin.sb,
            exit_instrs,
            entry,
            write_mask,
            fast: fin.fast,
            blacklist_gen: fin.blacklist_gen,
            opt_stats: fin.opt.stats,
        }
    }
}

/// Xorshift64 step — the seeded schedule generator of
/// [`crate::DynOptSystem::run_interleaved`] and the multi-guest
/// round-robin scheduler (state must be non-zero).
pub(crate) fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Guest instructions architecturally covered when leaving through each
/// exit: the number of non-exit ops before the exit, plus the terminators
/// represented by earlier exits.
pub(crate) fn exit_instr_counts(sb: &Superblock) -> Vec<u64> {
    let mut counts = vec![0u64; sb.exits.len()];
    let mut executed = 0u64;
    for op in &sb.ops {
        executed += 1;
        if let IrOp::Exit { exit_id, .. } = op {
            counts[*exit_id as usize] = executed;
        }
    }
    counts
}
