//! # smarq-runtime — the dynamic optimization system
//!
//! The full system of the paper's Figure 1: guest code is interpreted and
//! profiled; hot blocks trigger superblock formation, translation and
//! speculative optimization; optimized regions run in atomic regions on
//! the simulated VLIW; alias exceptions roll the region back, blacklist
//! the faulting pair, and re-optimize conservatively.
//!
//! ```
//! use smarq_guest::{ProgramBuilder, Reg, CmpOp, AluOp};
//! use smarq_runtime::{DynOptSystem, SystemConfig};
//!
//! // A counted loop with a load/store pair.
//! let mut b = ProgramBuilder::new();
//! let entry = b.block();
//! let body = b.block();
//! let done = b.block();
//! b.iconst(entry, Reg(1), 0);
//! b.iconst(entry, Reg(2), 1000);
//! b.iconst(entry, Reg(3), 0x1000);
//! b.jump(entry, body);
//! b.ld(body, Reg(4), Reg(3), 0);
//! b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
//! b.st(body, Reg(4), Reg(3), 0);
//! b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
//! b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
//! b.halt(done);
//! let program = b.finish(entry);
//!
//! let mut sys = DynOptSystem::new(program, SystemConfig::default());
//! sys.run_to_completion(10_000_000);
//! assert!(sys.stats().regions_formed >= 1);
//! assert!(sys.stats().vliw_cycles > 0, "hot loop ran translated");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod hub;
mod multi;
mod region;
mod stats;
mod system;
pub mod translate_service;

pub use context::GuestContext;
pub use hub::{
    hash_program, HubConfig, HubProbe, HubStats, RegionKey, RollbackVerdict, SharedRegion,
    TranslationHub,
};
pub use multi::{run_multi, run_multi_interleaved, DEFAULT_SLICE_STEPS};
pub use region::RegionCode;
pub use stats::{RegionRecord, SystemStats};
pub use system::{DispatchMode, DynOptSystem, ExecTier, RunStatus, StopReason, SystemConfig};
pub use translate_service::{
    FinishedTranslation, JobInput, JobKind, StepExecutor, ThreadedExecutor, TranslationExecutor,
    TranslationJob, TranslationService,
};
