//! The dynamic optimization system loop.

use crate::region::{exit_instr_counts, xorshift64, ChainAccum, ChainLink, NO_REGION};
use crate::stats::{RegionRecord, SystemStats};
use crate::translate_service::{
    FinishedTranslation, JobInput, JobKind, StepExecutor, ThreadedExecutor, TranslationExecutor,
    TranslationJob, TranslationService,
};
use smarq::range::{NospecRanges, RegState};
use smarq::AllocScratch;
use smarq_guest::Memory;
use smarq_guest::{BlockId, Interpreter, Program};
use smarq_ir::OpOrigin;
use smarq_ir::{form_superblock, unroll_superblock, FormationParams, Superblock};
use smarq_opt::fastcomp::{self, FastProgram, FastSim};
use smarq_opt::{optimize_superblock_traced_ranged, AliasBlacklist, OptConfig, OptTrace};
use smarq_verify::{ChainRegionView, ChainReport, ProgramDataflow};
use smarq_vliw::{
    AliasViolation, AnyAliasHw, FastState, MachineConfig, RegionOutcome, RegionStats,
    RegionWriteMask, Simulator, VliwProgram, VliwState,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How the runtime dispatches between interpreter and translated regions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DispatchMode {
    /// The original dispatcher, retained as the differential oracle (per
    /// repo convention for replaced hot paths): a hash-map lookup per
    /// guest block, a full guest-register marshal around every region
    /// entry/exit, and interpreter stat syncing after every interpreted
    /// block.
    Naive,
    /// The overhauled dispatch path: a flat `Vec`-indexed translation
    /// cache keyed by [`BlockId::index`], memoized region→region chain
    /// links followed in a tight loop without re-entering the dispatcher,
    /// guest state kept resident in the VLIW register file across chained
    /// executions, and stat syncing batched to stop/boundary points.
    #[default]
    Chained,
}

/// Which execution tier runs translated regions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecTier {
    /// Every region execution runs on the cycle-level VLIW simulator —
    /// full timing model, the configuration every cycle/energy statistic
    /// assumes. The default.
    #[default]
    CycleSim,
    /// Regions run on the fast-functional tier (`smarq_opt::fastcomp`):
    /// architecturally bit-exact, no timing model. The cycle simulator
    /// is retained as a sampled oracle — every
    /// [`SystemConfig::tier_sample_interval`]-th region entry is
    /// re-executed on it from the same pre-state and the architectural
    /// results compared ([`SystemStats::tier_sample_mismatches`]).
    /// Alias exceptions deoptimize to the interpreter through the same
    /// checkpoint/blacklist/unlink machinery as the cycle tier.
    Functional,
}

/// System configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Optimizer configuration (hardware scheme, speculation switches).
    pub opt: OptConfig,
    /// Execution count at which a block becomes hot.
    pub hot_threshold: u64,
    /// Region-formation parameters.
    pub formation: FormationParams,
    /// Loop unrolling factor applied to self-loop regions (1 disables;
    /// bounded by `formation.max_ops`). Larger regions exercise more alias
    /// registers — the paper's §2.2 scalability argument.
    pub unroll_factor: u32,
    /// Rollbacks after which a region is abandoned to interpretation
    /// (a backstop; blacklisting normally converges much earlier).
    pub max_rollbacks_per_region: u64,
    /// Verify-on-emit: statically verify every (re)translated region with
    /// `smarq_verify` before it enters the code cache. Findings accumulate
    /// in [`SystemStats`]; execution is never blocked (observation mode).
    /// Defaults to the `SMARQ_VERIFY` environment variable (non-empty,
    /// non-`0` value enables; read once per process).
    pub verify_translations: bool,
    /// Dispatch-path implementation (see [`DispatchMode`]). The chained
    /// dispatcher is the default; the naive one is the bit-exact oracle
    /// used by the differential tests and the `dispatch` perf comparison.
    /// Only consulted on the cycle-sim tier — the functional tier has a
    /// single (chained) dispatcher.
    pub dispatch: DispatchMode,
    /// Execution tier for translated regions (see [`ExecTier`]).
    /// Defaults to the `SMARQ_EXEC_TIER` environment variable
    /// (`functional`, `fast` or `1` select the functional tier; read
    /// once per process), otherwise the cycle simulator.
    pub exec_tier: ExecTier,
    /// On the functional tier, every `tier_sample_interval`-th region
    /// entry is also executed on the cycle simulator from the same
    /// pre-state and bit-compared (0 disables sampling). The first
    /// functional entry is always sampled, so even short runs get one
    /// cross-check.
    pub tier_sample_interval: u64,
    /// Run translation asynchronously: hot-region triggers enqueue a
    /// [`TranslationJob`] on a bounded background service and the guest
    /// keeps executing until the finished region is atomically published
    /// at a dispatch boundary. Defaults to the `SMARQ_ASYNC_TRANSLATE`
    /// environment variable (non-empty, non-`0` enables; read once per
    /// process).
    pub async_translate: bool,
    /// Worker threads for the background translation pool. `0` selects
    /// the deterministic auto-stepped executor ([`StepExecutor::auto`]):
    /// no threads, each translation completes at the dispatch boundary
    /// after its submission — async publish semantics with fully
    /// reproducible timing.
    pub translate_workers: u32,
    /// Bound of the translation request queue. Submissions against a full
    /// queue are dropped (and counted); the block stays hot, so the next
    /// dispatch of it simply retries.
    pub translate_queue_depth: u32,
    /// Unspeculatable guest address ranges: no memory op whose derived
    /// address can touch one of these is ever eliminated, reordered, or
    /// annotated with alias bits by the optimizer (paper-external safety
    /// contract for MMIO-like regions). Propagated into
    /// [`OptConfig::nospec`] at system construction; the whole-program
    /// value-range analysis ([`smarq_verify::analyze`]) supplies each
    /// region's entry state so the taint is range-precise. Defaults to
    /// the `SMARQ_NOSPEC` environment variable (`lo..hi[,lo..hi…]`,
    /// half-open, decimal or `0x` hex; read once per process).
    pub nospec_ranges: NospecRanges,
}

fn verify_from_env() -> bool {
    static FROM_ENV: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FROM_ENV
        .get_or_init(|| std::env::var_os("SMARQ_VERIFY").is_some_and(|v| !v.is_empty() && v != "0"))
}

fn async_from_env() -> bool {
    static FROM_ENV: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var_os("SMARQ_ASYNC_TRANSLATE").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

fn nospec_from_env() -> NospecRanges {
    static FROM_ENV: std::sync::OnceLock<NospecRanges> = std::sync::OnceLock::new();
    FROM_ENV
        .get_or_init(|| match std::env::var("SMARQ_NOSPEC") {
            Ok(v) if !v.trim().is_empty() => {
                NospecRanges::parse(&v).unwrap_or_else(|e| panic!("invalid SMARQ_NOSPEC: {e}"))
            }
            _ => NospecRanges::none(),
        })
        .clone()
}

fn exec_tier_from_env() -> ExecTier {
    static FROM_ENV: std::sync::OnceLock<ExecTier> = std::sync::OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var_os("SMARQ_EXEC_TIER") {
        Some(v) if v == "functional" || v == "fast" || v == "1" => ExecTier::Functional,
        _ => ExecTier::CycleSim,
    })
}

impl Default for SystemConfig {
    fn default() -> Self {
        let machine = MachineConfig::default();
        SystemConfig {
            opt: OptConfig::smarq(machine.num_alias_regs),
            machine,
            hot_threshold: 50,
            formation: FormationParams {
                cold_threshold: 10,
                max_blocks: 16,
                max_ops: 512,
            },
            unroll_factor: 1,
            max_rollbacks_per_region: 64,
            verify_translations: verify_from_env(),
            dispatch: DispatchMode::default(),
            exec_tier: exec_tier_from_env(),
            tier_sample_interval: 256,
            async_translate: async_from_env(),
            translate_workers: 1,
            translate_queue_depth: 4,
            nospec_ranges: nospec_from_env(),
        }
    }
}

impl SystemConfig {
    /// Default system targeting the given optimizer configuration.
    pub fn with_opt(opt: OptConfig) -> Self {
        SystemConfig {
            opt,
            ..Self::default()
        }
    }
}

struct CachedRegion {
    vliw: VliwProgram,
    tag_origin: Vec<OpOrigin>,
    sb: Superblock,
    /// Guest instructions architecturally covered when leaving through
    /// each exit (approximated by the exit op's position in the trace).
    exit_instrs: Vec<u64>,
    rollbacks: u64,
    /// The region's entry block — the translation-cache key mapping here.
    entry: BlockId,
    /// Precomputed register write-set for masked checkpointing on the
    /// resident dispatch path.
    write_mask: RegionWriteMask,
    /// Memoized region→region links, parallel to `vliw.exits`.
    links: Vec<ChainLink>,
    /// Fast-functional lowering of `vliw`, compiled on install (and on
    /// every retranslation) when the system runs the functional tier;
    /// `None` on the cycle-sim tier.
    fast: Option<FastProgram>,
    /// Blacklist generation this region was optimized against. Running a
    /// region whose generation trails the system's is a *stale* execution
    /// (legal — the alias hardware still catches every true aliasing —
    /// but counted, because it is exactly the window async translation
    /// opens).
    blacklist_gen: u64,
    /// The optimizer's trace, retained under verify-on-emit mode only —
    /// the link-time chain checks re-derive their facts from it.
    trace: Option<OptTrace>,
    /// The abstract entry register state the optimizer's nospec taint
    /// assumed (`None` = assumed ⊤). The chain analyzer proves no chained
    /// predecessor can deliver a state outside it.
    assumed_entry: Option<RegState>,
}

/// Why [`DynOptSystem::run_to_completion`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The guest program halted.
    Halted,
    /// The guest-instruction budget ran out first.
    BudgetExhausted,
}

/// Outcome of one bounded stepping call ([`DynOptSystem::run_bounded`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunStatus {
    /// The step bound was reached; the guest can continue.
    Running,
    /// The guest program halted.
    Halted,
    /// The guest-instruction budget ran out.
    BudgetExhausted,
}

/// The dynamic binary optimization system (paper Figure 1).
pub struct DynOptSystem {
    /// Shared with in-flight translation jobs in async mode.
    program: Arc<Program>,
    config: SystemConfig,
    interp: Interpreter,
    vstate: VliwState,
    sim: Simulator<AnyAliasHw>,
    /// Fast-functional executor (owns the tier's alias-detection state).
    fast_sim: FastSim,
    /// Resident register state of the functional tier.
    fstate: FastState,
    /// Functional entries left until the next tier-down sample (`0` when
    /// sampling is disabled). A countdown instead of
    /// `tier_fast_entries % interval` keeps the u64 divide off the
    /// per-region-entry fast path.
    tier_sample_countdown: u64,
    /// Flat translation cache: `cache[block.index()]` holds the region
    /// index or [`NO_REGION`]. Replaces the per-block `HashMap` lookup of
    /// the original dispatcher with one indexed load.
    cache: Vec<u32>,
    /// The `HashMap` cache the flat one replaced, kept in sync and
    /// consulted only under [`DispatchMode::Naive`] so the retained
    /// oracle measures the original dispatch cost faithfully.
    naive_cache: HashMap<BlockId, usize>,
    regions: Vec<CachedRegion>,
    /// `abandoned[block.index()]`: translation permanently given up.
    abandoned: Vec<bool>,
    blacklist: AliasBlacklist,
    /// Bumped on every fresh blacklist insert. In-flight translation jobs
    /// snapshot it; publish rejects (and resubmits) results whose
    /// snapshot trails it, and region entries under an older generation
    /// count as stale executions.
    blacklist_gen: u64,
    stats: SystemStats,
    /// Allocator scratch recycled across every (re)translation.
    scratch: AllocScratch,
    /// Whole-program value-range analysis (entry state per guest block);
    /// `None` when neither nospec ranges nor verify-on-emit need it.
    dataflow: Option<ProgramDataflow>,
    /// The background translation service (async mode only).
    service: Option<TranslationService>,
    /// Resume point of [`Self::run_bounded`]: the next guest block to
    /// dispatch, or `None` once the guest has halted.
    cursor: Option<BlockId>,
}

impl DynOptSystem {
    /// Creates a system for `program`. When the config enables async
    /// translation, the executor is chosen from it: a [`ThreadedExecutor`]
    /// pool, or the deterministic [`StepExecutor::auto`] when
    /// `translate_workers` is 0.
    pub fn new(program: Program, config: SystemConfig) -> Self {
        let exec: Option<Box<dyn TranslationExecutor>> = config.async_translate.then(|| {
            let depth = config.translate_queue_depth.max(1) as usize;
            if config.translate_workers == 0 {
                Box::new(StepExecutor::auto(depth)) as Box<dyn TranslationExecutor>
            } else {
                Box::new(ThreadedExecutor::new(
                    config.translate_workers as usize,
                    depth,
                ))
            }
        });
        Self::build(program, config, exec)
    }

    /// Creates a system translating asynchronously through the given
    /// executor — the deterministic interleaving harness injects a
    /// manually stepped [`StepExecutor`] here.
    pub fn with_executor(
        program: Program,
        mut config: SystemConfig,
        exec: Box<dyn TranslationExecutor>,
    ) -> Self {
        config.async_translate = true;
        Self::build(program, config, Some(exec))
    }

    fn build(
        program: Program,
        mut config: SystemConfig,
        exec: Option<Box<dyn TranslationExecutor>>,
    ) -> Self {
        // Thread the system-level nospec set into the optimizer config so
        // both the inline and worker translation paths enforce it.
        if !config.nospec_ranges.is_empty() {
            config.opt.nospec = config.nospec_ranges.clone();
        }
        // The whole-program value-range analysis that makes the nospec
        // taint range-precise (and seeds chain verification). Computed
        // once per system; skipped entirely when nothing consumes it.
        let dataflow = (!config.opt.nospec.is_empty() || config.verify_translations)
            .then(|| smarq_verify::analyze(&program));
        let hw = AnyAliasHw::for_kind(config.opt.hw, config.opt.num_alias_regs);
        let sim = Simulator::new(config.machine, hw);
        let fast_sim = FastSim::new(config.opt.hw, config.opt.num_alias_regs);
        let mut interp = Interpreter::new();
        interp.load_data(&program);
        let num_blocks = program.num_blocks();
        let entry = program.entry();
        // 1, not the interval: the very first functional entry is always
        // cross-checked.
        let sample_countdown = u64::from(config.tier_sample_interval != 0);
        DynOptSystem {
            program: Arc::new(program),
            config,
            interp,
            vstate: VliwState::new(),
            sim,
            fast_sim,
            fstate: FastState::new(),
            tier_sample_countdown: sample_countdown,
            cache: vec![NO_REGION; num_blocks],
            naive_cache: HashMap::new(),
            regions: Vec::new(),
            abandoned: vec![false; num_blocks],
            blacklist: AliasBlacklist::new(),
            blacklist_gen: 0,
            stats: SystemStats::default(),
            scratch: AllocScratch::new(),
            dataflow,
            service: exec.map(|e| TranslationService::new(e, num_blocks)),
            cursor: Some(entry),
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// The guest interpreter (architectural state lives here).
    pub fn interp(&self) -> &Interpreter {
        &self.interp
    }

    /// The alias blacklist accumulated from runtime exceptions.
    pub fn blacklist(&self) -> &AliasBlacklist {
        &self.blacklist
    }

    /// The superblocks of every region currently in the translation cache
    /// (in formation order). External oracles — the fuzzer's allocation
    /// validator and differential dependence checks — re-optimize exactly
    /// these regions instead of guessing what the system formed.
    pub fn formed_superblocks(&self) -> impl Iterator<Item = &Superblock> + '_ {
        self.regions.iter().map(|r| &r.sb)
    }

    /// Runs until the guest halts or roughly `budget` guest instructions
    /// have been retired. Resumes from where the previous call stopped
    /// (budget-exhausted runs continue; a halted guest stays halted).
    pub fn run_to_completion(&mut self, budget: u64) -> StopReason {
        match self.run_bounded(u64::MAX, budget) {
            RunStatus::Halted => StopReason::Halted,
            RunStatus::BudgetExhausted => StopReason::BudgetExhausted,
            RunStatus::Running => unreachable!("u64::MAX dispatch steps"),
        }
    }

    /// Runs at most `max_steps` dispatch steps (each an interpreted block
    /// or a region chain), stopping earlier on guest halt or once roughly
    /// `budget` guest instructions have retired. Finished background
    /// translations are published at each step boundary — this is the
    /// fine-grained clock the deterministic interleaving harness drives
    /// guest progress with.
    pub fn run_bounded(&mut self, max_steps: u64, budget: u64) -> RunStatus {
        let Some(mut cur) = self.cursor else {
            // Already halted: publishes may still be pending, but guest
            // execution is over.
            return RunStatus::Halted;
        };
        let mut steps = 0u64;
        while steps < max_steps {
            steps += 1;
            if self.service.is_some() {
                self.poll_translations();
            }
            if self.live_guest_instrs() >= budget {
                self.cursor = Some(cur);
                self.sync_interp_stats();
                return RunStatus::BudgetExhausted;
            }
            let next = if self.config.exec_tier == ExecTier::Functional {
                self.step_functional(cur, budget)
            } else {
                match self.config.dispatch {
                    DispatchMode::Naive => self.step_naive(cur),
                    DispatchMode::Chained => self.step_chained(cur, budget),
                }
            };
            match next {
                Some(b) => cur = b,
                None => {
                    self.cursor = None;
                    self.sync_interp_stats();
                    return RunStatus::Halted;
                }
            }
        }
        self.cursor = Some(cur);
        self.sync_interp_stats();
        RunStatus::Running
    }

    /// Runs to completion under a seeded pseudo-random interleaving of
    /// guest dispatch steps and translation pipeline steps (compute /
    /// release), using the manually stepped executor's hooks. The same
    /// seed replays the exact same schedule — failures reported by the
    /// race harness are reproducible from the seed alone, like fuzz
    /// corpus entries.
    pub fn run_interleaved(&mut self, seed: u64, budget: u64) -> StopReason {
        let mut state = seed | 1;
        loop {
            let steps = 1 + xorshift64(&mut state) % 13;
            match self.run_bounded(steps, budget) {
                RunStatus::Halted => return StopReason::Halted,
                RunStatus::BudgetExhausted => return StopReason::BudgetExhausted,
                RunStatus::Running => {}
            }
            match xorshift64(&mut state) % 4 {
                0 => {
                    self.translation_compute_one();
                }
                1 => {
                    self.translation_release_one();
                }
                2 => {
                    self.translation_compute_one();
                    self.translation_release_one();
                }
                _ => {} // let the guest run on
            }
        }
    }

    /// Translation jobs currently in flight (async mode; 0 otherwise).
    pub fn translation_outstanding(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.outstanding())
    }

    /// Steps one queued translation job to its computed stage (manual
    /// step executors only; see [`TranslationExecutor::compute_one`]).
    pub fn translation_compute_one(&mut self) -> bool {
        self.service.as_mut().is_some_and(|s| s.compute_one())
    }

    /// Releases one computed translation for publication (manual step
    /// executors only; see [`TranslationExecutor::release_one`]).
    pub fn translation_release_one(&mut self) -> bool {
        self.service.as_mut().is_some_and(|s| s.release_one())
    }

    /// Blocks until every in-flight translation has finished, publishing
    /// each — the pipeline drain used at shutdown and by the benchmarks.
    pub fn translation_drain(&mut self) {
        loop {
            let Some(fin) = self.service.as_mut().and_then(|s| s.take_blocking()) else {
                return;
            };
            self.publish_translation(fin);
        }
    }

    /// Test hook: force-submit a translation job for `entry`, bypassing
    /// the hot-trigger and pending-job dedup (the double-publish race
    /// tests need two in-flight jobs for the same block).
    #[doc(hidden)]
    pub fn debug_submit_translate(&mut self, entry: BlockId) {
        self.submit_translate(entry);
    }

    /// Guest instructions retired so far, computed live from the
    /// interpreter counter so the budget check needs no per-block
    /// [`SystemStats`] sync (stat syncing is batched to stop/boundary
    /// points; see [`Self::sync_interp_stats`]).
    #[inline]
    fn live_guest_instrs(&self) -> u64 {
        self.interp.executed_instrs() + self.stats.region_guest_instrs
    }

    fn sync_interp_stats(&mut self) {
        self.stats.interp_instrs = self.interp.executed_instrs();
        self.stats.interp_cycles =
            self.stats.interp_instrs * self.config.machine.interp_cycles_per_instr;
    }

    /// The derived abstract register state at `b`'s entry, when the
    /// whole-program range analysis ran (nospec or verify mode).
    fn entry_state(&self, b: BlockId) -> Option<RegState> {
        self.dataflow.as_ref().map(|d| *d.entry_state(b))
    }

    /// Flat-cache probe for the region cached at `b`, if any.
    #[inline]
    fn cached_region(&self, b: BlockId) -> Option<usize> {
        match self.cache.get(b.index()) {
            Some(&idx) if idx != NO_REGION => Some(idx as usize),
            _ => None,
        }
    }

    /// The original dispatcher, preserved as the oracle: one hash-map
    /// lookup per guest block, full marshalling per region entry, stat
    /// sync after every interpreted block.
    fn step_naive(&mut self, cur: BlockId) -> Option<BlockId> {
        self.stats.dispatch_lookups += 1;
        if let Some(&idx) = self.naive_cache.get(&cur) {
            return self.run_region_naive(cur, idx);
        }
        // Interpret one block.
        let next = self.interp.step_block(&self.program, cur);
        self.sync_interp_stats();
        self.maybe_translate(cur);
        next
    }

    /// The overhauled dispatcher: flat cache probe, then region chaining.
    fn step_chained(&mut self, cur: BlockId, budget: u64) -> Option<BlockId> {
        self.stats.dispatch_lookups += 1;
        if let Some(idx) = self.cached_region(cur) {
            return self.run_region_chained(idx, budget);
        }
        // Interpret one block; interpreter stats sync at stop/boundary
        // only — the budget check reads the live counter instead.
        let next = self.interp.step_block(&self.program, cur);
        self.maybe_translate(cur);
        next
    }

    /// Hot-block detection after an interpreted block. Inline mode
    /// translates on the spot; async mode enqueues a job (unless one for
    /// this entry is already in flight) and keeps going.
    fn maybe_translate(&mut self, cur: BlockId) {
        if self.interp.profile().block_count(cur) >= self.config.hot_threshold
            && self.cached_region(cur).is_none()
            && !self.abandoned[cur.index()]
        {
            match &self.service {
                None => self.translate(cur),
                Some(s) => {
                    if !s.is_pending(cur) {
                        self.submit_translate(cur);
                    }
                }
            }
        }
    }

    /// Builds a translation job from the system's current configuration
    /// and blacklist snapshot.
    fn make_job(&self, kind: JobKind, input: JobInput) -> TranslationJob {
        TranslationJob {
            kind,
            input,
            program: Arc::clone(&self.program),
            formation: self.config.formation,
            unroll_factor: self.config.unroll_factor,
            opt: self.config.opt.clone(),
            machine: self.config.machine,
            blacklist: self.blacklist.clone(),
            blacklist_gen: self.blacklist_gen,
            verify: self.config.verify_translations,
            compile_fast: self.config.exec_tier == ExecTier::Functional,
            entry_state: self.entry_state(kind.entry()),
        }
    }

    /// Submits `job`, accounting the enqueue on the critical-path clock.
    fn submit_job(&mut self, job: TranslationJob) {
        let t0 = Instant::now();
        let service = self.service.as_mut().expect("async mode");
        if service.submit(job) {
            self.stats.async_enqueued += 1;
            let depth = service.outstanding() as u64;
            self.stats.async_queue_peak = self.stats.async_queue_peak.max(depth);
        } else {
            self.stats.async_queue_full += 1;
        }
        self.stats.async_stall_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Enqueues a first translation of `entry`: the profile is
    /// snapshotted here, formation happens on the worker.
    fn submit_translate(&mut self, entry: BlockId) {
        let job = self.make_job(
            JobKind::Translate { entry },
            JobInput::Form {
                profile: self.interp.profile().clone(),
            },
        );
        self.submit_job(job);
    }

    /// Enqueues a conservative retranslation of region slot `idx`
    /// (reusing its superblock — only the optimization re-runs, against
    /// the just-grown blacklist).
    fn submit_retranslate(&mut self, idx: usize) {
        let job = self.make_job(
            JobKind::Retranslate {
                region: idx as u32,
                entry: self.regions[idx].entry,
            },
            JobInput::Ready(Box::new(self.regions[idx].sb.clone())),
        );
        self.submit_job(job);
    }

    /// Publishes every finished translation the service has ready. Runs
    /// on the execution thread at dispatch-step boundaries only — that
    /// single-threaded discipline is what makes each publish atomic with
    /// respect to guest execution (no region is entered mid-swap).
    fn poll_translations(&mut self) {
        loop {
            let Some(fin) = self.service.as_mut().and_then(|s| s.take()) else {
                return;
            };
            self.publish_translation(fin);
        }
    }

    /// Atomically publishes one finished translation — or rejects it when
    /// the world moved while it was in flight: the entry was abandoned,
    /// the slot was taken, or the blacklist grew past the job's snapshot
    /// (rejected results are resubmitted against the fresh snapshot, so
    /// convergence matches the inline path).
    fn publish_translation(&mut self, fin: FinishedTranslation) {
        self.stats.async_worker_ns += fin.worker_ns;
        let t0 = Instant::now();
        let entry = fin.kind.entry();
        if self.abandoned[entry.index()] || self.cached_region(entry).is_some() {
            // Abandoned while in flight, or a duplicate/raced job already
            // installed code for this entry: drop the result.
            self.stats.async_publish_conflicts += 1;
        } else if fin.blacklist_gen != self.blacklist_gen {
            // The blacklist grew while this job ran; its schedule may
            // still speculate on a known-aliasing pair. Re-optimize
            // against the fresh snapshot (the formed superblock rides
            // along, so only optimization re-runs).
            self.stats.async_publish_conflicts += 1;
            let job = self.make_job(fin.kind, JobInput::Ready(Box::new(fin.sb)));
            self.submit_job(job);
        } else {
            match fin.kind {
                JobKind::Translate { .. } => self.install_translation(fin),
                JobKind::Retranslate { region, .. } => {
                    self.install_retranslation(region as usize, fin)
                }
            }
            self.stats.async_published += 1;
        }
        self.stats.async_stall_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Installs a finished first translation as a new region (the async
    /// twin of [`Self::translate`]'s install tail).
    fn install_translation(&mut self, fin: FinishedTranslation) {
        let entry = fin.kind.entry();
        if fin.verified {
            self.fold_verify_diags(&fin.diags);
        }
        let exit_instrs = exit_instr_counts(&fin.sb);
        let write_mask = RegionWriteMask::of(&fin.opt.vliw);
        let links = vec![ChainLink::Unresolved; fin.opt.vliw.exits.len()];
        self.regions.push(CachedRegion {
            vliw: fin.opt.vliw,
            tag_origin: fin.opt.tag_origin,
            sb: fin.sb,
            exit_instrs,
            rollbacks: 0,
            entry,
            write_mask,
            links,
            fast: fin.fast,
            blacklist_gen: fin.blacklist_gen,
            trace: fin.trace,
            assumed_entry: fin.entry_state,
        });
        self.cache[entry.index()] = (self.regions.len() - 1) as u32;
        self.naive_cache.insert(entry, self.regions.len() - 1);
        self.stats.regions_formed += 1;
        self.stats.per_region.push(RegionRecord {
            entry,
            opt: fin.opt.stats,
            entries: 0,
            rollbacks: 0,
            retranslations: 0,
        });
    }

    /// Re-publishes a finished retranslation into its existing region
    /// slot (the async twin of [`Self::retranslate`]'s install tail; the
    /// slot was unpublished when the deopt enqueued the job, so nothing
    /// can have chained to it in between).
    fn install_retranslation(&mut self, idx: usize, fin: FinishedTranslation) {
        if fin.verified {
            self.fold_verify_diags(&fin.diags);
        }
        let entry = self.regions[idx].entry;
        self.regions[idx].fast = fin.fast;
        self.regions[idx].vliw = fin.opt.vliw;
        self.regions[idx].tag_origin = fin.opt.tag_origin;
        self.regions[idx].trace = fin.trace;
        self.regions[idx].assumed_entry = fin.entry_state;
        self.regions[idx].write_mask = RegionWriteMask::of(&self.regions[idx].vliw);
        let exits = self.regions[idx].vliw.exits.len();
        self.regions[idx].links = vec![ChainLink::Unresolved; exits];
        self.regions[idx].blacklist_gen = fin.blacklist_gen;
        self.cache[entry.index()] = idx as u32;
        self.naive_cache.insert(entry, idx);
        self.stats.retranslations += 1;
        self.stats.per_region[idx].retranslations += 1;
        self.stats.per_region[idx].opt = fin.opt.stats;
    }

    /// Pulls region slot `idx` out of both translation caches and severs
    /// every chain link in and out of it — after this, the region cannot
    /// be dispatched or chained into, so an in-flight retranslation can
    /// swap its code without racing execution.
    fn unpublish(&mut self, idx: usize) {
        let entry = self.regions[idx].entry;
        self.cache[entry.index()] = NO_REGION;
        self.naive_cache.remove(&entry);
        let resolved = self.regions[idx]
            .links
            .iter()
            .filter(|l| **l != ChainLink::Unresolved)
            .count() as u64;
        self.stats.chain_unlinks += resolved;
        for l in &mut self.regions[idx].links {
            *l = ChainLink::Unresolved;
        }
        self.unlink_into(idx);
    }

    fn translate(&mut self, entry: BlockId) {
        let t0 = Instant::now();
        let sb = form_superblock(
            &self.program,
            self.interp.profile(),
            entry,
            self.config.formation,
        );
        let (sb, _) = unroll_superblock(
            &sb,
            self.config.unroll_factor,
            self.config.formation.max_ops,
        );
        let assumed_entry = self.entry_state(entry);
        let (opt, trace) = optimize_superblock_traced_ranged(
            &sb,
            &self.config.opt,
            &self.config.machine,
            &self.blacklist,
            &mut self.scratch,
            assumed_entry.as_ref(),
        );
        let trace = self.config.verify_translations.then_some(trace);
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.translation_ns += ns;
        self.stats.scheduling_ns += opt.stats.sched_ns;
        // Verify after the overhead clock stops: the paper's Figure 18
        // overhead metric must not be polluted by an opt-in debug mode.
        if let Some(trace) = &trace {
            self.verify_emitted(self.regions.len(), trace);
        }

        let exit_instrs = exit_instr_counts(&sb);
        let write_mask = RegionWriteMask::of(&opt.vliw);
        let links = vec![ChainLink::Unresolved; opt.vliw.exits.len()];
        let fast = self.compile_fast(&opt.vliw);
        self.regions.push(CachedRegion {
            vliw: opt.vliw,
            tag_origin: opt.tag_origin,
            sb,
            exit_instrs,
            rollbacks: 0,
            entry,
            write_mask,
            links,
            fast,
            blacklist_gen: self.blacklist_gen,
            trace,
            assumed_entry,
        });
        self.cache[entry.index()] = (self.regions.len() - 1) as u32;
        self.naive_cache.insert(entry, self.regions.len() - 1);
        self.stats.regions_formed += 1;
        self.stats.per_region.push(RegionRecord {
            entry,
            opt: opt.stats,
            entries: 0,
            rollbacks: 0,
            retranslations: 0,
        });
    }

    fn retranslate(&mut self, idx: usize) {
        let t0 = Instant::now();
        let assumed_entry = self.entry_state(self.regions[idx].entry);
        let (opt, trace) = optimize_superblock_traced_ranged(
            &self.regions[idx].sb,
            &self.config.opt,
            &self.config.machine,
            &self.blacklist,
            &mut self.scratch,
            assumed_entry.as_ref(),
        );
        let trace = self.config.verify_translations.then_some(trace);
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.translation_ns += ns;
        self.stats.scheduling_ns += opt.stats.sched_ns;
        if let Some(trace) = &trace {
            self.verify_emitted(idx, trace);
        }
        self.regions[idx].trace = trace;
        self.regions[idx].assumed_entry = assumed_entry;
        self.regions[idx].fast = self.compile_fast(&opt.vliw);
        self.regions[idx].vliw = opt.vliw;
        self.regions[idx].tag_origin = opt.tag_origin;
        self.regions[idx].write_mask = RegionWriteMask::of(&self.regions[idx].vliw);
        // The emitted code changed: drop the region's own memoized links
        // and conservatively invalidate every link pointing at it.
        let resolved = self.regions[idx]
            .links
            .iter()
            .filter(|l| **l != ChainLink::Unresolved)
            .count() as u64;
        self.stats.chain_unlinks += resolved;
        let exits = self.regions[idx].vliw.exits.len();
        self.regions[idx].links = vec![ChainLink::Unresolved; exits];
        self.regions[idx].blacklist_gen = self.blacklist_gen;
        self.unlink_into(idx);
        self.stats.retranslations += 1;
        self.stats.per_region[idx].retranslations += 1;
        self.stats.per_region[idx].opt = opt.stats;
    }

    /// Invalidates every memoized link targeting region `target` (called
    /// when the target is retranslated or abandoned — a stale link would
    /// otherwise chain into dead or outdated code).
    fn unlink_into(&mut self, target: usize) {
        let stale = ChainLink::Region(target as u32);
        for r in &mut self.regions {
            for l in &mut r.links {
                if *l == stale {
                    *l = ChainLink::Unresolved;
                    self.stats.chain_unlinks += 1;
                }
            }
        }
    }

    /// Statically verifies a freshly emitted translation (verify-on-emit
    /// mode) and folds the findings into [`SystemStats`]. Observation
    /// only: a bad region still enters the cache — callers inspect
    /// `verify_errors` to decide whether to trust the run.
    fn verify_emitted(&mut self, region: usize, trace: &OptTrace) {
        let diags = smarq_verify::verify_trace(region, trace, self.config.opt.num_alias_regs);
        self.fold_verify_diags(&diags);
    }

    /// Folds verify-on-emit findings (computed inline or on a worker)
    /// into [`SystemStats`].
    fn fold_verify_diags(&mut self, diags: &[smarq::Diagnostic]) {
        self.stats.regions_verified += 1;
        for d in diags {
            if d.severity == smarq::Severity::Error {
                self.stats.verify_errors += 1;
            }
            if self.stats.verify_diagnostics.len() < SystemStats::VERIFY_DIAGNOSTIC_CAP {
                self.stats.verify_diagnostics.push(d.to_json());
            }
        }
    }

    /// Chain-boundary verification at link time (verify-on-emit mode):
    /// when the chained dispatcher memoizes a region→region link, the
    /// hand-off obligations of the two regions involved — write-mask
    /// coverage, entry-state soundness, nospec protection, dead `AMOV`s
    /// and unreachable checks — are proven by the chain analyzer and the
    /// findings folded into [`SystemStats`]. Observation only, like
    /// [`Self::verify_emitted`].
    fn chain_check_link(&mut self, from: usize, to: usize) {
        let mut ids = vec![from];
        if to != from {
            ids.push(to);
        }
        let mut views = Vec::with_capacity(ids.len());
        for &i in &ids {
            let r = &self.regions[i];
            // Regions installed before verify mode was on carry no trace;
            // nothing to re-derive facts from.
            let Some(trace) = r.trace.as_ref() else {
                return;
            };
            views.push(ChainRegionView {
                region_id: i,
                sb: &r.sb,
                trace,
                vliw: &r.vliw,
                write_mask: r.write_mask,
                assumed_entry: r.assumed_entry,
            });
        }
        let report = smarq_verify::analyze_chain(&self.program, &views, &self.config.opt.nospec);
        self.stats.chain_checks += 1;
        for d in &report.diagnostics {
            if d.severity == smarq::Severity::Error {
                self.stats.chain_errors += 1;
            }
            if self.stats.verify_diagnostics.len() < SystemStats::VERIFY_DIAGNOSTIC_CAP {
                self.stats.verify_diagnostics.push(d.to_json());
            }
        }
    }

    /// Runs the whole-chain static analyzer over every cached region that
    /// carries an optimizer trace (verify-on-emit mode retains them).
    /// `None` when no region does — external oracles (the fuzzer's chain
    /// layer, `smarq-run lint`) call this instead of rebuilding views.
    pub fn analyze_chain(&self) -> Option<ChainReport> {
        let views: Vec<ChainRegionView<'_>> = self
            .regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.trace.as_ref().map(|trace| ChainRegionView {
                    region_id: i,
                    sb: &r.sb,
                    trace,
                    vliw: &r.vliw,
                    write_mask: r.write_mask,
                    assumed_entry: r.assumed_entry,
                })
            })
            .collect();
        if views.is_empty() {
            return None;
        }
        Some(smarq_verify::analyze_chain(
            &self.program,
            &views,
            &self.config.opt.nospec,
        ))
    }

    /// Folds one region execution's statistics into the system totals.
    #[inline]
    fn note_region_entry(&mut self, idx: usize, rstats: &RegionStats) {
        self.stats.vliw_cycles += rstats.cycles;
        self.stats.region_mem_ops += rstats.mem_ops;
        self.stats.alias_entries_scanned += rstats.entries_scanned;
        self.stats.region_entries += 1;
        self.stats.per_region[idx].entries += 1;
    }

    /// One region execution under the naive dispatcher: guest registers
    /// are marshalled into the VLIW state and back around every entry.
    fn run_region_naive(&mut self, entry: BlockId, idx: usize) -> Option<BlockId> {
        if self.service.is_some() && self.regions[idx].blacklist_gen != self.blacklist_gen {
            self.stats.async_stale_entries += 1;
        }
        self.vstate
            .load_guest(&self.interp.regs, &self.interp.fregs);
        let (outcome, rstats) = self
            .sim
            .run_region(
                &self.regions[idx].vliw,
                &mut self.vstate,
                &mut self.interp.mem,
            )
            .expect("translated region is well formed");
        self.note_region_entry(idx, &rstats);
        match outcome {
            RegionOutcome::Exited { exit_id } => {
                self.vstate
                    .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                let covered = self.regions[idx].exit_instrs[exit_id as usize];
                self.stats.region_guest_instrs += covered;
                self.regions[idx].vliw.exits[exit_id as usize]
                    .guest_block
                    .map(BlockId)
            }
            RegionOutcome::AliasException(v) => {
                // Rolled back: record the pair, re-optimize conservatively,
                // and make forward progress by interpreting one block.
                self.handle_alias_exception(idx, v);
                let next = self.interp.step_block(&self.program, entry);
                self.sync_interp_stats();
                next
            }
        }
    }

    /// Region execution under the chained dispatcher: follows memoized
    /// region→region links in a tight loop. Guest state stays resident in
    /// the VLIW register file for the whole chain and is marshalled back
    /// to the interpreter only at the translated→interpreted boundary (or
    /// after an alias-exception rollback).
    fn run_region_chained(&mut self, idx: usize, budget: u64) -> Option<BlockId> {
        let mut idx = idx;
        self.vstate
            .load_guest(&self.interp.regs, &self.interp.fregs);
        // Chain-local accumulators, folded into `SystemStats` once per
        // chain (and per region switch for the per-region entry counter)
        // instead of half a dozen global read-modify-writes per entry.
        // The interpreter cannot retire instructions while the chain
        // runs, so the budget check is two local adds and a compare.
        let guest_base = self.interp.executed_instrs() + self.stats.region_guest_instrs;
        let async_mode = self.service.is_some();
        let mut acc = ChainAccum::default();
        let mut run_idx = idx;
        let mut run_entries = 0u64;
        loop {
            let region = &self.regions[idx];
            if async_mode && region.blacklist_gen != self.blacklist_gen {
                acc.stale += 1;
            }
            let (outcome, rstats) = self
                .sim
                .run_region_resident(
                    &region.vliw,
                    region.write_mask,
                    &mut self.vstate,
                    &mut self.interp.mem,
                )
                .expect("translated region is well formed");
            acc.cycles += rstats.cycles;
            acc.mem_ops += rstats.mem_ops;
            acc.scanned += rstats.entries_scanned;
            acc.entries += 1;
            run_entries += 1;
            let exit_id = match outcome {
                RegionOutcome::Exited { exit_id } => exit_id as usize,
                RegionOutcome::AliasException(v) => {
                    // The simulator rolled the resident state back to this
                    // region's entry — even mid-chain, the checkpoint taken
                    // at the chained entry is exactly the pre-region guest
                    // state. Surface it to the interpreter, then fall back.
                    self.vstate
                        .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                    self.stats.per_region[run_idx].entries += run_entries;
                    self.flush_chain_stats(&acc);
                    let entry = self.regions[idx].entry;
                    self.handle_alias_exception(idx, v);
                    return self.interp.step_block(&self.program, entry);
                }
            };
            acc.guest += self.regions[idx].exit_instrs[exit_id];
            // Resolve the exit: a memoized link, a fresh flat-cache probe,
            // or a hand-off back to the interpreter.
            let next_idx = match self.regions[idx].links[exit_id] {
                ChainLink::Region(j) => j as usize,
                ChainLink::Unresolved => {
                    let Some(target) = self.regions[idx].vliw.exits[exit_id].guest_block else {
                        // Guest halt.
                        self.vstate
                            .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                        self.stats.per_region[run_idx].entries += run_entries;
                        self.flush_chain_stats(&acc);
                        return None;
                    };
                    acc.lookups += 1;
                    match self.cached_region(BlockId(target)) {
                        Some(j) => {
                            self.regions[idx].links[exit_id] = ChainLink::Region(j as u32);
                            if self.config.verify_translations {
                                // Prove the hand-off before the link is
                                // ever followed (observation mode).
                                self.chain_check_link(idx, j);
                            }
                            j
                        }
                        None => {
                            // Not cached (yet): never memoized, so a later
                            // translation of the target is picked up here.
                            self.vstate
                                .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                            self.stats.per_region[run_idx].entries += run_entries;
                            self.flush_chain_stats(&acc);
                            return Some(BlockId(target));
                        }
                    }
                }
            };
            // Chain boundary: stop following links once the budget is
            // spent so `run_to_completion` can observe it.
            if guest_base + acc.guest >= budget {
                self.vstate
                    .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                self.stats.per_region[run_idx].entries += run_entries;
                self.flush_chain_stats(&acc);
                return Some(self.regions[next_idx].entry);
            }
            acc.follows += 1;
            if next_idx != run_idx {
                self.stats.per_region[run_idx].entries += run_entries;
                run_idx = next_idx;
                run_entries = 0;
            }
            idx = next_idx;
        }
    }

    /// Lowers a freshly emitted region for the fast-functional tier —
    /// only when that tier is actually selected, so cycle-sim runs pay
    /// nothing for the feature existing.
    fn compile_fast(&self, vliw: &VliwProgram) -> Option<FastProgram> {
        (self.config.exec_tier == ExecTier::Functional)
            .then(|| fastcomp::compile(vliw).expect("translated region is well formed"))
    }

    /// The functional-tier dispatcher: identical probe-and-chain shape to
    /// [`Self::step_chained`], but cached regions run on the fast tier.
    fn step_functional(&mut self, cur: BlockId, budget: u64) -> Option<BlockId> {
        self.stats.dispatch_lookups += 1;
        if let Some(idx) = self.cached_region(cur) {
            return self.run_region_functional(idx, budget);
        }
        let next = self.interp.step_block(&self.program, cur);
        self.maybe_translate(cur);
        next
    }

    /// Region execution on the fast-functional tier: the chained-dispatch
    /// loop of [`Self::run_region_chained`] with the guest state resident
    /// in [`FastState`] and no cycle modeling. Periodically a region entry
    /// is *sampled*: re-executed on the cycle simulator from the same
    /// pre-state and bit-compared ([`Self::tier_down_sample`]). An alias
    /// exception rolls the fast state back (checkpoint + store-undo log)
    /// and deoptimizes to the interpreter through the same
    /// blacklist/retranslate/unlink machinery as the cycle tier.
    fn run_region_functional(&mut self, idx: usize, budget: u64) -> Option<BlockId> {
        let mut idx = idx;
        self.fstate
            .load_guest(&self.interp.regs, &self.interp.fregs);
        let guest_base = self.interp.executed_instrs() + self.stats.region_guest_instrs;
        let async_mode = self.service.is_some();
        let mut acc = ChainAccum::default();
        let mut run_idx = idx;
        let mut run_entries = 0u64;
        loop {
            if async_mode && self.regions[idx].blacklist_gen != self.blacklist_gen {
                acc.stale += 1;
            }
            // Sampling decision *before* the fast run: the oracle needs
            // the pre-state. The countdown starts at 1, so the very first
            // functional entry is always cross-checked; `0` means
            // sampling is disabled and stays disabled.
            let sampled = self.tier_sample_countdown != 0 && {
                self.tier_sample_countdown -= 1;
                if self.tier_sample_countdown == 0 {
                    self.tier_sample_countdown = self.config.tier_sample_interval;
                    true
                } else {
                    false
                }
            };
            let pre_mem = if sampled {
                self.fstate.copy_to_vliw(&mut self.vstate);
                Some(self.interp.mem.clone())
            } else {
                None
            };
            let fast = self.regions[idx]
                .fast
                .as_ref()
                .expect("functional tier compiles regions on install");
            let (outcome, rstats) =
                self.fast_sim
                    .run_region(fast, &mut self.fstate, &mut self.interp.mem);
            self.stats.tier_fast_entries += 1;
            // No cycles: the fast tier has no timing model. Sampled
            // cycle-sim runs report into `tier_sampled_cycles` instead.
            acc.mem_ops += rstats.mem_ops;
            acc.scanned += rstats.entries_scanned;
            acc.entries += 1;
            run_entries += 1;
            if let Some(mut mem) = pre_mem {
                self.tier_down_sample(idx, &outcome, &mut mem);
            }
            let exit_id = match outcome {
                RegionOutcome::Exited { exit_id } => exit_id as usize,
                RegionOutcome::AliasException(v) => {
                    // The fast executor rolled the resident state back to
                    // the region entry; surface it and deoptimize.
                    self.fstate
                        .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                    self.stats.per_region[run_idx].entries += run_entries;
                    self.flush_chain_stats(&acc);
                    self.stats.tier_deopts += 1;
                    let entry = self.regions[idx].entry;
                    self.handle_alias_exception(idx, v);
                    return self.interp.step_block(&self.program, entry);
                }
            };
            acc.guest += self.regions[idx].exit_instrs[exit_id];
            let next_idx = match self.regions[idx].links[exit_id] {
                ChainLink::Region(j) => j as usize,
                ChainLink::Unresolved => {
                    let Some(target) = self.regions[idx].vliw.exits[exit_id].guest_block else {
                        self.fstate
                            .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                        self.stats.per_region[run_idx].entries += run_entries;
                        self.flush_chain_stats(&acc);
                        return None;
                    };
                    acc.lookups += 1;
                    match self.cached_region(BlockId(target)) {
                        Some(j) => {
                            self.regions[idx].links[exit_id] = ChainLink::Region(j as u32);
                            if self.config.verify_translations {
                                // Prove the hand-off before the link is
                                // ever followed (observation mode).
                                self.chain_check_link(idx, j);
                            }
                            j
                        }
                        None => {
                            self.fstate
                                .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                            self.stats.per_region[run_idx].entries += run_entries;
                            self.flush_chain_stats(&acc);
                            return Some(BlockId(target));
                        }
                    }
                }
            };
            if guest_base + acc.guest >= budget {
                self.fstate
                    .store_guest(&mut self.interp.regs, &mut self.interp.fregs);
                self.stats.per_region[run_idx].entries += run_entries;
                self.flush_chain_stats(&acc);
                return Some(self.regions[next_idx].entry);
            }
            acc.follows += 1;
            if next_idx != run_idx {
                self.stats.per_region[run_idx].entries += run_entries;
                run_idx = next_idx;
                run_entries = 0;
            }
            idx = next_idx;
        }
    }

    /// Tier-down sample: replays the region entry the fast tier just ran
    /// on the cycle simulator, starting from the identical pre-state
    /// (`self.vstate` and `sim_mem` were captured before the fast run),
    /// and bit-compares outcome, both register files and memory. The fast
    /// result stays canonical either way; a disagreement only increments
    /// [`SystemStats::tier_sample_mismatches`] for the oracles to flag.
    fn tier_down_sample(&mut self, idx: usize, fast_outcome: &RegionOutcome, sim_mem: &mut Memory) {
        let region = &self.regions[idx];
        let (sim_outcome, sim_stats) = self
            .sim
            .run_region_resident(&region.vliw, region.write_mask, &mut self.vstate, sim_mem)
            .expect("translated region is well formed");
        self.stats.tier_samples += 1;
        self.stats.tier_sampled_cycles += sim_stats.cycles;
        let regs_agree = self.fstate.regs == self.vstate.regs
            && self
                .fstate
                .fregs
                .iter()
                .zip(self.vstate.fregs.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if sim_outcome != *fast_outcome || !regs_agree || *sim_mem != self.interp.mem {
            self.stats.tier_sample_mismatches += 1;
        }
    }

    /// Folds one chain's accumulated statistics into the system totals
    /// (the per-region entry counters are flushed separately, on region
    /// switch, by [`Self::run_region_chained`]).
    fn flush_chain_stats(&mut self, acc: &ChainAccum) {
        self.stats.region_guest_instrs += acc.guest;
        self.stats.vliw_cycles += acc.cycles;
        self.stats.region_mem_ops += acc.mem_ops;
        self.stats.alias_entries_scanned += acc.scanned;
        self.stats.region_entries += acc.entries;
        self.stats.chain_follows += acc.follows;
        self.stats.dispatch_lookups += acc.lookups;
        self.stats.async_stale_entries += acc.stale;
    }

    /// Blacklists the faulting pair of a rolled-back region, then
    /// retranslates it conservatively — or abandons it to interpretation
    /// when blacklisting cannot converge. Both paths invalidate the chain
    /// links into the region.
    fn handle_alias_exception(&mut self, idx: usize, v: AliasViolation) {
        self.stats.rollbacks += 1;
        self.regions[idx].rollbacks += 1;
        self.stats.per_region[idx].rollbacks += 1;
        let a = self.regions[idx].tag_origin[v.checker_tag as usize];
        let b = self.regions[idx].tag_origin[v.producer_tag as usize];
        let fresh = self.blacklist.insert(a, b);
        if fresh {
            // Every in-flight job snapshotted the previous generation;
            // their results now re-optimize before publishing.
            self.blacklist_gen += 1;
        }
        if !fresh || self.regions[idx].rollbacks > self.config.max_rollbacks_per_region {
            // Livelock backstop: abandon translation for this block.
            let entry = self.regions[idx].entry;
            self.cache[entry.index()] = NO_REGION;
            self.naive_cache.remove(&entry);
            self.abandoned[entry.index()] = true;
            self.unlink_into(idx);
        } else if self.service.is_some() {
            // Async deopt: unpublish the faulting region (so the stale
            // code cannot be re-entered and re-fault while the fix is in
            // flight) and queue the conservative retranslation. The guest
            // interprets this block until the new code publishes.
            self.unpublish(idx);
            self.submit_retranslate(idx);
        } else {
            self.retranslate(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarq_guest::{AluOp, CmpOp, ProgramBuilder, Reg};

    /// Loop with an in-loop load/store to a fixed address, plus pointer
    /// accesses that never truly alias.
    fn accumulating_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000); // accumulator
        b.iconst(entry, Reg(5), 0x2000); // array
        b.jump(entry, body);
        b.ld(body, Reg(4), Reg(3), 0);
        b.st(body, Reg(4), Reg(5), 0); // never aliases the accumulator
        b.ld(body, Reg(6), Reg(5), 8);
        b.alu(body, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(body, Reg(4), Reg(3), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    fn reference_state(p: &Program) -> smarq_guest::ArchState {
        let mut i = Interpreter::new();
        i.run(p, u64::MAX);
        i.arch_state()
    }

    #[test]
    fn optimized_execution_matches_interpretation() {
        let p = accumulating_loop(500);
        let expected = reference_state(&p);
        for opt in [
            OptConfig::smarq(64),
            OptConfig::smarq(16),
            OptConfig::smarq_no_store_reorder(64),
            OptConfig::alat(),
            OptConfig::no_alias_hw(),
        ] {
            let mut sys = DynOptSystem::new(p.clone(), SystemConfig::with_opt(opt.clone()));
            assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
            assert_eq!(
                sys.interp().arch_state(),
                expected,
                "arch state mismatch for {opt:?}"
            );
            assert!(sys.stats().regions_formed >= 1);
            assert!(sys.stats().vliw_cycles > 0);
        }
    }

    /// A loop whose load sits *behind* a store fed by a long FP chain:
    /// without alias hardware the load (and its multiply chain) serializes
    /// after the chain; with SMARQ it hoists to the top and overlaps.
    fn store_shadowed_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x2000);
        b.fconst(entry, smarq_guest::FReg(3), 1.0001);
        b.jump(entry, body);
        b.fld(body, smarq_guest::FReg(1), Reg(5), 0);
        b.fpu(
            body,
            smarq_guest::FpuOp::Div,
            smarq_guest::FReg(2),
            smarq_guest::FReg(1),
            smarq_guest::FReg(3),
        );
        b.fst(body, smarq_guest::FReg(2), Reg(5), 0);
        // The speculation target: a load after the store, may-alias by the
        // simple analysis (different base registers), never truly aliasing.
        b.ld(body, Reg(4), Reg(3), 0);
        b.alu(body, AluOp::Mul, Reg(6), Reg(4), Reg(4));
        b.alu(body, AluOp::Mul, Reg(6), Reg(6), Reg(6));
        b.st(body, Reg(6), Reg(3), 8);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn speculation_beats_no_alias_hw_on_shadowed_loads() {
        let p = store_shadowed_loop(2000);
        let expected = reference_state(&p);
        let mut fast = DynOptSystem::new(p.clone(), SystemConfig::with_opt(OptConfig::smarq(64)));
        fast.run_to_completion(u64::MAX);
        let mut slow =
            DynOptSystem::new(p.clone(), SystemConfig::with_opt(OptConfig::no_alias_hw()));
        slow.run_to_completion(u64::MAX);
        assert_eq!(fast.interp().arch_state(), expected);
        assert_eq!(slow.interp().arch_state(), expected);
        assert_eq!(fast.stats().rollbacks, 0, "no true aliasing here");
        assert!(
            fast.stats().total_cycles() < slow.stats().total_cycles(),
            "SMARQ {} !< none {}",
            fast.stats().total_cycles(),
            slow.stats().total_cycles()
        );
    }

    /// Loop where the "unlikely" aliasing pair truly aliases: forces an
    /// alias exception, a rollback and a conservative re-translation.
    fn truly_aliasing_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x1000); // same address, different register!
        b.jump(entry, body);
        b.st(body, Reg(1), Reg(3), 0);
        b.ld(body, Reg(4), Reg(5), 0); // must see the store's value
        b.alu_imm(body, AluOp::Add, Reg(6), Reg(4), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn alias_exception_rolls_back_and_blacklists() {
        let p = truly_aliasing_loop(400);
        let expected = reference_state(&p);
        let mut sys = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        assert!(sys.stats().rollbacks >= 1, "speculation must have faulted");
        assert!(sys.stats().retranslations >= 1);
        assert!(!sys.blacklist().is_empty());
        // After re-translation the region must run cleanly (no livelock).
        let last = sys.stats().per_region.last().unwrap();
        assert!(last.rollbacks < 5, "blacklisting must converge");
    }

    #[test]
    fn budget_stops_runs() {
        let p = accumulating_loop(1_000_000);
        let mut sys = DynOptSystem::new(p, SystemConfig::default());
        assert_eq!(sys.run_to_completion(50_000), StopReason::BudgetExhausted);
        assert!(sys.stats().guest_instrs() >= 50_000);
    }

    /// Two sequential hot loops plus a cold epilogue: both loops must get
    /// their own cached regions and the state must stay exact.
    fn two_phase_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let loop1 = b.block();
        let mid = b.block();
        let loop2 = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x2000);
        b.jump(entry, loop1);
        // Phase 1: accumulate into [r3].
        b.ld(loop1, Reg(4), Reg(3), 0);
        b.alu(loop1, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(loop1, Reg(4), Reg(3), 0);
        b.alu_imm(loop1, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(loop1, CmpOp::Lt, Reg(1), Reg(2), loop1, mid);
        // Reset the counter.
        b.iconst(mid, Reg(1), 0);
        b.jump(mid, loop2);
        // Phase 2: copy [r3] into [r5 + 8] with a may-alias pair.
        b.ld(loop2, Reg(6), Reg(3), 0);
        b.st(loop2, Reg(6), Reg(5), 8);
        b.ld(loop2, Reg(7), Reg(5), 16);
        b.alu_imm(loop2, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(loop2, CmpOp::Lt, Reg(1), Reg(2), loop2, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn multiple_hot_loops_each_get_regions() {
        let p = two_phase_program(400);
        let expected = reference_state(&p);
        let mut sys = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        assert!(
            sys.stats().regions_formed >= 2,
            "both hot loops must be translated, got {}",
            sys.stats().regions_formed
        );
        let entries: Vec<_> = sys.stats().per_region.iter().map(|r| r.entry).collect();
        assert!(entries.contains(&BlockId(1)) && entries.contains(&BlockId(3)));
    }

    #[test]
    fn abandoned_regions_fall_back_to_interpretation() {
        // Force abandonment with a zero rollback budget on a program that
        // always faults: execution must still complete correctly.
        let p = truly_aliasing_loop(300);
        let expected = reference_state(&p);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.max_rollbacks_per_region = 0;
        let mut sys = DynOptSystem::new(p, cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        assert!(sys.stats().rollbacks >= 1);
    }

    #[test]
    fn scan_energy_statistics_accumulate() {
        let p = store_shadowed_loop(400);
        let mut sys = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        sys.run_to_completion(u64::MAX);
        let s = sys.stats();
        assert!(s.region_mem_ops > 0);
        assert!(s.alias_entries_scanned > 0, "checks must examine entries");
        assert!(s.scans_per_mem_op() > 0.0);
    }

    #[test]
    fn unrolled_regions_stay_bit_exact_and_grow() {
        let p = store_shadowed_loop(1200);
        let expected = reference_state(&p);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.unroll_factor = 4;
        let mut sys = DynOptSystem::new(p.clone(), cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        let unrolled_mem = sys.stats().per_region[0].opt.mem_ops;

        let mut plain = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        plain.run_to_completion(u64::MAX);
        let plain_mem = plain.stats().per_region[0].opt.mem_ops;
        assert_eq!(unrolled_mem, 4 * plain_mem, "region grew by the factor");
        // Fewer region entries, fewer checkpoints: at least as fast.
        assert!(sys.stats().region_entries < plain.stats().region_entries);
    }

    #[test]
    fn cold_programs_never_translate() {
        let p = accumulating_loop(5);
        let mut sys = DynOptSystem::new(p, SystemConfig::default());
        sys.run_to_completion(u64::MAX);
        assert_eq!(sys.stats().regions_formed, 0);
        assert_eq!(sys.stats().vliw_cycles, 0);
        assert!(sys.stats().interp_instrs > 0);
    }

    /// Runs `p` to completion under the given dispatch mode.
    fn run_mode(p: &Program, mode: DispatchMode) -> DynOptSystem {
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.dispatch = mode;
        let mut sys = DynOptSystem::new(p.clone(), cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        sys
    }

    /// The chained dispatcher must be bit-exact with the naive oracle and
    /// must actually bypass the dispatcher on the hot self-loop.
    #[test]
    fn chained_dispatch_is_bit_exact_and_skips_the_dispatcher() {
        for p in [
            accumulating_loop(800),
            store_shadowed_loop(800),
            truly_aliasing_loop(400),
            two_phase_program(400),
        ] {
            let expected = reference_state(&p);
            let naive = run_mode(&p, DispatchMode::Naive);
            let chained = run_mode(&p, DispatchMode::Chained);
            assert_eq!(naive.interp().arch_state(), expected);
            assert_eq!(chained.interp().arch_state(), expected);
            assert_eq!(
                naive.stats().guest_instrs(),
                chained.stats().guest_instrs(),
                "batched stat syncing must not change totals"
            );
            assert_eq!(
                naive.stats().region_entries,
                chained.stats().region_entries,
                "chaining changes dispatch, not execution"
            );
            assert_eq!(naive.stats().chain_follows, 0, "naive mode never chains");
            assert!(
                chained.stats().dispatch_lookups < naive.stats().dispatch_lookups,
                "chaining must shed dispatcher work: {} !< {}",
                chained.stats().dispatch_lookups,
                naive.stats().dispatch_lookups
            );
        }
    }

    /// A hot self-loop region must chain to itself: almost every region
    /// entry after warm-up follows the memoized link instead of probing
    /// the translation cache.
    #[test]
    fn self_loop_chains_without_redispatch() {
        let p = accumulating_loop(2000);
        let sys = run_mode(&p, DispatchMode::Chained);
        let s = sys.stats();
        assert!(s.chain_follows > 0, "self-link must be followed");
        assert!(
            s.chain_follows >= s.region_entries - 2,
            "steady state runs entirely on the chain: {} follows of {} entries",
            s.chain_follows,
            s.region_entries
        );
        assert!(
            s.dispatch_lookups < s.region_entries / 2,
            "chained entries must not re-enter the dispatcher ({} lookups, {} entries)",
            s.dispatch_lookups,
            s.region_entries
        );
    }

    /// Outer loop over two hot inner loops with hot glue blocks: several
    /// distinct regions form and chain region→region in a cycle.
    fn ping_pong_program(outer: i64, inner: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let a = b.block();
        let l1 = b.block();
        let mid = b.block();
        let l2 = b.block();
        let tail = b.block();
        let done = b.block();
        b.iconst(entry, Reg(10), 0); // outer counter
        b.iconst(entry, Reg(11), outer);
        b.iconst(entry, Reg(12), inner);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(5), 0x2000);
        b.jump(entry, a);
        // A: reset the inner counter for loop 1.
        b.iconst(a, Reg(1), 0);
        b.jump(a, l1);
        // L1: accumulate into [r3].
        b.ld(l1, Reg(4), Reg(3), 0);
        b.alu(l1, AluOp::Add, Reg(4), Reg(4), Reg(1));
        b.st(l1, Reg(4), Reg(3), 0);
        b.alu_imm(l1, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(l1, CmpOp::Lt, Reg(1), Reg(12), l1, mid);
        // mid: reset the inner counter for loop 2.
        b.iconst(mid, Reg(1), 0);
        b.jump(mid, l2);
        // L2: copy [r3] into [r5+8] with a may-alias pair.
        b.ld(l2, Reg(6), Reg(3), 0);
        b.st(l2, Reg(6), Reg(5), 8);
        b.alu_imm(l2, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(l2, CmpOp::Lt, Reg(1), Reg(12), l2, tail);
        // tail: outer backedge.
        b.alu_imm(tail, AluOp::Add, Reg(10), Reg(10), 1);
        b.branch(tail, CmpOp::Lt, Reg(10), Reg(11), a, done);
        b.halt(done);
        b.finish(entry)
    }

    /// Multiple distinct regions must chain into each other (not just the
    /// self-link case) and stay bit-exact with the naive oracle.
    #[test]
    fn distinct_regions_chain_region_to_region() {
        let p = ping_pong_program(300, 8);
        let expected = reference_state(&p);
        let naive = run_mode(&p, DispatchMode::Naive);
        let chained = run_mode(&p, DispatchMode::Chained);
        assert_eq!(naive.interp().arch_state(), expected);
        assert_eq!(chained.interp().arch_state(), expected);
        let s = chained.stats();
        assert!(
            s.regions_formed >= 3,
            "inner loops and glue blocks must all get regions, got {}",
            s.regions_formed
        );
        assert!(
            s.chain_follows > s.region_entries / 2,
            "most entries arrive over chain links: {} of {}",
            s.chain_follows,
            s.region_entries
        );
    }

    /// Loop that truly aliases only after a warm phase: the exception
    /// fires *inside a chained region* (entered over a memoized link).
    /// The rollback must surface the resident state exactly, the chain
    /// links must be invalidated, and blacklisting must re-converge.
    fn late_aliasing_loop(iters: i64, flip: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let entry = b.block();
        let body = b.block();
        let done = b.block();
        b.iconst(entry, Reg(1), 0);
        b.iconst(entry, Reg(2), iters);
        b.iconst(entry, Reg(3), 0x1000);
        b.iconst(entry, Reg(7), flip);
        b.iconst(entry, Reg(8), 0x1000);
        b.jump(entry, body);
        // r5 = 0x1000 + (i < flip) * 0x1000: distinct address while warm,
        // then exactly the store's address.
        b.alu(body, AluOp::Slt, Reg(6), Reg(1), Reg(7));
        b.alu(body, AluOp::Mul, Reg(6), Reg(6), Reg(8));
        b.alu(body, AluOp::Add, Reg(5), Reg(3), Reg(6));
        b.st(body, Reg(1), Reg(3), 0);
        b.ld(body, Reg(4), Reg(5), 0); // may-alias; truly aliases at i >= flip
        b.alu_imm(body, AluOp::Add, Reg(9), Reg(4), 0);
        b.alu_imm(body, AluOp::Add, Reg(1), Reg(1), 1);
        b.branch(body, CmpOp::Lt, Reg(1), Reg(2), body, done);
        b.halt(done);
        b.finish(entry)
    }

    #[test]
    fn alias_exception_inside_chained_region_unlinks_and_reconverges() {
        let p = late_aliasing_loop(500, 250);
        let expected = reference_state(&p);
        let sys = run_mode(&p, DispatchMode::Chained);
        let s = sys.stats();
        assert_eq!(
            sys.interp().arch_state(),
            expected,
            "resident rollback is exact"
        );
        assert!(
            s.chain_follows > 0,
            "the faulting region was entered over a link"
        );
        assert!(s.rollbacks >= 1, "late aliasing must fault");
        assert!(s.retranslations >= 1);
        assert!(s.chain_unlinks >= 1, "retranslation must drop stale links");
        assert!(!sys.blacklist().is_empty());
        let last = s.per_region.last().unwrap();
        assert!(last.rollbacks < 5, "blacklisting must converge");
        // And the whole scenario is bit-exact with the naive oracle.
        let naive = run_mode(&p, DispatchMode::Naive);
        assert_eq!(naive.interp().arch_state(), expected);
        assert_eq!(naive.stats().guest_instrs(), s.guest_instrs());
    }

    /// Abandoning a region mid-chain must unlink it so chained execution
    /// can never re-enter dead code.
    #[test]
    fn abandoned_region_is_unlinked_from_chains() {
        let p = late_aliasing_loop(400, 200);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.dispatch = DispatchMode::Chained;
        cfg.max_rollbacks_per_region = 0; // first fault abandons
        let mut sys = DynOptSystem::new(p.clone(), cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), reference_state(&p));
        let s = sys.stats();
        assert!(s.rollbacks >= 1);
        assert!(
            s.chain_unlinks >= 1,
            "the abandoned region's self-link must be severed"
        );
    }

    /// Verify-on-emit covers every translation AND retranslation, reports
    /// zero errors for the correct optimizer, and stays out of the way
    /// when off.
    #[test]
    fn verify_on_emit_covers_all_translations() {
        let p = accumulating_loop(400);
        let expected = reference_state(&p);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.hot_threshold = 10;
        cfg.verify_translations = true;
        let mut sys = DynOptSystem::new(p.clone(), cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        let s = sys.stats();
        assert!(s.regions_verified > 0, "every emitted region is verified");
        assert_eq!(
            s.regions_verified,
            s.regions_formed + s.retranslations,
            "translations and retranslations both pass through the verifier"
        );
        assert_eq!(s.verify_errors, 0, "{:?}", s.verify_diagnostics);

        let mut off = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        off.run_to_completion(u64::MAX);
        assert_eq!(off.stats().regions_verified, 0);
        assert!(off.stats().verify_diagnostics.is_empty());
    }

    /// Runs `p` to completion on the functional tier with the given
    /// sampling interval.
    fn run_functional(p: &Program, interval: u64) -> DynOptSystem {
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.exec_tier = ExecTier::Functional;
        cfg.tier_sample_interval = interval;
        let mut sys = DynOptSystem::new(p.clone(), cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        sys
    }

    /// The functional tier must be architecturally bit-exact with pure
    /// interpretation AND with the chained cycle-sim dispatch on every
    /// helper program, with every tier-down sample agreeing.
    #[test]
    fn functional_tier_is_bit_exact_with_agreeing_samples() {
        for p in [
            accumulating_loop(800),
            store_shadowed_loop(800),
            truly_aliasing_loop(400),
            two_phase_program(400),
            ping_pong_program(300, 8),
            late_aliasing_loop(500, 250),
        ] {
            let expected = reference_state(&p);
            let chained = run_mode(&p, DispatchMode::Chained);
            let func = run_functional(&p, 16);
            assert_eq!(func.interp().arch_state(), expected);
            assert_eq!(
                func.stats().guest_instrs(),
                chained.stats().guest_instrs(),
                "the tier changes execution speed, not coverage"
            );
            let s = func.stats();
            assert!(s.tier_fast_entries > 0, "hot code runs on the fast tier");
            assert!(s.tier_samples > 0, "sampling fired");
            assert!(s.tier_samples <= s.tier_fast_entries);
            assert_eq!(
                s.tier_sample_mismatches, 0,
                "every sampled entry agrees with the cycle sim"
            );
            assert!(s.tier_sampled_cycles > 0, "samples carry sim timing");
        }
    }

    /// Tier-up policy: interpret → functional on region install. A cold
    /// program never reaches the fast tier; a hot one moves its steady
    /// state there and accrues no modeled region cycles.
    #[test]
    fn tier_up_happens_on_region_install() {
        let cold = run_functional(&accumulating_loop(5), 16);
        assert_eq!(cold.stats().regions_formed, 0);
        assert_eq!(cold.stats().tier_fast_entries, 0);
        assert!(cold.stats().interp_instrs > 0);

        let hot = run_functional(&accumulating_loop(2000), 16);
        let s = hot.stats();
        assert!(s.regions_formed >= 1);
        assert_eq!(
            s.tier_fast_entries, s.region_entries,
            "every region entry ran on the fast tier"
        );
        assert_eq!(s.vliw_cycles, 0, "no modeled cycles on the fast tier");
        assert!(
            s.chain_follows >= s.region_entries - 2,
            "the functional dispatcher chains like the cycle-sim one"
        );
        // Work counters track the cycle tier exactly.
        let chained = run_mode(&accumulating_loop(2000), DispatchMode::Chained);
        assert!(s.region_mem_ops > 0);
        assert_eq!(s.region_mem_ops, chained.stats().region_mem_ops);
        assert_eq!(
            s.alias_entries_scanned,
            chained.stats().alias_entries_scanned
        );
    }

    /// Tier-down on alias exception: the fast tier's rollback must hand
    /// the interpreter the exact pre-region state, and the deopt must run
    /// the same blacklist/retranslate machinery as the cycle tier.
    #[test]
    fn functional_tier_deopt_is_exact_and_converges() {
        for p in [truly_aliasing_loop(400), late_aliasing_loop(500, 250)] {
            let expected = reference_state(&p);
            let sys = run_functional(&p, 16);
            let s = sys.stats();
            assert_eq!(sys.interp().arch_state(), expected, "deopt state exact");
            assert!(s.tier_deopts >= 1, "true aliasing must deopt");
            assert_eq!(s.tier_deopts, s.rollbacks);
            assert!(s.retranslations >= 1);
            assert!(!sys.blacklist().is_empty());
            let last = s.per_region.last().unwrap();
            assert!(last.rollbacks < 5, "blacklisting must converge");
        }
    }

    /// Interval 0 disables sampling entirely; execution stays exact.
    #[test]
    fn sampling_can_be_disabled() {
        let p = accumulating_loop(1000);
        let sys = run_functional(&p, 0);
        assert_eq!(sys.interp().arch_state(), reference_state(&p));
        assert_eq!(sys.stats().tier_samples, 0);
        assert_eq!(sys.stats().tier_sampled_cycles, 0);
        assert!(sys.stats().tier_fast_entries > 0);
    }

    /// Abandonment works from the fast tier too: a region past its
    /// rollback budget falls back to interpretation permanently.
    #[test]
    fn functional_tier_abandonment_falls_back() {
        let p = truly_aliasing_loop(300);
        let expected = reference_state(&p);
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.exec_tier = ExecTier::Functional;
        cfg.tier_sample_interval = 16;
        cfg.max_rollbacks_per_region = 0;
        let mut sys = DynOptSystem::new(p, cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        assert!(sys.stats().tier_deopts >= 1);
    }

    // ----- tier-down sampling countdown edge cases (PR6 gap coverage) --

    /// Table-driven countdown arithmetic: with `interval = n`, the first
    /// functional entry is always sampled (the countdown starts at 1) and
    /// every `n`-th entry after it, so `entries` region entries yield
    /// exactly `1 + (entries - 1) / n` samples.
    #[test]
    fn sampling_countdown_arithmetic_is_exact() {
        for (interval, desc) in [
            (1u64, "every entry"),
            (2, "every other entry"),
            (7, "odd stride"),
            (1_000_000, "stride past the run length"),
        ] {
            let sys = run_functional(&accumulating_loop(1000), interval);
            let s = sys.stats();
            assert!(s.tier_fast_entries > 0);
            let expected = 1 + (s.tier_fast_entries - 1) / interval;
            assert_eq!(
                s.tier_samples, expected,
                "interval {interval} ({desc}): {} entries",
                s.tier_fast_entries
            );
            assert_eq!(s.tier_sample_mismatches, 0);
        }
    }

    /// `tier_sample_interval = 1` is the exhaustive oracle: every single
    /// functional entry is replayed on the cycle simulator.
    #[test]
    fn sample_rate_one_checks_every_entry() {
        let sys = run_functional(&accumulating_loop(800), 1);
        let s = sys.stats();
        assert!(s.tier_fast_entries > 0);
        assert_eq!(s.tier_samples, s.tier_fast_entries);
        assert_eq!(s.tier_sample_mismatches, 0);
        assert!(s.tier_sampled_cycles > 0);
    }

    /// First-entry-always: even when the interval exceeds the total
    /// number of functional entries, exactly one sample fires — on the
    /// very first entry — so short runs still get a cross-check.
    #[test]
    fn first_functional_entry_is_always_sampled() {
        let sys = run_functional(&accumulating_loop(300), u64::MAX);
        let s = sys.stats();
        assert!(s.tier_fast_entries > 0);
        assert_eq!(s.tier_samples, 1, "only the always-sampled first entry");
        assert_eq!(s.tier_sample_mismatches, 0);
    }

    /// Deopt during a sampled entry: with `interval = 1` the faulting
    /// functional entries are themselves sampled — the cycle-sim replay
    /// must reproduce the identical alias exception (no mismatch), the
    /// rollback must stay architecturally exact, and the countdown must
    /// keep firing across the deopt boundary.
    #[test]
    fn deopt_during_sampled_entry_stays_exact() {
        for p in [truly_aliasing_loop(400), late_aliasing_loop(500, 250)] {
            let expected = reference_state(&p);
            let sys = run_functional(&p, 1);
            let s = sys.stats();
            assert_eq!(sys.interp().arch_state(), expected);
            assert!(s.tier_deopts >= 1, "true aliasing must deopt");
            assert_eq!(s.tier_samples, s.tier_fast_entries);
            assert_eq!(
                s.tier_sample_mismatches, 0,
                "the sampled replay reproduces the same exception"
            );
            assert!(s.retranslations >= 1);
        }
    }

    // ----- async translation basics (the race harness proper lives in
    // ----- tests/async_interleave.rs) ------------------------------

    /// Async config for deterministic in-process tests: the auto-stepped
    /// executor (no threads), translations land one dispatch boundary
    /// after submission.
    fn async_auto_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
        cfg.async_translate = true;
        cfg.translate_workers = 0;
        cfg.translate_queue_depth = 4;
        cfg
    }

    /// Async translation with the deterministic auto executor: bit-exact
    /// final state, regions still form and run, and the pipeline counters
    /// balance (published + conflicts + still-outstanding = enqueued).
    #[test]
    fn async_auto_executor_is_bit_exact() {
        for p in [
            accumulating_loop(800),
            two_phase_program(400),
            ping_pong_program(300, 8),
        ] {
            let expected = reference_state(&p);
            let mut sys = DynOptSystem::new(p.clone(), async_auto_cfg());
            assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
            assert_eq!(sys.interp().arch_state(), expected);
            let s = sys.stats();
            assert!(s.regions_formed >= 1, "async translation still installs");
            assert!(s.region_entries > 0, "published regions actually run");
            assert!(s.async_enqueued >= s.regions_formed as u64);
            assert_eq!(
                s.async_published + s.async_publish_conflicts,
                s.async_enqueued - sys.translation_outstanding() as u64,
                "every taken job was either published or rejected"
            );
            assert_eq!(
                s.translation_ns, 0,
                "no translation time on the critical path"
            );
            assert!(s.async_worker_ns > 0);
        }
    }

    /// The real threaded executor reaches the same final state (counters
    /// like the interp/region split are timing-dependent and not
    /// asserted).
    #[test]
    fn async_threaded_executor_is_bit_exact() {
        for workers in [1u32, 3] {
            let p = two_phase_program(600);
            let expected = reference_state(&p);
            let mut cfg = SystemConfig::with_opt(OptConfig::smarq(64));
            cfg.async_translate = true;
            cfg.translate_workers = workers;
            let mut sys = DynOptSystem::new(p, cfg);
            assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
            sys.translation_drain();
            assert_eq!(sys.interp().arch_state(), expected);
            assert!(sys.stats().async_enqueued >= 1);
            assert_eq!(sys.translation_outstanding(), 0, "drain leaves nothing");
        }
    }

    /// Async deopt path: an alias exception unpublishes the region,
    /// queues the conservative retranslation, and the republished region
    /// converges — bit-exact with the reference throughout.
    #[test]
    fn async_deopt_retranslates_through_the_queue() {
        for p in [truly_aliasing_loop(400), late_aliasing_loop(500, 250)] {
            let expected = reference_state(&p);
            let mut sys = DynOptSystem::new(p, async_auto_cfg());
            assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
            assert_eq!(sys.interp().arch_state(), expected);
            let s = sys.stats();
            assert!(s.rollbacks >= 1, "speculation must have faulted");
            assert!(s.retranslations >= 1, "the queued retranslate published");
            assert!(!sys.blacklist().is_empty());
            let last = s.per_region.last().unwrap();
            assert!(last.rollbacks < 5, "blacklisting must converge");
        }
    }

    /// The functional tier composes with async translation (workers
    /// compile the fast lowering too).
    #[test]
    fn async_composes_with_functional_tier() {
        let p = two_phase_program(500);
        let expected = reference_state(&p);
        let mut cfg = async_auto_cfg();
        cfg.exec_tier = ExecTier::Functional;
        cfg.tier_sample_interval = 16;
        let mut sys = DynOptSystem::new(p, cfg);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
        assert_eq!(sys.interp().arch_state(), expected);
        let s = sys.stats();
        assert!(
            s.tier_fast_entries > 0,
            "published regions run on the fast tier"
        );
        assert_eq!(s.tier_sample_mismatches, 0);
    }

    /// `run_bounded` exposes the dispatch-step clock: it stops after the
    /// requested number of steps with `Running`, resumes where it left
    /// off, and total work matches an unbounded run.
    #[test]
    fn run_bounded_steps_and_resumes() {
        let p = accumulating_loop(500);
        let expected = reference_state(&p);
        let mut sys = DynOptSystem::new(p, SystemConfig::with_opt(OptConfig::smarq(64)));
        let mut statuses = 0u64;
        loop {
            match sys.run_bounded(3, u64::MAX) {
                RunStatus::Running => statuses += 1,
                RunStatus::Halted => break,
                RunStatus::BudgetExhausted => unreachable!(),
            }
        }
        assert!(statuses > 1, "the run was actually chopped into steps");
        assert_eq!(sys.interp().arch_state(), expected);
        // Halted is sticky.
        assert_eq!(sys.run_bounded(10, u64::MAX), RunStatus::Halted);
        assert_eq!(sys.run_to_completion(u64::MAX), StopReason::Halted);
    }
}
